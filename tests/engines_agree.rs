//! Cross-engine validation: the exact regular-term engine (Figure 3
//! semantics over the inlined program) and the RHS tabulation engine must
//! agree on every query verdict, for both client analyses, across many
//! abstractions.

use pda_analysis::PointsTo;
use pda_dataflow::{rhs, RhsLimits, TermRun};
use pda_escape::EscapeClient;
use pda_lang::term::inline;
use pda_meta::Formula;
use pda_tracer::{AsAnalysis, TracerClient};
use pda_typestate::{TsMode, TypestateClient};

include!("corpus.rs");

/// Runs one escape query under one abstraction on both engines and
/// compares the verdict (does any arriving state satisfy `not_q`?).
fn escape_verdicts_agree(src: &str) {
    let program = pda_lang::parse_program(src).unwrap();
    let pa = PointsTo::analyze(&program);
    let resolver = |c: pda_lang::CallId| pa.callees(c).to_vec();
    let inlined = inline(&program, &resolver).expect("inlinable");
    let rhs_client = EscapeClient::new(&program);
    let term_client = EscapeClient::new(&program).with_extended_vars(&inlined);

    let n = rhs_client.n_atoms();
    for bits in 0..(1u32 << n.min(6)) {
        let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
        let p = rhs_client.param_of_model(&assignment);

        let run = rhs::run(
            &program,
            &AsAnalysis(&rhs_client),
            &p,
            rhs_client.initial_state(),
            &resolver,
            RhsLimits::default(),
        )
        .unwrap();
        let term_analysis = AsAnalysis(&term_client);
        let mut term_run = TermRun::new(&term_analysis, &p, &inlined.arena);
        let d0 = term_client.initial_state();
        let at_points = term_run.states_at_points(inlined.root, &d0);

        for (qid, decl) in program.queries.iter_enumerated() {
            if !matches!(decl.kind, pda_lang::QueryKind::Local { .. }) {
                continue;
            }
            let query = rhs_client.local_query(&program, qid);
            let rhs_fails = run
                .states_at(decl.point)
                .into_iter()
                .any(|d| query.not_q.holds(&p, d));
            let term_fails = at_points
                .get(&decl.point)
                .map(|states| states.iter().any(|d| query.not_q.holds(&p, d)))
                .unwrap_or(false);
            assert_eq!(
                rhs_fails, term_fails,
                "escape engines disagree on {} under p={p} in:\n{src}",
                decl.label
            );
        }
    }
}

fn typestate_verdicts_agree(src: &str) {
    let program = pda_lang::parse_program(src).unwrap();
    let pa = PointsTo::analyze(&program);
    let resolver = |c: pda_lang::CallId| pa.callees(c).to_vec();
    let inlined = inline(&program, &resolver).expect("inlinable");

    for site in (0..program.sites.len()).map(|i| pda_lang::SiteId(i as u32)) {
        let rhs_client = TypestateClient::new(&program, &pa, site, TsMode::stress());
        let term_client = TypestateClient::new(&program, &pa, site, TsMode::stress())
            .with_extended_vars(&inlined);
        let n = rhs_client.n_atoms();
        // Sample abstractions: empty, full, and a few patterns.
        let patterns: Vec<Vec<bool>> = vec![
            vec![false; n],
            vec![true; n],
            (0..n).map(|i| i % 2 == 0).collect(),
            (0..n).map(|i| i % 3 == 0).collect(),
        ];
        for assignment in patterns {
            let p = rhs_client.param_of_model(&assignment);
            let run = rhs::run(
                &program,
                &AsAnalysis(&rhs_client),
                &p,
                rhs_client.initial_state(),
                &resolver,
                RhsLimits::default(),
            )
            .unwrap();
            let term_analysis = AsAnalysis(&term_client);
            let mut term_run = TermRun::new(&term_analysis, &p, &inlined.arena);
            let d0 = term_client.initial_state();
            let at_points = term_run.states_at_points(inlined.root, &d0);
            let not_q = Formula::prim(pda_typestate::TsPrim::Err);

            for (_, decl) in program.queries.iter_enumerated() {
                let rhs_fails = run
                    .states_at(decl.point)
                    .into_iter()
                    .any(|d| not_q.holds(&p, d));
                let term_fails = at_points
                    .get(&decl.point)
                    .map(|states| states.iter().any(|d| not_q.holds(&p, d)))
                    .unwrap_or(false);
                assert_eq!(
                    rhs_fails, term_fails,
                    "type-state engines disagree on {} (site {site}) under p={p} in:\n{src}",
                    decl.label
                );
            }
        }
    }
}

#[test]
fn escape_engines_agree_on_all_programs() {
    for src in PROGRAMS {
        escape_verdicts_agree(src);
    }
}

#[test]
fn typestate_engines_agree_on_all_programs() {
    for src in PROGRAMS {
        typestate_verdicts_agree(src);
    }
}
