//! Integration tests for the `pda-serve` daemon (`pda_serve`):
//!
//! * **Soak equivalence** — serving every thread-escape query of the
//!   seeded hedc benchmark through the supervisor, over 1 and over 8
//!   concurrent connections, produces response lines byte-identical to
//!   each other and verdict-identical (outcome, optimum param, cost,
//!   iterations) to `solve_queries_batch`. The daemon is a transport, not
//!   a different analysis.
//! * **Fault injection** — an injected worker panic surfaces as a
//!   structured `engine_fault` response, quarantines the cache
//!   generation, and the very next request succeeds on the fresh
//!   generation; with a retry policy the same injection is absorbed
//!   without the client ever seeing the fault.
//! * **Kill and restart** — a daemon killed after finishing some queries
//!   resumes them all from its journal: no finished query is ever
//!   re-solved or lost, even with a torn tail from a crash mid-write.
//! * **Socket transport** — a real Unix-socket daemon serves health /
//!   solve / shutdown round-trips and drains cleanly.

use pda_analysis::PointsTo;
use pda_escape::{EscPrim, EscapeClient};
use pda_serve::{
    request_line, run_daemon, ConnState, DaemonOptions, LineBuilder, ServeConfig, SolveScope,
    Supervisor,
};
use pda_suite::Benchmark;
use pda_tracer::{
    default_jobs, outcome_tag, solve_queries_batch, BatchConfig, Outcome, ParamCodec, Query,
    RetryPolicy, TracerConfig,
};
use pda_util::json::parse_json_line;
use std::collections::HashMap;
use std::path::PathBuf;

include!("corpus.rs");

/// The seeded suite benchmark the batch smokes use: the first with >= 16
/// thread-escape access queries (hedc under the default suite), capped to
/// keep debug-build runtime reasonable.
fn hedc_workload() -> (Benchmark, usize) {
    let bench = pda_suite::suite()
        .into_iter()
        .map(Benchmark::load)
        .find(|b| EscapeClient::accesses(&b.program, b.app_methods()).len() >= 16)
        .expect("some suite benchmark has >=16 escape queries");
    (bench, 10)
}

fn access_queries(
    bench: &Benchmark,
    client: &EscapeClient,
    cap: usize,
) -> (Vec<String>, Vec<Query<EscPrim>>) {
    EscapeClient::accesses(&bench.program, bench.app_methods())
        .iter()
        .take(cap)
        .enumerate()
        .map(|(i, &(point, var))| (format!("q{i}"), client.access_query(point, var)))
        .unzip()
}

fn solve_line(index: usize) -> String {
    LineBuilder::new().str("op", "solve").num("index", index as u128).finish()
}

fn fields(line: &str) -> HashMap<String, String> {
    parse_json_line(line).unwrap_or_else(|| panic!("response is not flat JSON: {line}"))
}

/// Drives every query through `sup`, one dedicated `ConnState` per
/// simulated connection, queries dealt round-robin. Returns response
/// lines in query order.
fn serve_all(
    sup: &Supervisor<'_, EscapeClient>,
    n_queries: usize,
    connections: usize,
) -> Vec<String> {
    let mut responses: Vec<(usize, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn_id| {
                scope.spawn(move || {
                    let mut conn = ConnState::new(sup.generation());
                    (conn_id..n_queries)
                        .step_by(connections)
                        .map(|i| {
                            let reply = sup.handle_line(&mut conn, &solve_line(i));
                            assert!(!reply.quarantine, "healthy solve quarantined: {}", reply.text);
                            assert!(!reply.shutdown);
                            (i, reply.text)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("connection thread")).collect()
    });
    responses.sort_by_key(|(i, _)| *i);
    responses.into_iter().map(|(_, line)| line).collect()
}

#[test]
fn soak_over_hedc_matches_the_batch_driver_across_connection_counts() {
    let (bench, cap) = hedc_workload();
    let client = EscapeClient::new(&bench.program);
    let (labels, queries) = access_queries(&bench, &client, cap);
    let callees = bench.callees();

    let (batch, _) = solve_queries_batch(
        &bench.program,
        &callees,
        &client,
        &queries,
        &BatchConfig::default(),
    );

    let mut runs = Vec::new();
    for connections in [1, 8] {
        let sup = Supervisor::new(
            &bench.program,
            &callees,
            &client,
            queries.clone(),
            labels.clone(),
            ServeConfig::default(),
        );
        let responses = serve_all(&sup, queries.len(), connections);
        assert_eq!(sup.served(), queries.len() as u64);
        assert_eq!(sup.faults(), 0);
        assert_eq!(sup.quarantines(), 0);
        runs.push(responses);
    }
    assert_eq!(
        runs[0], runs[1],
        "response lines must be byte-identical across connection counts"
    );

    for (i, (line, reference)) in runs[0].iter().zip(&batch).enumerate() {
        let f = fields(line);
        assert_eq!(f["index"], i.to_string());
        assert_eq!(f["label"], format!("q{i}"));
        assert_eq!(f["iterations"], reference.iterations.to_string());
        assert_eq!(f["retries"], "0");
        assert_eq!(f["generation"], "0");
        assert_eq!(f["resumed"], "false");
        match &reference.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(f["ok"], "true");
                assert_eq!(f["outcome"], "proven");
                assert_eq!(f["param"], param.encode_param(), "optimum diverged for query {i}");
                assert_eq!(f["cost"], cost.to_string());
            }
            Outcome::Impossible => {
                assert_eq!(f["ok"], "true");
                assert_eq!(f["outcome"], "impossible");
            }
            Outcome::Unresolved(_) => {
                assert_eq!(f["ok"], "false");
                assert_eq!(f["error"], outcome_tag(&reference.outcome));
            }
        }
    }
}

/// A tiny corpus fixture for the supervision-path tests, where the
/// analysis itself is irrelevant.
struct Fixture {
    program: pda_lang::Program,
    pa: PointsTo,
}

impl Fixture {
    fn new() -> Fixture {
        let program = pda_lang::parse_program(PROGRAMS[0]).unwrap();
        let pa = PointsTo::analyze(&program);
        Fixture { program, pa }
    }

    fn callees(&self) -> impl Fn(pda_lang::CallId) -> Vec<pda_lang::MethodId> + Sync + '_ {
        |c| self.pa.callees(c).to_vec()
    }

    fn queries(&self, client: &EscapeClient) -> (Vec<String>, Vec<Query<EscPrim>>) {
        self.program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .enumerate()
            .map(|(i, (qid, _))| (format!("q{i}"), client.local_query(&self.program, qid)))
            .unzip()
    }
}

#[test]
fn injected_panic_is_isolated_quarantined_and_survivable() {
    let fx = Fixture::new();
    let client = EscapeClient::new(&fx.program);
    let callees = fx.callees();
    let (labels, queries) = fx.queries(&client);
    assert!(!queries.is_empty());
    let sup = Supervisor::new(
        &fx.program,
        &callees,
        &client,
        queries,
        labels,
        ServeConfig { allow_inject: true, ..ServeConfig::default() },
    );
    let mut conn = ConnState::new(sup.generation());

    let inject =
        LineBuilder::new().str("op", "solve").num("index", 0).str("inject", "panic").finish();
    let mut healthy_baseline: Option<HashMap<String, String>> = None;
    const ROUNDS: u64 = 5;
    for round in 0..ROUNDS {
        // The injected panic must come back as a structured fault on the
        // generation it ran under, and retire that generation.
        let reply = sup.handle_line(&mut conn, &inject);
        let f = fields(&reply.text);
        assert_eq!(f["ok"], "false");
        assert_eq!(f["error"], "engine_fault");
        assert!(f["detail"].contains("injected fault"), "detail: {}", f["detail"]);
        assert_eq!(f["generation"], round.to_string());
        assert!(reply.quarantine, "a fault must quarantine the generation");
        assert_eq!(sup.generation(), round + 1);
        sup.warm_generation(); // what the transport does off the request path

        // The daemon keeps serving: the next request lands on the fresh
        // generation and succeeds.
        let reply = sup.handle_line(&mut conn, &solve_line(0));
        let mut f = fields(&reply.text);
        assert!(!reply.quarantine);
        assert_eq!(f["ok"], "true");
        assert_eq!(f.remove("generation").unwrap(), (round + 1).to_string());
        // The first healthy verdict is memoized; later rounds serve it
        // from memory (verdicts are durable even when caches are not).
        let resumed = f.remove("resumed").unwrap();
        assert_eq!(resumed, if round == 0 { "false" } else { "true" });
        match &healthy_baseline {
            None => healthy_baseline = Some(f),
            Some(first) => assert_eq!(&f, first, "verdict drifted across quarantines"),
        }
    }
    assert_eq!(sup.faults(), ROUNDS);
    assert_eq!(sup.quarantines(), ROUNDS);
    assert_eq!(sup.served(), ROUNDS);

    let health = sup.handle_line(&mut conn, r#"{"op":"health"}"#);
    let f = fields(&health.text);
    assert_eq!(f["ready"], "true");
    assert_eq!(f["generation"], ROUNDS.to_string());
    assert_eq!(f["served"], ROUNDS.to_string());
    assert_eq!(f["faults"], ROUNDS.to_string());
    assert_eq!(f["quarantines"], ROUNDS.to_string());

    // Error paths stay structured too.
    let f = fields(&sup.handle_line(&mut conn, &solve_line(999)).text);
    assert_eq!(f["error"], "unknown_query");
    let f = fields(&sup.handle_line(&mut conn, "not json at all").text);
    assert_eq!(f["error"], "bad_request");
}

#[test]
fn fault_injecting_client_soak_never_kills_the_daemon() {
    use pda_tracer::{
        faulty_query, lift_query, nullcli::NullClient, solve_query, Fault, TracerConfig,
    };

    let program = pda_lang::parse_program(PROGRAMS[0]).unwrap();
    let pa = PointsTo::analyze(&program);
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
    let client = NullClient::new(&program);

    // Fault-free sequential baseline on the *unwrapped* client: the
    // reference every healthy daemon response must match bit for bit.
    let plain: Vec<_> = program
        .queries
        .iter_enumerated()
        .map(|(qid, _)| client.query(&program, qid))
        .collect();
    let config = TracerConfig::default();
    let baseline: Vec<_> =
        plain.iter().map(|q| solve_query(&program, &callees, &client, q, &config)).collect();

    // The daemon corpus: every healthy query, plus a panicking copy of
    // query 0 (the fault's one-shot latch fires on first solve).
    let wrapped = pda_tracer::FaultInjectingClient::new(&client);
    let healthy = plain.len();
    let mut queries: Vec<_> = plain.iter().cloned().map(lift_query).collect();
    queries.push(faulty_query(plain[0].clone(), Fault::Panic("latent bomb".into())));
    let labels: Vec<String> = (0..queries.len()).map(|i| format!("q{i}")).collect();

    let sup = Supervisor::new(&program, &callees, &wrapped, queries, labels, ServeConfig::default());
    let mut conn = ConnState::new(sup.generation());
    let check_healthy = |f: &HashMap<String, String>, i: usize, generation: u64| {
        let reference = &baseline[i];
        assert_eq!(f["generation"], generation.to_string(), "query {i} ran on a retired generation");
        assert_eq!(f["iterations"], reference.iterations.to_string());
        match &reference.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(f["outcome"], "proven");
                assert_eq!(f["param"], param.encode_param(), "query {i} diverged from the driver");
                assert_eq!(f["cost"], cost.to_string());
            }
            Outcome::Impossible => assert_eq!(f["outcome"], "impossible"),
            Outcome::Unresolved(_) => panic!("baseline query {i} did not resolve"),
        }
    };

    // Healthy request, then the bomb, then more healthy requests: the
    // panic is one structured fault, everything around it is untouched.
    check_healthy(&fields(&sup.handle_line(&mut conn, &solve_line(0)).text), 0, 0);

    let reply = sup.handle_line(&mut conn, &solve_line(healthy));
    let f = fields(&reply.text);
    assert_eq!(f["error"], "engine_fault");
    assert!(f["detail"].contains("latent bomb"), "detail: {}", f["detail"]);
    assert!(reply.quarantine);
    sup.warm_generation();

    // Every post-panic request must run on (and report) the fresh
    // generation — never the quarantined one.
    for i in 1..healthy {
        check_healthy(&fields(&sup.handle_line(&mut conn, &solve_line(i)).text), i, 1);
    }
    // The bomb's latch is spent: its query now solves healthily too, and
    // matches the baseline of the query it copied.
    check_healthy(&fields(&sup.handle_line(&mut conn, &solve_line(healthy)).text), 0, 1);

    assert_eq!(sup.faults(), 1);
    assert_eq!(sup.quarantines(), 1);
    assert_eq!(sup.served(), healthy as u64 + 1);
}

#[test]
fn retry_policy_absorbs_an_injected_fault() {
    let fx = Fixture::new();
    let client = EscapeClient::new(&fx.program);
    let callees = fx.callees();
    let (labels, queries) = fx.queries(&client);
    let sup = Supervisor::new(
        &fx.program,
        &callees,
        &client,
        queries,
        labels,
        ServeConfig {
            allow_inject: true,
            retry: Some(RetryPolicy::deterministic(2)),
            ..ServeConfig::default()
        },
    );
    let mut conn = ConnState::new(sup.generation());

    // The injection fires only on attempt 0; the retry ladder re-runs the
    // query and the client sees a clean verdict, never the fault.
    let inject =
        LineBuilder::new().str("op", "solve").num("index", 0).str("inject", "panic").finish();
    let reply = sup.handle_line(&mut conn, &inject);
    let f = fields(&reply.text);
    assert_eq!(f["ok"], "true", "retry must absorb the fault: {}", reply.text);
    assert_eq!(f["retries"], "1");
    assert!(!reply.quarantine, "an absorbed fault must not quarantine");
    assert_eq!(sup.faults(), 0);
    assert_eq!(sup.quarantines(), 0);
    assert_eq!(sup.served(), 1);

    // Injection is an opt-in test hook: a daemon without --allow-inject
    // refuses it outright.
    let (labels, queries) = fx.queries(&client);
    let sup_locked =
        Supervisor::new(&fx.program, &callees, &client, queries, labels, ServeConfig::default());
    let mut conn = ConnState::new(sup_locked.generation());
    let f = fields(&sup_locked.handle_line(&mut conn, &inject).text);
    assert_eq!(f["error"], "inject_forbidden");
}

/// Adapts a test-local `std::thread::scope` into the supervisor's
/// [`SolveScope`] capability, exactly as the daemon transports do.
struct TestScope<'scope, 'env>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> SolveScope<'scope> for TestScope<'scope, 'env> {
    fn spawn(&self, f: Box<dyn FnOnce() + Send + 'scope>) {
        self.0.spawn(f);
    }
}

#[test]
fn watchdog_reclaims_a_non_cooperative_stall_and_the_daemon_keeps_serving() {
    const WATCHDOG_MS: u64 = 100;
    const STALL_MS: u64 = 2_000;

    let fx = Fixture::new();
    let client = EscapeClient::new(&fx.program);
    let callees = fx.callees();
    let (labels, queries) = fx.queries(&client);
    assert!(!queries.is_empty());
    let sup = Supervisor::new(
        &fx.program,
        &callees,
        &client,
        queries,
        labels,
        ServeConfig {
            allow_inject: true,
            watchdog_ms: Some(WATCHDOG_MS),
            ..ServeConfig::default()
        },
    );

    std::thread::scope(|scope| {
        let spawner = TestScope(scope);
        let mut conn = ConnState::new(sup.generation());

        // A healthy watched solve first: the worker heartbeats every
        // CEGAR iteration, so the watchdog must hold its fire even
        // though the budget (100ms) is tight for a debug build.
        let reply = sup.handle_line_watched(&mut conn, &solve_line(0), &spawner);
        let f = fields(&reply.text);
        assert_eq!(f["ok"], "true", "healthy watched solve failed: {}", reply.text);
        assert!(!reply.quarantine);
        assert_eq!(sup.watchdog_fired(), 0, "watchdog fired on a progressing solve");
        let healthy = f;

        // The non-cooperative stall: the worker sleeps 2s flat, polling
        // no deadline and beating no heartbeat. The watchdog must
        // reclaim the request in about 2x its budget — long before the
        // stall would have ended — and quarantine the generation the
        // abandoned worker still holds.
        let inject = LineBuilder::new()
            .str("op", "solve")
            .num("index", 0)
            .str("inject", &format!("stall:{STALL_MS}"))
            .finish();
        let started = std::time::Instant::now();
        let reply = sup.handle_line_watched(&mut conn, &inject, &spawner);
        let elapsed = started.elapsed();
        let f = fields(&reply.text);
        assert_eq!(f["ok"], "false");
        assert_eq!(f["error"], "engine_stall");
        assert!(f["detail"].contains("no progress"), "detail: {}", f["detail"]);
        assert!(reply.quarantine, "a stall must quarantine the generation");
        assert!(
            elapsed < std::time::Duration::from_millis(STALL_MS),
            "watchdog waited out the stall instead of reclaiming it ({elapsed:?})"
        );
        assert_eq!(sup.watchdog_fired(), 1);
        assert_eq!(sup.generation(), 1);
        assert_eq!(sup.inflight(), 0, "stalled request still counted in-flight");
        sup.warm_generation();

        // The daemon keeps serving: the next request lands on the fresh
        // generation and matches the pre-stall verdict.
        let reply = sup.handle_line_watched(&mut conn, &solve_line(0), &spawner);
        let mut f = fields(&reply.text);
        assert!(!reply.quarantine);
        assert_eq!(f["ok"], "true");
        assert_eq!(f.remove("generation").unwrap(), "1");
        // The healthy pre-stall verdict was memoized; the post-stall
        // solve serves it from memory.
        assert_eq!(f.remove("resumed").unwrap(), "true");
        for key in ["outcome", "param", "cost", "iterations"] {
            if let Some(v) = healthy.get(key) {
                assert_eq!(&f[key], v, "verdict drifted across the stall for `{key}`");
            }
        }

        // The supervision counters surface through `health`.
        let health = fields(&sup.handle_line(&mut conn, r#"{"op":"health"}"#).text);
        assert_eq!(health["watchdog_fired"], "1");
        assert_eq!(health["inflight"], "0");
        assert_eq!(health["quarantines"], "1");
        // The abandoned worker parks in this scope until its sleep ends;
        // scope exit joins it (bounded by the stall).
    });
}

fn temp_path(stem: &str) -> PathBuf {
    std::env::temp_dir().join(format!("{stem}-{}", std::process::id()))
}

#[test]
fn kill_and_restart_resumes_every_finished_query_from_the_journal() {
    let (bench, cap) = hedc_workload();
    let cap = cap.min(6);
    let client = EscapeClient::new(&bench.program);
    let (labels, queries) = access_queries(&bench, &client, cap);
    let callees = bench.callees();
    let journal = temp_path("pda-serve-journal");
    let _ = std::fs::remove_file(&journal);
    let solved = cap / 2;

    // First life: finish half the corpus, then die (journal closed, the
    // supervisor dropped — the daemon equivalent of a SIGKILL between
    // requests, since every record is flushed as it lands).
    let mut first_lines = Vec::new();
    {
        let mut sup = Supervisor::new(
            &bench.program,
            &callees,
            &client,
            queries.clone(),
            labels.clone(),
            ServeConfig::default(),
        );
        assert_eq!(sup.attach_journal(journal.clone()), Ok(0));
        let mut conn = ConnState::new(sup.generation());
        for i in 0..solved {
            first_lines.push(sup.handle_line(&mut conn, &solve_line(i)).text);
        }
        sup.close_journal();
    }

    // Second life: every finished query comes back from the journal,
    // verdict-identical, without re-solving; the rest still solve fresh.
    let mut sup = Supervisor::new(
        &bench.program,
        &callees,
        &client,
        queries.clone(),
        labels.clone(),
        ServeConfig::default(),
    );
    assert_eq!(sup.attach_journal(journal.clone()), Ok(solved), "no finished query may be lost");
    let mut conn = ConnState::new(sup.generation());
    for (i, first) in first_lines.iter().enumerate() {
        let mut f = fields(&sup.handle_line(&mut conn, &solve_line(i)).text);
        assert_eq!(f.remove("resumed").unwrap(), "true", "query {i} was re-solved");
        let mut orig = fields(first);
        orig.remove("resumed");
        assert_eq!(f, orig, "resumed verdict diverged for query {i}");
    }
    for i in solved..cap {
        let f = fields(&sup.handle_line(&mut conn, &solve_line(i)).text);
        assert_eq!(f["resumed"], "false");
    }
    assert_eq!(sup.served(), cap as u64);
    sup.close_journal();

    // Third life, after a crash mid-append: a torn final record is
    // dropped by the journal load and compacted away; every *finished*
    // record survives.
    {
        use std::io::Write;
        let mut file =
            std::fs::OpenOptions::new().append(true).open(&journal).expect("journal exists");
        write!(file, "{{\"i\":99,\"outcome\":\"pro").expect("tear the tail");
    }
    let mut sup = Supervisor::new(
        &bench.program,
        &callees,
        &client,
        queries.clone(),
        labels.clone(),
        ServeConfig::default(),
    );
    assert_eq!(sup.attach_journal(journal.clone()), Ok(cap));

    // And the batch op resumes the whole corpus from the same journal
    // without re-solving anything.
    let mut conn = ConnState::new(sup.generation());
    let f = fields(&sup.handle_line(&mut conn, r#"{"op":"batch"}"#).text);
    assert_eq!(f["ok"], "true");
    assert_eq!(f["queries"], cap.to_string());
    assert_eq!(f["resumed"], cap.to_string(), "batch re-solved journaled queries");
    sup.close_journal();
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn socket_daemon_serves_and_drains_on_shutdown() {
    let fx = Fixture::new();
    let client = EscapeClient::new(&fx.program);
    let callees = fx.callees();
    let (labels, queries) = fx.queries(&client);
    let socket = temp_path("pda-serve-sock");
    let _ = std::fs::remove_file(&socket);

    let report = std::thread::scope(|scope| {
        let daemon = {
            let socket = socket.clone();
            let callees = &callees;
            let client = &client;
            let program = &fx.program;
            scope.spawn(move || {
                run_daemon(
                    program,
                    callees,
                    client,
                    queries,
                    labels,
                    ServeConfig::default(),
                    &DaemonOptions { socket: Some(socket), ..DaemonOptions::default() },
                )
            })
        };
        // Wait for the bind before connecting.
        for _ in 0..500 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(socket.exists(), "daemon never bound its socket");

        let health = fields(&request_line(&socket, r#"{"op":"health"}"#).expect("health"));
        assert_eq!(health["ok"], "true");
        assert_eq!(health["ready"], "true");

        let solved = fields(&request_line(&socket, &solve_line(0)).expect("solve"));
        assert_eq!(solved["ok"], "true");
        assert_eq!(solved["index"], "0");

        let bye = fields(&request_line(&socket, r#"{"op":"shutdown"}"#).expect("shutdown"));
        assert_eq!(bye["draining"], "true");

        daemon.join().expect("daemon thread").expect("daemon drains cleanly")
    });
    assert_eq!(report.served, 1);
    assert_eq!(report.faults, 0);
    assert_eq!(report.quarantines, 0);
    assert!(!socket.exists(), "a drained daemon removes its socket file");
}

/// Regression: `thread_cap` must bound the solve op's in-query
/// meta-kernel degree exactly like the batch scheduler bounds its
/// workers. Before the fix, a direct `solve` request reached
/// `analyze_trace_interned_jobs` with the unclamped `meta_jobs` — a
/// daemon configured with a thread cap could still fan the backward
/// kernel out past it.
#[test]
fn thread_cap_clamps_solve_op_meta_jobs() {
    let (bench, _) = hedc_workload();
    let client = EscapeClient::new(&bench.program);
    let (labels, queries) = access_queries(&bench, &client, 2);
    let callees = bench.callees();

    let make = |meta_jobs: usize, thread_cap: Option<usize>| {
        Supervisor::new(
            &bench.program,
            &callees,
            &client,
            queries.clone(),
            labels.clone(),
            ServeConfig {
                tracer: TracerConfig { meta_jobs, ..TracerConfig::default() },
                thread_cap,
                ..ServeConfig::default()
            },
        )
    };

    // An absurd requested degree is capped at the configured bound —
    // the same `min(cap).max(1)` the batch scheduler applies.
    let capped = make(64, Some(2));
    assert_eq!(capped.tracer_config().meta_jobs, 2);
    // `None` keeps the machine clamp, identical to the batch default.
    let uncapped = make(64, None);
    assert_eq!(uncapped.tracer_config().meta_jobs, 64.min(default_jobs()).max(1));
    // A zero cap never zeroes the kernel out.
    assert_eq!(make(64, Some(0)).tracer_config().meta_jobs, 1);

    // The clamp is semantically transparent: a capped daemon serves the
    // same verdicts as the batch driver.
    let (batch, _) = solve_queries_batch(
        &bench.program,
        &callees,
        &client,
        &queries,
        &BatchConfig::default(),
    );
    let mut conn = ConnState::new(capped.generation());
    for (i, reference) in batch.iter().enumerate() {
        let f = fields(&capped.handle_line(&mut conn, &solve_line(i)).text);
        assert_eq!(f["ok"], "true");
        assert_eq!(f["outcome"], outcome_tag(&reference.outcome));
    }
}
