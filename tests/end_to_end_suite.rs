//! End-to-end smoke of the full evaluation pipeline on the two smallest
//! generated benchmarks: both analyses run to completion, buckets add up,
//! and the headline shape of the paper's results holds (most queries
//! resolved; escape proofs are cheap).

use pda_suite::{run_escape, run_typestate, Benchmark, ExperimentConfig, Resolution};

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig { max_queries: 12, max_iters: 30, ..ExperimentConfig::default() }
}

#[test]
fn smallest_two_benchmarks_end_to_end() {
    let cfg = small_cfg();
    for gen_cfg in pda_suite::suite().into_iter().take(2) {
        let bench = Benchmark::load(gen_cfg);
        for run in [run_typestate(&bench, &cfg), run_escape(&bench, &cfg)] {
            let (proven, impossible, unresolved) = run.precision();
            assert_eq!(proven + impossible + unresolved, run.outcomes.len());
            assert!(!run.outcomes.is_empty(), "{}: no queries", run.analysis);
            // Headline claim shape: the vast majority of queries resolve.
            let resolved = proven + impossible;
            assert!(
                resolved * 10 >= run.outcomes.len() * 7,
                "{} on {}: only {resolved}/{} resolved",
                run.analysis,
                run.benchmark,
                run.outcomes.len()
            );
            // Iteration counts are consistent with resolution.
            for o in &run.outcomes {
                match o.resolution {
                    Resolution::Proven => {
                        assert!(o.iterations >= 1);
                        assert!(o.cost.is_some());
                    }
                    Resolution::Impossible => assert!(o.cost.is_none()),
                    Resolution::Unresolved => {}
                }
            }
        }
    }
}

#[test]
fn escape_proofs_are_cheap_on_average() {
    // Paper, Table 3: thread-escape needs only 1-2 L-sites on average.
    let bench = Benchmark::load(pda_suite::suite().remove(0));
    let run = run_escape(&bench, &small_cfg());
    if let Some(avg) = run.cheapest_sizes().mean() {
        assert!(avg <= 6.0, "escape proofs unexpectedly expensive: avg {avg}");
    }
}

#[test]
fn deterministic_outcomes_across_runs() {
    let cfg = small_cfg();
    let bench = Benchmark::load(pda_suite::suite().remove(0));
    let a = run_escape(&bench, &cfg);
    let b = run_escape(&bench, &cfg);
    let key = |r: &pda_suite::AnalysisRun| -> Vec<(String, bool, Option<u64>)> {
        r.outcomes
            .iter()
            .map(|o| (o.label.clone(), o.resolution == Resolution::Proven, o.cost))
            .collect()
    };
    assert_eq!(key(&a), key(&b));
}
