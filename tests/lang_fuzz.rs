//! Deterministic mutational fuzz of the Jaylite frontend
//! (`lexer` → `parser` → `resolve` → `validate`).
//!
//! Starting from the shared corpus, a fixed-seed [`SplitMix64`] applies
//! byte-level mutations (deletions, duplications, splices, truncations,
//! token insertions) and feeds every mutant through
//! [`pda_lang::parse_program`]. The frontend's contract under garbage is
//! *total*: every input either resolves to a [`pda_lang::Program`] or
//! returns a typed [`pda_lang::FrontendError`] — it must never panic,
//! hang, or index out of bounds, even on torn multi-byte UTF-8, deeply
//! nested expressions, or truncated declarations. Mutants that survive
//! the frontend are additionally run through `validate::check`, which
//! must be total on every well-resolved program.
//!
//! The seed is fixed, so a failure here is a deterministic reproducer,
//! not a flake: re-running the test replays the identical mutant stream.

use pda_util::SplitMix64;

include!("corpus.rs");

/// Keywords and punctuation spliced into mutants so the fuzz reaches
/// past the lexer into parser and resolver edge cases.
const TOKENS: &[&str] = &[
    "fn ", "class ", "global ", "var ", "field ", "query ", "local ", "state ", "in ", "if ",
    "else ", "while ", "return ", "new ", "null", "this", "(*)", "{", "}", "(", ")", ";", ",",
    ".", "=", ":", "*", "q1", "main", "\u{fe0f}", "\0", "\u{7f}",
];

fn mutate(rng: &mut SplitMix64, src: &str) -> String {
    let mut bytes: Vec<u8> = src.as_bytes().to_vec();
    for _ in 0..rng.gen_range_inclusive(1, 4) {
        if bytes.is_empty() {
            bytes.extend_from_slice(TOKENS[rng.gen_range(0, TOKENS.len())].as_bytes());
            continue;
        }
        match rng.gen_range(0, 6) {
            // Delete a random span.
            0 => {
                let start = rng.gen_range(0, bytes.len());
                let len = rng.gen_range_inclusive(1, (bytes.len() - start).min(24));
                bytes.drain(start..start + len);
            }
            // Duplicate a random span in place.
            1 => {
                let start = rng.gen_range(0, bytes.len());
                let len = rng.gen_range_inclusive(1, (bytes.len() - start).min(24));
                let span: Vec<u8> = bytes[start..start + len].to_vec();
                bytes.splice(start..start, span);
            }
            // Splice in a token at a random offset.
            2 => {
                let at = rng.gen_range(0, bytes.len() + 1);
                let tok = TOKENS[rng.gen_range(0, TOKENS.len())];
                bytes.splice(at..at, tok.bytes());
            }
            // Flip one byte to an arbitrary value (may tear UTF-8).
            3 => {
                let at = rng.gen_range(0, bytes.len());
                bytes[at] = (rng.next_u64() & 0xff) as u8;
            }
            // Truncate the tail.
            4 => bytes.truncate(rng.gen_range(0, bytes.len())),
            // Swap two bytes (cheap reordering).
            _ => {
                let a = rng.gen_range(0, bytes.len());
                let b = rng.gen_range(0, bytes.len());
                bytes.swap(a, b);
            }
        }
    }
    // The frontend takes `&str`, so repair any torn UTF-8 lossily — the
    // replacement characters themselves are hostile lexer input.
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn frontend_is_total_on_mutated_corpus() {
    let mut rng = SplitMix64::new(0x5eed_1a06_f022_2025);
    let (mut accepted, mut rejected) = (0u32, 0u32);
    for round in 0..1200 {
        let base = PROGRAMS[rng.gen_range(0, PROGRAMS.len())];
        let mutant = mutate(&mut rng, base);
        match pda_lang::parse_program(&mutant) {
            Ok(program) => {
                accepted += 1;
                // Well-resolved mutants must also be safe to validate…
                let violations = pda_lang::validate::check(&program);
                // …and every violation must render.
                for v in &violations {
                    let _ = format!("{v:?}");
                }
            }
            Err(e) => {
                rejected += 1;
                // Typed errors must always render a message.
                assert!(!e.to_string().is_empty(), "round {round}: silent error");
            }
        }
    }
    // The mutator is tuned to exercise both sides of the contract; if
    // either count collapses to zero the fuzz has gone blind.
    assert!(accepted > 0, "no mutant survived the frontend — mutations too destructive");
    assert!(rejected > 0, "every mutant parsed — mutations too timid");
}

#[test]
fn frontend_is_total_on_adversarial_fragments() {
    // Handcrafted nasties: unterminated constructs, deep nesting, BOMs,
    // NULs, and pathological repetition.
    let deep_parens =
        format!("fn main() {{ var x; x = {}null{}; }}", "(".repeat(256), ")".repeat(256));
    let deep_blocks = format!("fn main() {{ {} {} }}", "if (*) {".repeat(200), "}".repeat(200));
    let many_vars = format!(
        "fn main() {{ var {}; }}",
        (0..500).map(|i| format!("v{i}")).collect::<Vec<_>>().join(", ")
    );
    let cases: Vec<String> = vec![
        String::new(),
        " ".into(),
        "\u{feff}fn".into(),
        "fn main() { query q: local".into(),
        "class C { field".into(),
        "fn f(".into(),
        "query q: state x in {".into(),
        "fn main() { var x; x = ".into(),
        "/*".into(),
        "\"".into(),
        "\0\0\0".into(),
        deep_parens,
        deep_blocks,
        many_vars,
    ];
    for (i, src) in cases.iter().enumerate() {
        match pda_lang::parse_program(src) {
            Ok(program) => {
                let _ = pda_lang::validate::check(&program);
            }
            Err(e) => assert!(!e.to_string().is_empty(), "case {i}: silent error"),
        }
    }
}
