//! Integration tests for the batch query scheduler
//! (`pda_tracer::solve_queries_batch`):
//!
//! * **Determinism** — for every program in the shared corpus, solving
//!   all thread-escape queries with `--jobs 1` and `--jobs 8` yields
//!   identical `Outcome`s, optimum costs, and iteration counts. The
//!   `jobs == 1` path is today's sequential per-query driver; `jobs > 1`
//!   adds the worker pool and the shared forward-run cache, neither of
//!   which may change any verdict.
//! * **Cache correctness** — a forward run served from the cache yields
//!   the same verdicts (per query point) as a freshly computed run, and
//!   repeated lookups execute the tabulation exactly once.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_tracer::{
    solve_queries_batch, AsAnalysis, BatchConfig, ForwardCache, Outcome, Query, TracerClient,
};

include!("corpus.rs");

fn escape_queries(
    program: &pda_lang::Program,
    client: &EscapeClient,
) -> Vec<Query<pda_escape::EscPrim>> {
    program
        .queries
        .iter_enumerated()
        .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
        .map(|(qid, _)| client.local_query(program, qid))
        .collect()
}

#[test]
fn jobs_1_and_jobs_8_agree_on_every_corpus_program() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        let queries = escape_queries(&program, &client);
        assert!(!queries.is_empty());

        let seq_cfg = BatchConfig { jobs: 1, ..BatchConfig::default() };
        let par_cfg = BatchConfig { jobs: 8, ..BatchConfig::default() };
        let (seq, seq_stats) =
            solve_queries_batch(&program, &callees, &client, &queries, &seq_cfg);
        let (par, _) = solve_queries_batch(&program, &callees, &client, &queries, &par_cfg);

        assert_eq!(seq_stats.cache.lookups(), 0, "jobs=1 must not touch the cache");
        assert_eq!(seq.len(), par.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                a.outcome, b.outcome,
                "outcome diverged for query {i} in:\n{src}"
            );
            assert_eq!(
                a.iterations, b.iterations,
                "iteration count diverged for query {i} in:\n{src}"
            );
            if let (Outcome::Proven { cost: ca, .. }, Outcome::Proven { cost: cb, .. }) =
                (&a.outcome, &b.outcome)
            {
                assert_eq!(ca, cb, "optimum cost diverged for query {i} in:\n{src}");
            }
        }
    }
}

#[test]
fn cached_forward_run_matches_fresh_run() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        let queries = escape_queries(&program, &client);
        let n = client.n_atoms();
        let cache: ForwardCache<'_, _> = ForwardCache::new();

        // A few representative abstractions, each looked up twice.
        let patterns: Vec<Vec<bool>> = vec![
            vec![false; n],
            vec![true; n],
            (0..n).map(|i| i % 2 == 0).collect(),
        ];
        for assignment in &patterns {
            let p = client.param_of_model(assignment);
            let fresh = pda_dataflow::rhs::run(
                &program,
                &AsAnalysis(&client),
                &p,
                client.initial_state(),
                &callees,
                pda_dataflow::RhsLimits::default(),
            )
            .unwrap();
            let max_facts = pda_dataflow::RhsLimits::default().max_facts;
            for round in 0..2 {
                let waits = std::sync::atomic::AtomicU64::new(0);
                let cached = cache
                    .forward(assignment, max_facts, pda_util::Deadline::NEVER, &waits, || {
                        assert_eq!(round, 0, "second lookup must not recompute");
                        pda_dataflow::rhs::run(
                            &program,
                            &AsAnalysis(&client),
                            &p,
                            client.initial_state(),
                            &callees,
                            pda_dataflow::RhsLimits::default(),
                        )
                    })
                    .unwrap();
                assert_eq!(cached.n_facts(), fresh.n_facts());
                for q in &queries {
                    let failing = |d: &pda_escape::Env| q.not_q.holds(&p, d);
                    let fresh_fails = fresh.witness(q.point, &failing).is_some();
                    let cached_fails = cached.witness(q.point, &failing).is_some();
                    assert_eq!(
                        fresh_fails, cached_fails,
                        "cached verdict diverged under p={p} in:\n{src}"
                    );
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses as usize, patterns.len());
        assert_eq!(stats.hits as usize, patterns.len());
    }
}
