//! Integration tests for fault-tolerant batch execution
//! (`pda_tracer::batch` + `faultcli` + `resilience`):
//!
//! * **Fault determinism** — a batch mixing healthy queries with a
//!   panicking query and a zero-deadline query completes under
//!   `jobs ∈ {1, 2, 8}`, and every healthy query's result is
//!   bit-identical (outcome, iterations, escalations) to a sequential
//!   fault-free `solve_query` on the unwrapped client. The injected
//!   faults themselves are deterministic (panic payloads and zero
//!   deadlines don't race), so the *entire* result vector agrees across
//!   job counts.
//! * **Panic isolation in the forward engine** — a client whose transfer
//!   function always panics (the fault fires *inside* the shared forward
//!   cache's compute closure) still yields a complete batch of
//!   `EngineFault` results, with no deadlocked cache waiters.
//! * **Deadlines** — a stalling client primitive plus a per-query
//!   timeout resolves as `DeadlineExceeded` instead of hanging.
//! * **Meta-failure** — an unsound weakest precondition surfaces as
//!   `Unresolved::MetaFailure` through `solve_query`.
//! * **Escalation** — a starved per-query fact budget recovers to the
//!   same proof under the geometric escalation ladder, visible in
//!   `BatchStats::escalations`.
//! * **Checkpoint/resume** — a batch streams results to a JSONL
//!   checkpoint; rerunning (including from a truncated, torn file)
//!   skips restored queries and reproduces the uninterrupted results.

use pda_analysis::PointsTo;
use pda_tracer::{
    faulty_query, lift_query, load_checkpoint, nullcli::NullClient, solve_queries_batch,
    solve_queries_batch_checkpointed, solve_query, BatchConfig, Escalation, Fault,
    FaultInjectingClient, Outcome, Query, QueryLimits, QueryResult, TracerConfig, Unresolved,
};
use pda_util::BitSet;
use std::time::Duration;

const SRC: &str = r#"
    class C {}
    fn main() {
        var a, b, c, d, e;
        a = null;
        b = a;
        c = null;
        d = new C;
        e = b;
        query qa: local b;
        query qb: local e;
        query qc: local c;
        query qd: local d;
    }
"#;

struct Fixture {
    program: pda_lang::Program,
    pa: PointsTo,
    client: NullClient,
}

impl Fixture {
    fn new(src: &str) -> Fixture {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        Fixture { program, pa, client }
    }

    fn queries(&self) -> Vec<Query<pda_tracer::nullcli::NullPrim>> {
        self.program
            .queries
            .iter_enumerated()
            .map(|(qid, _)| self.client.query(&self.program, qid))
            .collect()
    }
}

/// The deterministic fields of a result — everything but wall time.
fn key(r: &QueryResult<BitSet>) -> (Outcome<BitSet>, usize, u32) {
    (r.outcome.clone(), r.iterations, r.escalations)
}

#[test]
fn faulted_batch_is_deterministic_across_job_counts() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let config = TracerConfig::default();

    // Fault-free sequential baseline on the *unwrapped* client.
    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &config))
        .collect();

    let wrapped = FaultInjectingClient::new(&fx.client);
    let healthy = fx.queries().len();

    let mut per_jobs = Vec::new();
    for jobs in [1usize, 2, 8] {
        // The batch: all four healthy queries, plus a panicking copy of
        // qa and a zero-deadline copy of qc. Rebuilt per run — a fault's
        // one-shot `fired` latch is per query *instance*, and a spent
        // trap would solve healthily on the next run.
        let mut queries: Vec<_> = fx.queries().into_iter().map(lift_query).collect();
        let qs = fx.queries();
        queries.push(faulty_query(qs[0].clone(), Fault::Panic("injected panic".into())));
        queries.push(
            lift_query(qs[2].clone())
                .with_limits(QueryLimits { timeout: Some(Duration::ZERO), max_facts: None, mem_budget: None }),
        );
        let batch = BatchConfig { tracer: config.clone(), jobs, ..BatchConfig::default() };
        let (results, stats) =
            solve_queries_batch(&fx.program, &callees, &wrapped, &queries, &batch);
        assert_eq!(results.len(), queries.len());
        assert_eq!(stats.engine_faults, 1, "jobs={jobs}");
        assert_eq!(stats.deadline_exceeded, 1, "jobs={jobs}");
        assert_eq!(stats.resumed, 0);

        // Healthy queries are bit-identical to the fault-free baseline.
        for (i, (r, b)) in results.iter().zip(&baseline).enumerate() {
            assert_eq!(key(r), key(b), "healthy query {i} diverged under jobs={jobs}");
        }
        // The faulted queries resolved as their injected failures.
        assert_eq!(
            results[healthy].outcome,
            Outcome::Unresolved(Unresolved::EngineFault("injected panic".into())),
            "jobs={jobs}"
        );
        assert_eq!(
            results[healthy + 1].outcome,
            Outcome::Unresolved(Unresolved::DeadlineExceeded),
            "jobs={jobs}"
        );
        per_jobs.push(results.iter().map(key).collect::<Vec<_>>());
    }
    // Panic payloads and zero deadlines are schedule-independent, so the
    // whole vector agrees across job counts.
    assert_eq!(per_jobs[0], per_jobs[1]);
    assert_eq!(per_jobs[0], per_jobs[2]);

    // Sanity: the baseline itself resolved decisively.
    assert!(matches!(baseline[0].outcome, Outcome::Proven { .. }));
    assert!(matches!(baseline[3].outcome, Outcome::Impossible));
}

#[test]
fn transfer_panic_inside_forward_cache_faults_every_query_without_deadlock() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let bomb = FaultInjectingClient::new(&fx.client).with_transfer_bomb("transfer bomb");
    let queries: Vec<_> = fx.queries().into_iter().map(lift_query).collect();
    for jobs in [1usize, 4] {
        let batch = BatchConfig { tracer: TracerConfig::default(), jobs, ..BatchConfig::default() };
        let (results, stats) = solve_queries_batch(&fx.program, &callees, &bomb, &queries, &batch);
        assert_eq!(stats.engine_faults, results.len(), "jobs={jobs}");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.outcome,
                Outcome::Unresolved(Unresolved::EngineFault("transfer bomb".into())),
                "query {i}, jobs={jobs}"
            );
        }
    }
}

#[test]
fn stalling_client_hits_the_query_deadline() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let wrapped = FaultInjectingClient::new(&fx.client);
    let q = faulty_query(fx.queries()[0].clone(), Fault::Stall(Duration::from_millis(300)))
        .with_limits(QueryLimits { timeout: Some(Duration::from_millis(25)), max_facts: None, mem_budget: None });
    let r = solve_query(&fx.program, &callees, &wrapped, &q, &TracerConfig::default());
    assert_eq!(r.outcome, Outcome::Unresolved(Unresolved::DeadlineExceeded), "{r:?}");
}

#[test]
fn unsound_wp_is_reported_as_meta_failure() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let wrapped = FaultInjectingClient::new(&fx.client);
    let q = faulty_query(fx.queries()[0].clone(), Fault::BreakWp);
    let r = solve_query(&fx.program, &callees, &wrapped, &q, &TracerConfig::default());
    let Outcome::Unresolved(Unresolved::MetaFailure(msg)) = &r.outcome else {
        panic!("expected MetaFailure, got {:?}", r.outcome);
    };
    assert!(msg.contains("membership invariant"), "{msg}");
}

#[test]
fn escalation_recovers_starved_queries_in_a_batch() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    // Every query starts with a 1-fact budget: hopeless without
    // escalation, recovered by the 4x ladder.
    let starved: Vec<_> = fx
        .queries()
        .into_iter()
        .map(|q| q.with_limits(QueryLimits { timeout: None, max_facts: Some(1), mem_budget: None }))
        .collect();
    let no_escalation = BatchConfig::default();
    let (broke, _) = solve_queries_batch(&fx.program, &callees, &fx.client, &starved, &no_escalation);
    assert!(broke
        .iter()
        .all(|r| r.outcome == Outcome::Unresolved(Unresolved::AnalysisTooBig)));

    let ladder = BatchConfig {
        tracer: TracerConfig {
            escalation: Escalation { retries: 12, ..Escalation::standard() },
            ..TracerConfig::default()
        },
        ..BatchConfig::default()
    };
    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &TracerConfig::default()))
        .collect();
    for jobs in [1usize, 4] {
        let cfg = BatchConfig { jobs, ..ladder.clone() };
        let (recovered, stats) =
            solve_queries_batch(&fx.program, &callees, &fx.client, &starved, &cfg);
        assert!(stats.escalations > 0, "jobs={jobs}");
        for (r, b) in recovered.iter().zip(&baseline) {
            assert_eq!(r.outcome, b.outcome, "jobs={jobs}");
            assert!(r.escalations > 0, "jobs={jobs}");
        }
    }
}

#[test]
fn checkpoint_resume_skips_finished_queries_and_survives_torn_tails() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let queries = fx.queries();
    let batch = BatchConfig { jobs: 2, ..BatchConfig::default() };
    let path = std::env::temp_dir()
        .join(format!("pda-resilience-ckpt-{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();

    let (first, stats) = solve_queries_batch_checkpointed(
        &fx.program, &callees, &fx.client, &queries, &batch, &path,
    )
    .unwrap();
    assert_eq!(stats.resumed, 0);

    // A full rerun restores everything from the file and solves nothing.
    let (second, stats) = solve_queries_batch_checkpointed(
        &fx.program, &callees, &fx.client, &queries, &batch, &path,
    )
    .unwrap();
    assert_eq!(stats.resumed, queries.len());
    assert_eq!(stats.cache.lookups(), 0, "resumed queries must not run");
    assert_eq!(first, second, "restored results must round-trip exactly");

    // Simulate a crash: keep the header and the first two records, plus a
    // torn half-written record. Resume re-solves only the missing two.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    std::fs::write(&path, format!("{}\n{{\"i\":3,\"outc", keep.join("\n"))).unwrap();
    let (third, stats) = solve_queries_batch_checkpointed(
        &fx.program, &callees, &fx.client, &queries, &batch, &path,
    )
    .unwrap();
    assert_eq!(stats.resumed, 2);
    for (a, b) in first.iter().zip(&third) {
        assert_eq!(key(a), key(b));
    }

    // A checkpoint for a different batch is refused outright.
    let err = solve_queries_batch_checkpointed(
        &fx.program, &callees, &fx.client, &queries[..2], &batch, &path,
    )
    .unwrap_err();
    assert!(err.to_string().contains("mismatch"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// Byte-offset truncation torture: a valid v2 checkpoint truncated at
/// *every* byte offset must never panic the loader, never fabricate or
/// corrupt a record, and must recover every record whose line survived
/// the cut completely — the exact durability contract a `kill -9`
/// mid-write relies on.
#[test]
fn checkpoint_truncated_at_every_byte_offset_recovers_the_complete_prefix() {
    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let queries = fx.queries();
    let batch = BatchConfig { jobs: 1, ..BatchConfig::default() };
    let path = std::env::temp_dir()
        .join(format!("pda-resilience-trunc-src-{}.jsonl", std::process::id()));
    std::fs::remove_file(&path).ok();
    solve_queries_batch_checkpointed(&fx.program, &callees, &fx.client, &queries, &batch, &path)
        .unwrap();

    let bytes = std::fs::read(&path).unwrap();
    let text = String::from_utf8(bytes.clone()).unwrap();
    let full = load_checkpoint::<pda_util::BitSet>(&path, queries.len()).unwrap();
    assert_eq!(full.len(), queries.len(), "the untruncated journal holds every record");

    // Byte offset just past each line's newline, paired with the query
    // index its record carries (the header has no index).
    let mut header_end = 0;
    let mut record_ends: Vec<(usize, usize)> = Vec::new();
    let mut pos = 0;
    for (j, line) in text.split_inclusive('\n').enumerate() {
        pos += line.len();
        if j == 0 {
            header_end = pos;
            continue;
        }
        let idx: usize = pda_util::json::parse_json_line(line.trim_end())
            .and_then(|f| f.get("i").and_then(|v| v.parse().ok()))
            .expect("every full record line carries its index");
        record_ends.push((pos, idx));
    }

    let trunc = std::env::temp_dir()
        .join(format!("pda-resilience-trunc-{}.jsonl", std::process::id()));
    for t in 0..=bytes.len() {
        std::fs::write(&trunc, &bytes[..t]).unwrap();
        // Must never panic, whatever the offset.
        match load_checkpoint::<pda_util::BitSet>(&trunc, queries.len()) {
            Ok(restored) => {
                // Exactly the complete prefix: nothing fully written is
                // lost, and nothing is invented or altered.
                for &(end, idx) in &record_ends {
                    if end <= t {
                        assert!(
                            restored.contains_key(&idx),
                            "offset {t}: completely-written record {idx} was lost"
                        );
                    }
                }
                for (idx, r) in &restored {
                    assert_eq!(r, &full[idx], "offset {t}: record {idx} was corrupted");
                }
            }
            // Only an incomplete header may make the file unusable —
            // then nothing was durable yet.
            Err(e) => assert!(
                t < header_end,
                "offset {t}: a valid header plus a torn tail must load, got: {e}"
            ),
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trunc).ok();
}

/// The full parallelism grid — batch workers crossed with in-query
/// `meta_jobs` under the interned kernel — stays deterministic with an
/// injected panic in the batch: healthy queries match the fault-free
/// sequential baseline at every combination, and the faulted query
/// resolves as the same `EngineFault` everywhere.
#[test]
fn faulted_batch_is_deterministic_across_jobs_and_meta_jobs() {
    use pda_tracer::MetaKernel;

    let fx = Fixture::new(SRC);
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let config = TracerConfig { kernel: MetaKernel::Interned, ..TracerConfig::default() };

    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &config))
        .collect();

    let wrapped = FaultInjectingClient::new(&fx.client);
    let healthy = fx.queries().len();

    let mut per_combo = Vec::new();
    for (jobs, meta_jobs) in [(1usize, 1usize), (1, 4), (2, 2), (8, 1), (8, 4)] {
        // Rebuilt per run: a fault's one-shot latch is per query instance.
        let mut queries: Vec<_> = fx.queries().into_iter().map(lift_query).collect();
        queries.push(faulty_query(
            fx.queries()[0].clone(),
            Fault::Panic("injected panic".into()),
        ));
        let batch = BatchConfig {
            tracer: TracerConfig { meta_jobs, ..config.clone() },
            jobs,
            ..BatchConfig::default()
        };
        let (results, stats) =
            solve_queries_batch(&fx.program, &callees, &wrapped, &queries, &batch);
        assert_eq!(stats.engine_faults, 1, "jobs={jobs} meta_jobs={meta_jobs}");
        for (i, (r, b)) in results.iter().zip(&baseline).enumerate() {
            assert_eq!(
                key(r),
                key(b),
                "healthy query {i} diverged at jobs={jobs} meta_jobs={meta_jobs}"
            );
        }
        assert_eq!(
            results[healthy].outcome,
            Outcome::Unresolved(Unresolved::EngineFault("injected panic".into())),
            "jobs={jobs} meta_jobs={meta_jobs}"
        );
        per_combo.push(results.iter().map(key).collect::<Vec<_>>());
    }
    for combo in &per_combo[1..] {
        assert_eq!(&per_combo[0], combo, "result vector diverged across the grid");
    }
}
