//! Differential validation of the BDD viable-set engine against DPLL
//! (the reference minimum-cost search).
//!
//! The ROBDD engine is designed to be **bit-identical** to DPLL: same
//! satisfiability verdicts, same minimum cost, and the *same extracted
//! model* — both engines canonicalize ties to the lexicographically
//! least minimum-cost assignment. Three layers check that:
//!
//! 1. seeded random CNF-ish instances (SplitMix64): a resident `Bdd`
//!    conjoining constraints one at a time — exactly the CEGAR usage
//!    pattern — must agree with a fresh `MinCostSolver` over the full
//!    prefix after *every* conjoin, down to the exact model;
//! 2. every corpus query, both real clients, `ViableEngine::Dpll` vs
//!    `ViableEngine::Bdd`: outcome, iteration count, and escalation
//!    count must match exactly, fresh and warm (resident intern cache);
//! 3. batch solving at `jobs ∈ {1, 8}` under both engines: all four
//!    runs must agree on every verdict;
//! 4. crash recovery: a BDD batch killed mid-run (torn checkpoint)
//!    resumes to results bit-identical to an uninterrupted DPLL run.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_solver::{Bdd, MinCostSolver, PFormula};
use pda_tracer::{
    solve_queries_batch, solve_queries_batch_checkpointed, solve_query, solve_query_cached_warm,
    BatchConfig, ForwardCache, InternCache, Outcome, QueryObs, TracerConfig, ViableEngine,
};
use pda_typestate::{TsMode, TypestateClient};
use pda_util::{Deadline, SplitMix64};

include!("corpus.rs");

fn engine_config(engine: ViableEngine) -> TracerConfig {
    TracerConfig { viable_engine: engine, ..TracerConfig::default() }
}

/// The bit-identity fingerprint of a result: everything except wall-clock
/// time and the effort counters (which differ across engines by design).
fn fingerprint<P: Clone>(r: &pda_tracer::QueryResult<P>) -> (Outcome<P>, usize, u32) {
    (r.outcome.clone(), r.iterations, r.escalations)
}

/// A random shallow formula over `n` atoms: a disjunction of literals
/// and small conjunctions, the shape the tracer's negated-cube
/// constraints take.
fn random_clause(rng: &mut SplitMix64, n: usize) -> PFormula {
    let width = rng.gen_range_inclusive(1, 4.min(n));
    let lits: Vec<PFormula> = (0..width)
        .map(|_| {
            let atom = rng.gen_range(0, n);
            if rng.gen_bool(0.25) {
                PFormula::and(vec![
                    PFormula::lit(atom, rng.gen_bool(0.5)),
                    PFormula::lit(rng.gen_range(0, n), rng.gen_bool(0.5)),
                ])
            } else {
                PFormula::lit(atom, rng.gen_bool(0.5))
            }
        })
        .collect();
    PFormula::or(lits)
}

/// Layer 1: a resident BDD conjoining seeded random constraints one at a
/// time agrees with a from-scratch DPLL solve of the same prefix after
/// every single conjoin — satisfiability, minimum cost, and the exact
/// model. This is precisely the warm CEGAR usage the tracer relies on.
#[test]
fn resident_bdd_matches_fresh_dpll_on_random_instances() {
    let mut rng = SplitMix64::new(0x7e5_ab1e);
    for case in 0..60 {
        let n = rng.gen_range_inclusive(2, 24);
        let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 5) as u64).collect();
        let mut bdd = Bdd::new(n, costs.clone());
        let mut constraints: Vec<PFormula> = Vec::new();
        for step in 0..rng.gen_range_inclusive(1, 12) {
            constraints.push(random_clause(&mut rng, n));
            bdd.conjoin(constraints.last().unwrap());
            bdd.check_reduced().unwrap();

            let mut dpll = MinCostSolver::new(n, costs.clone());
            for c in &constraints {
                dpll.require(c.clone());
            }
            let expected = dpll.solve();
            assert_eq!(
                bdd.solve(),
                expected,
                "case {case} step {step}: engines diverged on {n} atoms"
            );
            assert_eq!(bdd.is_false(), expected.is_none(), "case {case} step {step}: emptiness");
        }
    }
}

/// Layer 2a: end-to-end over the corpus, thread-escape client, fresh
/// caches per query.
#[test]
fn solve_query_is_engine_invariant_for_escape() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        for (qid, decl) in program.queries.iter_enumerated() {
            if !matches!(decl.kind, pda_lang::QueryKind::Local { .. }) {
                continue;
            }
            let query = client.local_query(&program, qid);
            let dpll = solve_query(
                &program,
                &callees,
                &client,
                &query,
                &engine_config(ViableEngine::Dpll),
            );
            let bdd = solve_query(
                &program,
                &callees,
                &client,
                &query,
                &engine_config(ViableEngine::Bdd),
            );
            assert_eq!(
                fingerprint(&dpll),
                fingerprint(&bdd),
                "engines diverged on {} in:\n{src}",
                decl.label
            );
        }
    }
}

/// Layer 2b: end-to-end over the corpus, type-state client, every site.
#[test]
fn solve_query_is_engine_invariant_for_typestate() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        for site in (0..program.sites.len()).map(|i| pda_lang::SiteId(i as u32)) {
            let client = TypestateClient::new(&program, &pa, site, TsMode::stress());
            for (_, decl) in program.queries.iter_enumerated() {
                let query = client.stress_query(decl.point);
                let dpll = solve_query(
                    &program,
                    &callees,
                    &client,
                    &query,
                    &engine_config(ViableEngine::Dpll),
                );
                let bdd = solve_query(
                    &program,
                    &callees,
                    &client,
                    &query,
                    &engine_config(ViableEngine::Bdd),
                );
                assert_eq!(
                    fingerprint(&dpll),
                    fingerprint(&bdd),
                    "engines diverged at {} site {site:?} in:\n{src}",
                    decl.label
                );
            }
        }
    }
}

/// Layer 2c: the warm daemon path — one resident intern cache serving
/// every corpus query in sequence, per engine. Warm memoization is
/// semantically transparent, so the warm BDD run must match the fresh
/// DPLL fingerprints query for query.
#[test]
fn warm_cache_solves_are_engine_invariant() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        let queries: Vec<_> = program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .map(|(qid, _)| client.local_query(&program, qid))
            .collect();
        let mut warm_runs = Vec::new();
        for engine in [ViableEngine::Dpll, ViableEngine::Bdd] {
            let config = engine_config(engine);
            let cache = ForwardCache::new();
            let mut icache = InternCache::default();
            let mut fps = Vec::new();
            for (i, query) in queries.iter().enumerate() {
                let mut obs = QueryObs::new(i as u64, false, false);
                let r = solve_query_cached_warm(
                    &program,
                    &callees,
                    &client,
                    query,
                    &config,
                    &cache,
                    &mut icache,
                    Deadline::NEVER,
                    &mut obs,
                );
                fps.push(fingerprint(&r));
            }
            warm_runs.push(fps);
        }
        assert_eq!(warm_runs[0], warm_runs[1], "warm engines diverged in:\n{src}");
        // And warm matches fresh (the sequential solve_query driver).
        for (i, (qid, _)) in program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .enumerate()
        {
            let query = client.local_query(&program, qid);
            let fresh = solve_query(
                &program,
                &callees,
                &client,
                &query,
                &engine_config(ViableEngine::Bdd),
            );
            assert_eq!(fingerprint(&fresh), warm_runs[1][i], "warm BDD != fresh BDD in:\n{src}");
        }
    }
}

/// Layer 4: crash recovery is engine-invariant. A BDD-engine batch
/// "killed" mid-run — its checkpoint truncated to the header, a prefix
/// of records, and a torn half-written tail line — resumes under the
/// BDD engine, re-solving only the missing queries, and the recovered
/// results are bit-identical to an *uninterrupted DPLL* run of the same
/// batch. This pins that neither the resident-BDD state nor the resume
/// path leaks into verdicts: a restored-and-resumed BDD batch is
/// indistinguishable from the reference engine run fresh.
#[test]
fn bdd_checkpoint_resume_matches_uninterrupted_dpll() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        let queries: Vec<_> = program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .map(|(qid, _)| client.local_query(&program, qid))
            .collect();
        if queries.len() < 2 {
            continue;
        }

        // The uninterrupted reference run, on the oracle engine.
        let dpll_cfg = BatchConfig {
            tracer: engine_config(ViableEngine::Dpll),
            ..BatchConfig::default()
        };
        let (reference, _) =
            solve_queries_batch(&program, &callees, &client, &queries, &dpll_cfg);

        let bdd_cfg = BatchConfig {
            jobs: 2,
            tracer: engine_config(ViableEngine::Bdd),
            ..BatchConfig::default()
        };
        let path = std::env::temp_dir().join(format!(
            "pda-viable-ckpt-{}-{}.jsonl",
            std::process::id(),
            queries.len()
        ));
        std::fs::remove_file(&path).ok();

        // Run the BDD batch to completion once so the checkpoint holds a
        // full record stream, then simulate the kill: keep the header and
        // the first record, and leave a torn half-written line behind.
        let (full, stats) = solve_queries_batch_checkpointed(
            &program, &callees, &client, &queries, &bdd_cfg, &path,
        )
        .unwrap();
        assert_eq!(stats.resumed, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(&path, format!("{}\n{{\"i\":1,\"outc", keep.join("\n"))).unwrap();

        let (resumed, stats) = solve_queries_batch_checkpointed(
            &program, &callees, &client, &queries, &bdd_cfg, &path,
        )
        .unwrap();
        assert_eq!(stats.resumed, 1, "exactly the surviving record is restored");
        for (i, ((r, f), d)) in resumed.iter().zip(&full).zip(&reference).enumerate() {
            assert_eq!(
                fingerprint(r),
                fingerprint(f),
                "query {i}: resumed BDD != uninterrupted BDD in:\n{src}"
            );
            assert_eq!(
                fingerprint(r),
                fingerprint(d),
                "query {i}: resumed BDD != uninterrupted DPLL in:\n{src}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Layer 3: the batch scheduler at `jobs ∈ {1, 8}` crossed with both
/// engines — all four runs agree on every verdict, iteration count, and
/// model.
#[test]
fn batch_verdicts_are_engine_and_jobs_invariant() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        let queries: Vec<_> = program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .map(|(qid, _)| client.local_query(&program, qid))
            .collect();
        let mut runs = Vec::new();
        for engine in [ViableEngine::Dpll, ViableEngine::Bdd] {
            for jobs in [1usize, 8] {
                let cfg = BatchConfig {
                    jobs,
                    tracer: engine_config(engine),
                    ..BatchConfig::default()
                };
                let (results, _) =
                    solve_queries_batch(&program, &callees, &client, &queries, &cfg);
                runs.push((engine, jobs, results.iter().map(fingerprint).collect::<Vec<_>>()));
            }
        }
        let (e0, j0, reference) = &runs[0];
        for (engine, jobs, fps) in &runs[1..] {
            assert_eq!(
                fps, reference,
                "batch run engine={engine} jobs={jobs} diverged from engine={e0} jobs={j0} \
                 in:\n{src}"
            );
        }
    }
}
