// Shared Jaylite test corpus, `include!`d by the integration tests that
// iterate the same programs (`engines_agree.rs`, `batch_scheduler.rs`).
// Not a test target itself — root `tests/` files are only built via the
// explicit `[[test]]` entries in `crates/bench/Cargo.toml`.

const PROGRAMS: &[&str] = &[
    r#"
    global g;
    class C { field f; }
    fn id(a) { return a; }
    fn main() {
        var x, y, z;
        x = new C;
        y = id(x);
        z = new C;
        y.f = z;
        if (*) { g = x; }
        query q1: local x;
        query q2: local z;
    }
    "#,
    r#"
    class W { fn work(); fn stop(); }
    class C { field f; }
    fn pick(a, b) { var r; if (*) { r = a; } else { r = b; } return r; }
    fn main() {
        var u, v, w;
        u = new W;
        v = new C;
        while (*) { w = pick(u, u); }
        u.work();
        query q1: local v;
        query q2: state u in { };
    }
    "#,
    r#"
    global shared;
    class C { field f; fn m(x) { this.f = x; return x; } }
    fn main() {
        var a, b, r;
        a = new C;
        b = new C;
        r = a.m(b);
        if (*) { shared = r; } else { r = null; }
        query q1: local a;
        query q2: local b;
    }
    "#,
];
