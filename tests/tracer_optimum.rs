//! Ground-truth validation of the optimum abstraction problem
//! (Definition 2): on programs small enough to enumerate the entire
//! abstraction family, TRACER must return an abstraction of exactly the
//! minimum cost, or impossibility exactly when no abstraction proves the
//! query.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_tracer::{brute_force_optimum, solve_query, Outcome, TracerClient, TracerConfig};
use pda_typestate::{TsMode, TypestateClient};

const ESCAPE_PROGRAMS: &[&str] = &[
    r#"
    global g;
    class C { field f; }
    fn main() {
        var a, b;
        a = new C;
        b = new C;
        a.f = b;
        if (*) { g = a; }
        query q: local b;
    }
    "#,
    r#"
    class C { field f; }
    fn link(x, y) { x.f = y; }
    fn main() {
        var a, b, c;
        a = new C;
        b = new C;
        c = new C;
        link(a, b);
        link(b, c);
        query q: local c;
    }
    "#,
    r#"
    global g;
    class C { field f; }
    fn main() {
        var a, b;
        b = new C;
        while (*) {
            a = new C;
            a.f = b;
            g = a;
        }
        query q: local b;
    }
    "#,
    r#"
    class C { field f; }
    fn main() {
        var a, b, t;
        a = new C;
        b = new C;
        spawn b;
        t = b.f;
        a.f = t;
        query q: local a;
    }
    "#,
];

const TYPESTATE_PROGRAMS: &[&str] = &[
    r#"
    class W { fn work(); }
    fn main() {
        var a, b, c;
        a = new W;
        if (*) { b = a; } else { b = null; }
        c = a;
        c.work();
        query q: state a in { };
    }
    "#,
    r#"
    class W { fn work(); }
    fn use2(p, q) { p.work(); q.work(); }
    fn main() {
        var a;
        a = new W;
        use2(a, a);
        query q: state a in { };
    }
    "#,
    r#"
    class W { fn work(); }
    fn main() {
        var a, b;
        a = new W;
        while (*) { b = a; a = b; }
        a.work();
        query q: state a in { };
    }
    "#,
];

#[test]
fn escape_tracer_matches_brute_force() {
    for src in ESCAPE_PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = EscapeClient::new(&program);
        assert!(client.n_atoms() <= 12, "program too large for brute force");
        let qid = program.query_by_label("q").unwrap();
        let query = client.local_query(&program, qid);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let truth = brute_force_optimum(
            &program,
            &callees,
            &client,
            &query,
            12,
            pda_dataflow::RhsLimits::default(),
        );
        let got = solve_query(&program, &callees, &client, &query, &TracerConfig::default());
        match (&truth, &got.outcome) {
            (Some((_, want)), Outcome::Proven { cost, param }) => {
                assert_eq!(cost, want, "suboptimal on:\n{src}");
                // The returned abstraction really proves the query.
                let run = pda_dataflow::rhs::run(
                    &program,
                    &pda_tracer::AsAnalysis(&client),
                    param,
                    client.initial_state(),
                    &callees,
                    pda_dataflow::RhsLimits::default(),
                )
                .unwrap();
                assert!(run
                    .states_at(query.point)
                    .into_iter()
                    .all(|d| !query.not_q.holds(param, d)));
            }
            (None, Outcome::Impossible) => {}
            (t, g) => panic!("disagreement on:\n{src}\nbrute={t:?} tracer={g:?}"),
        }
    }
}

#[test]
fn typestate_tracer_matches_brute_force() {
    for src in TYPESTATE_PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = TypestateClient::new(&program, &pa, pda_lang::SiteId(0), TsMode::stress());
        assert!(client.n_atoms() <= 14, "program too large for brute force");
        let qid = program.query_by_label("q").unwrap();
        let point = program.queries[qid].point;
        let query = client.stress_query(point);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let truth = brute_force_optimum(
            &program,
            &callees,
            &client,
            &query,
            14,
            pda_dataflow::RhsLimits::default(),
        );
        let got = solve_query(&program, &callees, &client, &query, &TracerConfig::default());
        match (&truth, &got.outcome) {
            (Some((_, want)), Outcome::Proven { cost, .. }) => {
                assert_eq!(cost, want, "suboptimal on:\n{src}")
            }
            (None, Outcome::Impossible) => {}
            (t, g) => panic!("disagreement on:\n{src}\nbrute={t:?} tracer={g:?}"),
        }
    }
}

/// The beam width must never change *what* is computed, only how fast:
/// all k values yield the same outcome and cost.
#[test]
fn beam_width_does_not_change_outcomes() {
    for src in ESCAPE_PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = EscapeClient::new(&program);
        let qid = program.query_by_label("q").unwrap();
        let query = client.local_query(&program, qid);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let outcomes: Vec<Option<u64>> = [1usize, 2, 5, 1024]
            .iter()
            .map(|&k| {
                let config = TracerConfig {
                    beam: pda_meta::BeamConfig::with_k(k),
                    ..TracerConfig::default()
                };
                match solve_query(&program, &callees, &client, &query, &config).outcome {
                    Outcome::Proven { cost, .. } => Some(cost),
                    Outcome::Impossible => None,
                    o => panic!("unresolved under k={k}: {o:?}"),
                }
            })
            .collect();
        assert!(
            outcomes.windows(2).all(|w| w[0] == w[1]),
            "beam width changed the result on:\n{src}\n{outcomes:?}"
        );
    }
}

/// Randomized end-to-end optimality certificates: on generated tiny
/// benchmarks, every TRACER proof is checked against *all cheaper*
/// abstractions (none may prove the query — that is exactly Definition
/// 2's minimality), and every impossibility verdict is attacked with a
/// sample of random abstractions (none may prove it).
#[test]
fn generated_programs_satisfy_optimality_certificates() {
    let mut proofs = 0;
    let mut impossibles = 0;
    for seed in [101u64, 202, 303] {
        let cfg = pda_suite::GenConfig::named("tiny", seed, 1, 1, 2, 1, 3);
        let bench = pda_suite::Benchmark::load(cfg);
        let client = EscapeClient::new(&bench.program);
        let n = client.n_atoms();
        let callees = bench.callees();
        let accesses = EscapeClient::accesses(&bench.program, bench.app_methods());

        let proves = |assignment: &[bool], query: &pda_tracer::Query<pda_escape::EscPrim>| {
            let p = client.param_of_model(assignment);
            let run = pda_dataflow::rhs::run(
                &bench.program,
                &pda_tracer::AsAnalysis(&client),
                &p,
                client.initial_state(),
                &callees,
                pda_dataflow::RhsLimits::default(),
            )
            .unwrap();
            run.states_at(query.point)
                .into_iter()
                .all(|d| !query.not_q.holds(&p, d))
        };

        for &(point, var) in accesses.iter().take(4) {
            let query = client.access_query(point, var);
            let got = solve_query(
                &bench.program,
                &callees,
                &client,
                &query,
                &TracerConfig::default(),
            );
            match &got.outcome {
                Outcome::Proven { param, cost } => {
                    proofs += 1;
                    // The returned abstraction proves the query.
                    let asg: Vec<bool> = (0..n).map(|i| param.contains(i)).collect();
                    assert!(proves(&asg, &query), "seed {seed}: claimed proof fails");
                    // Nothing strictly cheaper proves it (certificate for
                    // costs 0 and 1; cost-2 optima additionally check all
                    // singletons, which the loop below covers).
                    assert!(*cost <= n as u64);
                    if *cost > 0 {
                        assert!(!proves(&vec![false; n], &query), "empty abstraction suffices");
                    }
                    if *cost > 1 {
                        for i in 0..n {
                            let mut one = vec![false; n];
                            one[i] = true;
                            assert!(
                                !proves(&one, &query),
                                "seed {seed}: singleton {i} beats claimed optimum {cost}"
                            );
                        }
                    }
                }
                Outcome::Impossible => {
                    impossibles += 1;
                    // Falsification attempt: a spread of abstractions,
                    // including the most precise one, must all fail.
                    let mut attempts = vec![vec![true; n], vec![false; n]];
                    attempts.push((0..n).map(|i| i % 2 == 0).collect());
                    attempts.push((0..n).map(|i| i % 3 != 0).collect());
                    for asg in attempts {
                        assert!(
                            !proves(&asg, &query),
                            "seed {seed}: impossibility refuted by {asg:?}"
                        );
                    }
                }
                Outcome::Unresolved(_) => {}
            }
        }
    }
    assert!(proofs >= 3, "too few proofs exercised ({proofs})");
    assert!(impossibles + proofs >= 6, "too few verdicts exercised");
}
