//! Crash-point torture: enumerate every fault-point seam a seeded
//! checkpointed batch run actually crosses (faultplane `record` mode),
//! then re-run the same workload once per sampled `(seam, hit)` pair
//! with a fault armed at exactly that visit.
//!
//! * **Compute seams** (solver, warm store, forward cache, governor,
//!   interner) get a `panic` arm under the deterministic retry ladder:
//!   the fault must fire, be absorbed by per-query panic isolation plus
//!   one retry, and every outcome must stay byte-identical to the
//!   fault-free baseline.
//! * **Journal seams** get `ioerr` (and, at the raw write seam,
//!   `shortwrite`) arms on a fresh run: the run must surface a
//!   `CheckpointError` — never a panic — and a clean re-run over
//!   whatever survived on disk must resume to identical outcomes.
//! * **Compaction seams** are tortured on a *resume* run over a
//!   complete journal: a failed compaction must leave every previously
//!   durable record loadable — the crash-safe temp-file + atomic-rename
//!   rewrite can destroy nothing.
//!
//! `batch.worker.*` seams fire on the scheduler thread, outside
//! per-query panic isolation; they are crash-class and are exercised by
//! the CI chaos smoke in a subprocess (`abort` action) instead of here.
//!
//! Everything runs in ONE test function: the fault plane is process
//! state, so legs must not interleave with each other.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_tracer::{
    load_checkpoint, nullcli::NullClient, solve_queries_batch_checkpointed, BatchConfig,
    BatchStats, CheckpointError, QueryResult, RetryPolicy, TracerConfig, ViableEngine,
};
use pda_util::{faultplane, BitSet};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

include!("corpus.rs");

const NULL_SRC: &str = r#"
    class C {}
    fn main() {
        var a, b, c, d, e;
        a = null;
        b = a;
        c = null;
        d = new C;
        e = b;
        query qa: local b;
        query qb: local e;
        query qc: local c;
        query qd: local d;
    }
"#;

/// The governor workload from `tests/governor.rs`: long impossible
/// queries under a starvation budget, walking the whole degradation
/// ladder — the only way to reach the `governor.rung` and
/// `intern.reset` seams.
const GOVERNOR_SRC: &str = r#"
    global g1, g2;
    class C { field f; }
    fn leak(a, b) { var r; if (*) { g1 = a; r = b; } else { r = a; } return r; }
    fn main() {
        var a, b, c, d, e, h, p;
        a = new C; b = new C; c = new C; d = new C; e = new C;
        p = new C;
        h = leak(a, b);
        h = leak(h, c);
        h = leak(h, d);
        if (*) { g2 = e; }
        a.f = b; b.f = c; c.f = d; d.f = e;
        query q0: local p;
        query q1: local a;
        query q2: local e;
        query q3: local h;
    }
"#;
const EXHAUST_BUDGET: u64 = 64 << 10;

/// The deterministic identity of a result vector — everything but wall
/// time and the retry counter (an absorbed injected fault legitimately
/// consumes retries the baseline never needed).
fn keys(results: &[QueryResult<BitSet>]) -> Vec<String> {
    results
        .iter()
        .map(|r| format!("{:?} iters={} esc={} deg={}", r.outcome, r.iterations, r.escalations, r.degradations))
        .collect()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pda-torture-{}-{name}.jsonl", std::process::id()))
}

/// Sampled 1-based hit ordinals: first, middle, last.
fn sample(count: u64) -> Vec<u64> {
    let mut v = vec![1, count / 2 + 1, count];
    v.sort_unstable();
    v.dedup();
    v
}

type RunResult = Result<(Vec<QueryResult<BitSet>>, BatchStats), CheckpointError>;
type Runner<'a> = dyn Fn(Option<RetryPolicy>, &Path) -> RunResult + 'a;

/// Seams whose visit is scheduling-dependent under parallel runs: their
/// arm may legitimately never fire on a torture re-run, so only outcome
/// equality is asserted, not the firing itself.
const RACY: &[&str] = &["cache.slot_wait"];

/// Records the seams a fresh run and a resume run of `run` cross, then
/// tortures every sampled hit of every seam not yet in `covered` (or in
/// `skip`). Extends `covered` with everything newly seen.
fn torture(name: &str, run: &Runner<'_>, skip: &[&str], covered: &mut BTreeSet<String>) {
    let path = temp_path(name);
    let _ = std::fs::remove_file(&path);

    // Record mode: enumerate the seams, and pin the fault-free baseline.
    faultplane::install("record").unwrap();
    let (baseline, _) = run(None, &path).expect("fault-free baseline");
    let fresh_hits = faultplane::hits();
    faultplane::install("record").unwrap();
    let (resumed, stats) = run(None, &path).expect("fault-free resume baseline");
    let resume_hits = faultplane::hits();
    faultplane::clear();
    assert_eq!(keys(&resumed), keys(&baseline), "[{name}] resume changed outcomes");
    assert_eq!(stats.resumed, baseline.len(), "[{name}] resume re-solved journaled queries");
    assert!(!fresh_hits.is_empty(), "[{name}] record mode saw no seams at all");
    // The complete, compacted journal — the resume legs restart from it.
    let golden = std::fs::read(&path).expect("golden journal");
    let expected = keys(&baseline);

    // Fresh-run legs.
    for (point, count) in &fresh_hits {
        let first_time = covered.insert(point.clone());
        if !first_time || skip.contains(&point.as_str()) {
            continue;
        }
        for h in sample(*count) {
            if point.starts_with("journal.") {
                let actions: &[&str] =
                    if point == "journal.write" { &["ioerr", "shortwrite"] } else { &["ioerr"] };
                for action in actions {
                    let _ = std::fs::remove_file(&path);
                    let before = faultplane::io_faults();
                    faultplane::install(&format!("{point}@{h}={action}")).unwrap();
                    let r = run(None, &path);
                    faultplane::clear();
                    assert!(
                        r.is_err(),
                        "[{name}] {action} at {point}@{h} must surface a CheckpointError"
                    );
                    assert!(
                        faultplane::io_faults() > before,
                        "[{name}] arm {point}@{h}={action} never fired"
                    );
                    // Whatever survived on disk, resuming over it must
                    // never panic and must reproduce the baseline. A
                    // torn *header* (shortwrite on the very first write)
                    // is the one case with nothing durable to save: the
                    // loader rejects the file and a fresh run takes over.
                    let (after, _) = match run(None, &path) {
                        Ok(out) => out,
                        Err(CheckpointError::Mismatch(_)) => {
                            let _ = std::fs::remove_file(&path);
                            run(None, &path).expect("fresh run after discarding torn header")
                        }
                        Err(e) => {
                            panic!("[{name}] journal after {point}@{h}={action} unusable: {e}")
                        }
                    };
                    assert_eq!(
                        keys(&after),
                        expected,
                        "[{name}] outcomes diverged resuming after {action} at {point}@{h}"
                    );
                }
            } else {
                let _ = std::fs::remove_file(&path);
                let before = faultplane::faults_injected();
                faultplane::install(&format!("{point}@{h}=panic")).unwrap();
                let r = run(Some(RetryPolicy::deterministic(2)), &path);
                faultplane::clear();
                let (results, _) = r.unwrap_or_else(|e| {
                    panic!("[{name}] panic at {point}@{h} escaped isolation: {e}")
                });
                if !RACY.contains(&point.as_str()) {
                    assert!(
                        faultplane::faults_injected() > before,
                        "[{name}] arm {point}@{h}=panic never fired"
                    );
                }
                assert_eq!(
                    keys(&results),
                    expected,
                    "[{name}] outcomes diverged with a panic at {point}@{h}"
                );
            }
        }
    }

    // Resume legs: compaction seams, over the complete golden journal.
    for (point, count) in &resume_hits {
        let first_time = covered.insert(point.clone());
        if !first_time || !point.starts_with("journal.") {
            continue;
        }
        for h in sample(*count) {
            std::fs::write(&path, &golden).expect("restore golden journal");
            let before = faultplane::io_faults();
            faultplane::install(&format!("{point}@{h}=ioerr")).unwrap();
            let r = run(None, &path);
            faultplane::clear();
            assert!(r.is_err(), "[{name}] ioerr at {point}@{h} on resume must fail the run");
            assert!(
                faultplane::io_faults() > before,
                "[{name}] resume arm {point}@{h}=ioerr never fired"
            );
            // The crash-safety contract: a failed compaction leaves
            // either the old journal or the finished new one — every
            // durable record is still there.
            let restored = load_checkpoint::<BitSet>(&path, baseline.len())
                .unwrap_or_else(|e| {
                    panic!("[{name}] failed compaction at {point}@{h} corrupted the journal: {e}")
                });
            assert_eq!(
                restored.len(),
                baseline.len(),
                "[{name}] failed compaction at {point}@{h} destroyed durable records"
            );
            let (after, stats) = run(None, &path).expect("clean resume after failed compaction");
            assert_eq!(keys(&after), expected, "[{name}] post-compaction-crash resume diverged");
            assert_eq!(stats.resumed, baseline.len());
        }
    }
    let _ = std::fs::remove_file(&path);
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let _ = std::fs::remove_file(&tmp);
}

#[test]
fn every_registered_seam_survives_crash_point_torture() {
    let mut covered: BTreeSet<String> = BTreeSet::new();

    // Workload 1+2: tiny NullClient batch, jobs=1, both viable engines —
    // deterministic ordinals for the solver and journal seams.
    let program = pda_lang::parse_program(NULL_SRC).unwrap();
    let pa = PointsTo::analyze(&program);
    let null_client = NullClient::new(&program);
    let null_queries: Vec<_> = program
        .queries
        .iter_enumerated()
        .map(|(q, _)| null_client.query(&program, q))
        .collect();
    for engine in [ViableEngine::Dpll, ViableEngine::Bdd] {
        let run = |retry: Option<RetryPolicy>, path: &Path| {
            let cfg = BatchConfig {
                jobs: 1,
                tracer: TracerConfig { viable_engine: engine, ..TracerConfig::default() },
                retry,
                ..BatchConfig::default()
            };
            solve_queries_batch_checkpointed(
                &program,
                &|c| pa.callees(c).to_vec(),
                &null_client,
                &null_queries,
                &cfg,
                path,
            )
        };
        torture(&format!("null-{engine:?}"), &run, &[], &mut covered);
    }

    // Workload 3: EscapeClient corpus program, jobs=2 — the parallel
    // scheduler's shared-cache and warm-store seams. The worker
    // spawn/join seams are crash-class: recorded for coverage, tortured
    // in the CI subprocess smoke.
    let corpus = pda_lang::parse_program(PROGRAMS[0]).unwrap();
    let corpus_pa = PointsTo::analyze(&corpus);
    let escape = EscapeClient::new(&corpus);
    let escape_queries: Vec<_> = corpus
        .queries
        .iter_enumerated()
        .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
        .map(|(q, _)| escape.local_query(&corpus, q))
        .collect();
    let run = |retry: Option<RetryPolicy>, path: &Path| {
        let cfg = BatchConfig { jobs: 2, retry, ..BatchConfig::default() };
        solve_queries_batch_checkpointed(
            &corpus,
            &|c| corpus_pa.callees(c).to_vec(),
            &escape,
            &escape_queries,
            &cfg,
            path,
        )
    };
    torture("escape-par", &run, &["batch.worker.spawn", "batch.worker.join"], &mut covered);

    // Workload 4: the governor workload under a starvation budget —
    // degradation-ladder seams (`governor.rung`, and `intern.reset` at
    // rung 2).
    let gov = pda_lang::parse_program(GOVERNOR_SRC).unwrap();
    let gov_pa = PointsTo::analyze(&gov);
    let gov_client = EscapeClient::new(&gov);
    let gov_queries: Vec<_> = gov
        .queries
        .iter_enumerated()
        .map(|(q, _)| gov_client.local_query(&gov, q))
        .collect();
    let run = |retry: Option<RetryPolicy>, path: &Path| {
        let cfg = BatchConfig {
            jobs: 1,
            tracer: TracerConfig {
                mem_budget: Some(EXHAUST_BUDGET),
                ..TracerConfig::default()
            },
            retry,
            ..BatchConfig::default()
        };
        solve_queries_batch_checkpointed(
            &gov,
            &|c| gov_pa.callees(c).to_vec(),
            &gov_client,
            &gov_queries,
            &cfg,
            path,
        )
    };
    torture("governor", &run, &[], &mut covered);

    // Every seam the engine registers must have been crossed by at
    // least one workload — a silently dead fault point is a hole in the
    // torture surface.
    for required in [
        "dpll.solve",
        "bdd.conjoin",
        "bdd.mincost",
        "warm.rebuild",
        "cache.slot_fill",
        "batch.worker.spawn",
        "batch.worker.join",
        "governor.rung",
        "intern.reset",
        "journal.create",
        "journal.open",
        "journal.append",
        "journal.write",
        "journal.compact.begin",
        "journal.compact.write",
        "journal.compact.rename",
    ] {
        assert!(covered.contains(required), "seam `{required}` was never crossed: {covered:?}");
    }
}
