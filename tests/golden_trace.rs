//! Golden-trace test: the structured JSONL event stream of a fixed
//! thread-escape batch over the seeded suite benchmark is (a) identical
//! across job counts (jobs ∈ {1, 8}) — the trace carries no wall-clock or
//! cache data and the driver drains per-query buffers in index order —
//! and (b) byte-identical to the checked-in golden file, replay after
//! replay.
//!
//! Regenerate the golden file after an intentional schema or driver
//! change with:
//!
//! ```text
//! PDA_BLESS=1 cargo test -p pda-bench --test golden_trace
//! ```

use pda_escape::EscapeClient;
use pda_suite::Benchmark;
use pda_tracer::{solve_queries_batch_traced, BatchConfig, MetaKernel, TracerConfig};
use pda_util::{Event, Recorder, TraceSink};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/hedc_trace.jsonl");

/// The fixed workload: the first suite benchmark with >= 16 thread-escape
/// queries (hedc with the default suite), capped to a debug-friendly
/// subset. Everything is seeded, so the workload is identical across
/// machines and runs.
fn workload() -> (Benchmark, usize) {
    let bench = pda_suite::suite()
        .into_iter()
        .map(Benchmark::load)
        .find(|b| EscapeClient::accesses(&b.program, b.app_methods()).len() >= 16)
        .expect("some suite benchmark has >=16 escape queries");
    (bench, 6)
}

fn traced_run(bench: &Benchmark, n_queries: usize, jobs: usize) -> Vec<Event> {
    let client = EscapeClient::new(&bench.program);
    let accesses = EscapeClient::accesses(&bench.program, bench.app_methods());
    let queries: Vec<_> = accesses
        .iter()
        .take(n_queries)
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    let callees = bench.callees();
    let config = BatchConfig {
        tracer: TracerConfig { kernel: MetaKernel::Interned, ..TracerConfig::default() },
        jobs,
        ..BatchConfig::default()
    };
    let recorder = Recorder::new();
    let (_, _) = solve_queries_batch_traced(
        &bench.program,
        &callees,
        &client,
        &queries,
        &config,
        Some(&recorder as &dyn TraceSink),
    );
    recorder.take()
}

#[test]
fn golden_trace_is_deterministic_and_matches_checked_in_file() {
    let (bench, n) = workload();
    let j1 = traced_run(&bench, n, 1);
    let j8 = traced_run(&bench, n, 8);
    assert_eq!(j1, j8, "trace must not depend on the job count");

    // Byte-identical replay: encoding the same events twice gives the
    // same JSONL.
    let encode = |events: &[Event]| {
        events.iter().map(|e| e.encode() + "\n").collect::<String>()
    };
    let jsonl = encode(&j1);
    assert_eq!(jsonl, encode(&j8));

    // Every line round-trips through the decoder.
    let reparsed = pda_util::obs::parse_trace(&jsonl).expect("golden trace parses");
    assert_eq!(reparsed, j1);

    if std::env::var("PDA_BLESS").is_ok() {
        std::fs::write(GOLDEN, &jsonl).expect("bless golden trace");
        eprintln!("blessed {GOLDEN} ({} events)", j1.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden trace missing — run with PDA_BLESS=1 to create it");
    assert_eq!(
        jsonl, golden,
        "trace diverged from the golden file; if the change is intentional, \
         regenerate with PDA_BLESS=1 cargo test -p pda-bench --test golden_trace"
    );
}
