//! Deterministic fuzz of the persistence codecs: the [`ParamCodec`]
//! abstraction-parameter encoding and the batch checkpoint format
//! (`CheckpointWriter` / `load_checkpoint`).
//!
//! Two contracts are exercised with a fixed-seed [`SplitMix64`]:
//!
//! * **Round-trip fidelity** — every randomly generated [`BitSet`]
//!   parameter and every randomly generated [`QueryResult`] (all outcome
//!   variants, hostile detail strings full of quotes, backslashes, and
//!   control characters, extreme counter values) must survive
//!   encode → decode bit-identically.
//! * **Adversarial rejection** — garbage bytes, wrong-kind and
//!   wrong-version headers, mismatched query counts, out-of-range
//!   indices, and corrupted interior records are rejected with a typed
//!   [`CheckpointError`]; a torn *final* record is tolerated (its query
//!   re-runs). None of it may panic.

use pda_tracer::{
    load_checkpoint, CheckpointError, CheckpointWriter, MetaStats, Outcome, ParamCodec,
    QueryResult, Unresolved,
};
use pda_util::{BitSet, SplitMix64};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pda-codec-fuzz-{}-{name}.jsonl", std::process::id()))
}

fn random_bitset(rng: &mut SplitMix64) -> BitSet {
    let n = rng.gen_range(0, 80);
    let mut s = BitSet::new(n);
    if n > 0 {
        for _ in 0..rng.gen_range(0, n) {
            s.insert(rng.gen_range(0, n));
        }
    }
    s
}

/// Strings that stress the JSON escaping: quotes, backslashes, control
/// characters, multi-byte UTF-8, and the record delimiters themselves.
fn hostile_string(rng: &mut SplitMix64) -> String {
    const PIECES: &[&str] =
        &["\"", "\\", "\n", "\r", "\t", "\u{1}", "{", "}", ",", ":", "π∈Γ", "detail", "\\u0000"];
    (0..rng.gen_range(0, 6)).map(|_| *rng.pick(PIECES)).collect()
}

fn random_result(rng: &mut SplitMix64) -> QueryResult<BitSet> {
    let outcome = match rng.gen_range(0, 9) {
        0 => Outcome::Proven { param: random_bitset(rng), cost: rng.next_u64() },
        1 => Outcome::Impossible,
        2 => Outcome::Unresolved(Unresolved::IterationBudget),
        3 => Outcome::Unresolved(Unresolved::AnalysisTooBig),
        4 => Outcome::Unresolved(Unresolved::MetaFailure(hostile_string(rng))),
        5 => Outcome::Unresolved(Unresolved::DeadlineExceeded),
        6 => Outcome::Unresolved(Unresolved::EngineFault(hostile_string(rng))),
        7 => Outcome::Unresolved(Unresolved::Drained),
        _ => Outcome::Unresolved(Unresolved::MemBudgetExceeded),
    };
    QueryResult {
        outcome,
        iterations: rng.gen_range(0, 1 << 20),
        micros: u128::from(rng.next_u64()),
        escalations: (rng.next_u64() & 0xffff) as u32,
        degradations: (rng.next_u64() & 0xff) as u32,
        retries: (rng.next_u64() & 0xff) as u32,
        meta: MetaStats {
            cubes_built: rng.next_u64(),
            subsumption_checks: rng.next_u64(),
            subsumption_fast_rejects: rng.next_u64(),
            wp_hits: rng.next_u64(),
            wp_misses: rng.next_u64(),
            approx_drops: rng.next_u64(),
            mem_evictions: rng.next_u64(),
            micros: rng.next_u64(),
        },
    }
}

#[test]
fn bitset_params_round_trip_bit_identically() {
    let mut rng = SplitMix64::new(0x0b17_5e7c_0dec);
    for _ in 0..2000 {
        let s = random_bitset(&mut rng);
        let encoded = s.encode_param();
        let decoded = BitSet::decode_param(&encoded).expect("own encoding must decode");
        assert_eq!(s, decoded, "round-trip changed {encoded:?}");
    }
}

#[test]
fn bitset_decode_is_total_on_garbage() {
    let mut rng = SplitMix64::new(0x00de_c0de_7e57);
    // Handcrafted near-misses…
    for s in ["", ":", "x:1", "5:9", "5:a", "5:-1", "18446744073709551616:0", "3:1,1,1,", "3:,,"] {
        let _ = BitSet::decode_param(s); // must not panic; None is fine
    }
    // …and random byte soup, valid-prefix mutations included.
    for _ in 0..2000 {
        let len = rng.gen_range(0, 24);
        let garbage: String = (0..len)
            .map(|_| char::from_u32((rng.next_u64() % 0x80) as u32).unwrap_or('?'))
            .collect();
        let _ = BitSet::decode_param(&garbage);
        let _ = BitSet::decode_param(&format!("9:{garbage}"));
    }
}

#[test]
fn checkpoint_records_round_trip_through_a_file() {
    let mut rng = SplitMix64::new(0x000c_8ecb_0a70_f11e);
    let path = temp_path("roundtrip");
    for round in 0..20 {
        let n = rng.gen_range_inclusive(1, 12);
        let results: Vec<QueryResult<BitSet>> =
            (0..n).map(|_| random_result(&mut rng)).collect();
        let mut w = CheckpointWriter::create(&path, n).unwrap();
        for (i, r) in results.iter().enumerate() {
            w.append(i, r).unwrap();
        }
        drop(w);
        let restored = load_checkpoint::<BitSet>(&path, n).unwrap();
        assert_eq!(restored.len(), n, "round {round}");
        for (i, r) in results.iter().enumerate() {
            assert_eq!(&restored[&i], r, "round {round}, record {i} changed in transit");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_loader_rejects_garbage_without_panicking() {
    let mut rng = SplitMix64::new(0x06a5_ba6e_10ad);
    let path = temp_path("garbage");
    let header = "{\"v\":1,\"kind\":\"pda-batch-checkpoint\",\"queries\":4}";

    // Wholly random byte soup — any typed error is acceptable, a panic
    // is not. (A random first line is overwhelmingly a header mismatch.)
    for _ in 0..300 {
        let len = rng.gen_range(0, 200);
        let soup: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        std::fs::write(&path, &soup).unwrap();
        match load_checkpoint::<BitSet>(&path, 4) {
            Err(_) => {}
            Ok(restored) => assert!(
                restored.is_empty(),
                "garbage produced {} phantom results",
                restored.len()
            ),
        }
    }

    // Wrong kind, wrong version, wrong query count: Mismatch.
    for bad in [
        "{\"v\":1,\"kind\":\"something-else\",\"queries\":4}",
        "{\"v\":99,\"kind\":\"pda-batch-checkpoint\",\"queries\":4}",
        "{\"v\":1,\"kind\":\"pda-batch-checkpoint\",\"queries\":5}",
        "not json at all",
        "",
    ] {
        std::fs::write(&path, format!("{bad}\n")).unwrap();
        assert!(
            matches!(load_checkpoint::<BitSet>(&path, 4), Err(CheckpointError::Mismatch(_))),
            "header {bad:?} must be a mismatch"
        );
    }

    // A corrupt *interior* record is an error; the same corruption as
    // the *final* line is a tolerated torn tail.
    let good = "{\"i\":0,\"outcome\":\"impossible\",\"iterations\":1,\"micros\":2,\
                \"escalations\":0,\"degradations\":0,\"m_cubes\":0,\"m_sub\":0,\"m_subf\":0,\
                \"m_wph\":0,\"m_wpm\":0,\"m_drop\":0,\"m_mev\":0,\"m_us\":0}";
    std::fs::write(&path, format!("{header}\n{{\"i\":1,\"outc\n{good}\n")).unwrap();
    assert!(
        matches!(load_checkpoint::<BitSet>(&path, 4), Err(CheckpointError::Corrupt { line: 2, .. })),
        "interior corruption must be fatal"
    );
    std::fs::write(&path, format!("{header}\n{good}\n{{\"i\":1,\"outc")).unwrap();
    let restored = load_checkpoint::<BitSet>(&path, 4).unwrap();
    assert_eq!(restored.len(), 1, "torn tail drops exactly the unfinished record");

    // An out-of-range index is corruption, not a silent skip.
    let oob = good.replace("\"i\":0", "\"i\":9");
    std::fs::write(&path, format!("{header}\n{oob}\n{good}\n")).unwrap();
    assert!(matches!(
        load_checkpoint::<BitSet>(&path, 4),
        Err(CheckpointError::Corrupt { line: 2, .. })
    ));

    // Mutated copies of a valid record: every mutant either decodes or
    // is rejected — interior position makes rejection fatal, which is
    // exactly the contract; final position must never panic either.
    for _ in 0..300 {
        let mut bytes = good.as_bytes().to_vec();
        let at = rng.gen_range(0, bytes.len());
        bytes[at] = (rng.next_u64() & 0xff) as u8;
        let mutant = String::from_utf8_lossy(&bytes).into_owned();
        std::fs::write(&path, format!("{header}\n{mutant}")).unwrap();
        let _ = load_checkpoint::<BitSet>(&path, 4);
    }
    std::fs::remove_file(&path).ok();
}
