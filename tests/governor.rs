//! Integration tests for the memory-budget governor
//! (`pda_tracer::TracerConfig::mem_budget`, `QueryLimits::mem_budget`,
//! `BatchConfig::pool_budget`):
//!
//! * **Soundness of degradation** — a budget tight enough to force the
//!   governor onto its ladder (cache eviction first) leaves every
//!   verdict, optimum cost, and iteration count identical to the
//!   unbudgeted run. Rungs 1–2 only shed cache warmth, which Theorem 3
//!   says cannot change a verdict.
//! * **Determinism** — governed runs are bit-identical across repeats
//!   at `jobs = 1` and across `jobs ∈ {1, 2, 8}`: pressure decisions are
//!   pure functions of deterministic byte estimates, never of RSS or
//!   scheduling.
//! * **Graceful exhaustion** — a hopeless budget resolves long-running
//!   queries as `Unresolved::MemBudgetExceeded` after walking all eight
//!   ladder rungs, without panicking, and without poisoning the shared
//!   forward cache for unbudgeted copies of the same query in the same
//!   batch (degraded fact budgets key the cache differently).
//! * **Admission control** — a per-query reservation larger than the
//!   shared pool resolves as `MemBudgetExceeded` without running; a
//!   congested pool sheds (defers and requeues) admissions instead of
//!   failing them, and every shed query still completes with its
//!   pool-less verdict. `jobs = 1` under a pool never sheds: the pool
//!   drains between queries.
//!
//! Budget constants are tuned to this fixture's deterministic byte
//! estimates (the probe data lives in the assertions): ~650 KiB trips
//! the ladder once or twice and relieves; 64 KiB can never be relieved
//! and exhausts after `LADDER_RUNGS` sustained-pressure boundaries.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_tracer::{
    faulty_query, lift_query, solve_queries_batch, solve_query, BatchConfig, Fault,
    FaultInjectingClient, Outcome, Query, QueryLimits, QueryResult, TracerConfig, Unresolved,
};
use std::time::Duration;

/// Five of the six allocations escape through `leak`/globals/fields, so
/// `q1..q3` are impossible at every abstraction — each takes ~30 CEGAR
/// iterations, enough runway for the 8-rung ladder to exhaust. `p` never
/// escapes, so `q0` proves (cheaply, before sustained pressure matters).
const SRC: &str = r#"
    global g1, g2;
    class C { field f; }
    fn leak(a, b) { var r; if (*) { g1 = a; r = b; } else { r = a; } return r; }
    fn main() {
        var a, b, c, d, e, h, p;
        a = new C; b = new C; c = new C; d = new C; e = new C;
        p = new C;
        h = leak(a, b);
        h = leak(h, c);
        h = leak(h, d);
        if (*) { g2 = e; }
        a.f = b; b.f = c; c.f = d; d.f = e;
        query q0: local p;
        query q1: local a;
        query q2: local e;
        query q3: local h;
    }
"#;

/// Forces one or two eviction rungs on the long queries, then relieves:
/// verdicts and iteration counts must match the unbudgeted run exactly.
const RELIEF_BUDGET: u64 = 640 << 10;
/// Below every iteration's working set: sustained pressure walks the
/// whole ladder and exhausts it on the ~30-iteration queries.
const EXHAUST_BUDGET: u64 = 64 << 10;

struct Fixture {
    program: pda_lang::Program,
    pa: PointsTo,
    client: EscapeClient,
}

impl Fixture {
    fn new() -> Fixture {
        let program = pda_lang::parse_program(SRC).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = EscapeClient::new(&program);
        Fixture { program, pa, client }
    }

    fn queries(&self) -> Vec<Query<pda_escape::EscPrim>> {
        self.program
            .queries
            .iter_enumerated()
            .map(|(qid, _)| self.client.local_query(&self.program, qid))
            .collect()
    }
}

/// The deterministic fields of a result — everything but wall time.
fn key<P: Clone>(r: &QueryResult<P>) -> (Outcome<P>, usize, u32, u32) {
    (r.outcome.clone(), r.iterations, r.escalations, r.degradations)
}

fn with_mem_budget<P: pda_meta::Primitive>(q: Query<P>, bytes: u64) -> Query<P> {
    q.with_limits(QueryLimits { timeout: None, max_facts: None, mem_budget: Some(bytes) })
}

#[test]
fn degraded_run_keeps_every_verdict_and_iteration_count() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let plain = TracerConfig::default();
    let governed = TracerConfig { mem_budget: Some(RELIEF_BUDGET), ..TracerConfig::default() };

    let mut degradations = 0;
    for q in fx.queries() {
        let base = solve_query(&fx.program, &callees, &fx.client, &q, &plain);
        let gov = solve_query(&fx.program, &callees, &fx.client, &q, &governed);
        assert_eq!(base.degradations, 0);
        assert_eq!(gov.outcome, base.outcome, "a ladder rung changed a verdict");
        assert_eq!(gov.iterations, base.iterations, "eviction rungs must not change the search");
        assert_eq!(gov.escalations, base.escalations);
        degradations += gov.degradations;
    }
    assert!(degradations >= 1, "budget was tuned to force at least one ladder step");
}

#[test]
fn exhausted_ladder_resolves_mem_budget_exceeded_without_panicking() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let config = TracerConfig { mem_budget: Some(EXHAUST_BUDGET), ..TracerConfig::default() };
    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &TracerConfig::default()))
        .collect();

    for (i, q) in fx.queries().into_iter().enumerate() {
        let r = solve_query(&fx.program, &callees, &fx.client, &q, &config);
        match &baseline[i].outcome {
            // A query that proves before pressure sustains still proves —
            // identically — under a hopeless budget.
            Outcome::Proven { param, cost } => {
                assert_eq!(
                    r.outcome,
                    Outcome::Proven { param: param.clone(), cost: *cost },
                    "query {i}"
                );
            }
            // The long impossibility searches walk all eight rungs and
            // then give up deterministically.
            _ => {
                assert_eq!(
                    r.outcome,
                    Outcome::Unresolved(Unresolved::MemBudgetExceeded),
                    "query {i}"
                );
                assert_eq!(r.degradations, 8, "query {i} must walk the full ladder first");
                assert!(
                    r.iterations < baseline[i].iterations,
                    "query {i} gave up without saving any work"
                );
            }
        }
    }
}

#[test]
fn governed_batches_are_deterministic_across_repeats_and_job_counts() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let queries = fx.queries();
    let tracer = TracerConfig { mem_budget: Some(RELIEF_BUDGET), ..TracerConfig::default() };

    let run = |jobs: usize| {
        let cfg = BatchConfig { jobs, tracer: tracer.clone(), ..BatchConfig::default() };
        let (results, stats) =
            solve_queries_batch(&fx.program, &callees, &fx.client, &queries, &cfg);
        (results.iter().map(key).collect::<Vec<_>>(), stats.degradations)
    };

    let (first, degradations) = run(1);
    assert!(degradations >= 1, "the batch surfaces governor activity in its stats");
    assert_eq!(first, run(1).0, "jobs=1 must be bit-identical across repeats");
    for jobs in [2usize, 8] {
        assert_eq!(first, run(jobs).0, "governed results diverged at jobs={jobs}");
    }
}

#[test]
fn exhausted_query_does_not_poison_the_shared_forward_cache() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &TracerConfig::default()))
        .collect();

    // The same batch mixes starved copies (which degrade their fact
    // budgets and ultimately exhaust) with unbudgeted copies of the very
    // same queries sharing one forward cache.
    let n = fx.queries().len();
    let mut queries = fx.queries();
    queries.extend(fx.queries().into_iter().map(|q| with_mem_budget(q, EXHAUST_BUDGET)));

    for jobs in [1usize, 4] {
        let cfg = BatchConfig { jobs, ..BatchConfig::default() };
        let (results, _) =
            solve_queries_batch(&fx.program, &callees, &fx.client, &queries, &cfg);
        for i in 0..n {
            assert_eq!(
                key(&results[i]),
                key(&baseline[i]),
                "unbudgeted query {i} was perturbed by its starved twin at jobs={jobs}"
            );
            let starved = &results[n + i];
            assert!(
                starved.outcome == baseline[i].outcome
                    || starved.outcome == Outcome::Unresolved(Unresolved::MemBudgetExceeded),
                "starved query {i} at jobs={jobs}: {:?}",
                starved.outcome
            );
        }
    }
}

#[test]
fn adversarial_faults_under_budget_pressure_stay_isolated() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let wrapped = FaultInjectingClient::new(&fx.client);
    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &TracerConfig::default()))
        .collect();

    // Healthy lifted queries, a starved long query, and a panicking query
    // — all inside one pooled batch. The panicking query's governor must
    // release its stranded charges on unwind, or the pool never drains
    // and admission deadlocks.
    let n = fx.queries().len();
    for jobs in [1usize, 4] {
        // Rebuilt per run: a fault's one-shot `fired` latch is per query
        // *instance*, and a spent trap would solve healthily next time.
        let mut queries: Vec<_> = fx.queries().into_iter().map(lift_query).collect();
        let qs = fx.queries();
        queries.push(with_mem_budget(lift_query(qs[3].clone()), EXHAUST_BUDGET));
        queries.push(faulty_query(qs[1].clone(), Fault::Panic("governed panic".into())));

        let cfg = BatchConfig {
            jobs,
            pool_budget: Some(4 << 20),
            ..BatchConfig::default()
        };
        let (results, stats) =
            solve_queries_batch(&fx.program, &callees, &wrapped, &queries, &cfg);
        assert_eq!(results.len(), queries.len(), "jobs={jobs}: the batch must complete");
        for i in 0..n {
            assert_eq!(key(&results[i]), key(&baseline[i]), "healthy query {i}, jobs={jobs}");
        }
        assert_eq!(
            results[n].outcome,
            Outcome::Unresolved(Unresolved::MemBudgetExceeded),
            "jobs={jobs}"
        );
        assert_eq!(
            results[n + 1].outcome,
            Outcome::Unresolved(Unresolved::EngineFault("governed panic".into())),
            "jobs={jobs}"
        );
        assert_eq!(stats.engine_faults, 1, "jobs={jobs}");
    }
}

#[test]
fn oversized_reservation_is_rejected_without_running() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    // Reserves 128 KiB against a 64 KiB pool: can never be admitted.
    let queries: Vec<_> =
        fx.queries().into_iter().map(|q| with_mem_budget(q, 128 << 10)).collect();
    for jobs in [1usize, 4] {
        let cfg =
            BatchConfig { jobs, pool_budget: Some(64 << 10), ..BatchConfig::default() };
        let (results, _) =
            solve_queries_batch(&fx.program, &callees, &fx.client, &queries, &cfg);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.outcome,
                Outcome::Unresolved(Unresolved::MemBudgetExceeded),
                "query {i}, jobs={jobs}"
            );
            assert_eq!(r.iterations, 0, "query {i} must not have run, jobs={jobs}");
        }
    }
}

#[test]
fn congested_pool_sheds_and_requeues_instead_of_failing() {
    let fx = Fixture::new();
    let callees = |c: pda_lang::CallId| fx.pa.callees(c).to_vec();
    let wrapped = FaultInjectingClient::new(&fx.client);
    let baseline: Vec<_> = fx
        .queries()
        .iter()
        .map(|q| solve_query(&fx.program, &callees, &fx.client, q, &TracerConfig::default()))
        .collect();

    // Query 0 stalls mid-solve while holding its forward-run charge —
    // far more than the 16 KiB pool — so the other worker's admission
    // check must shed at least once before capacity frees up.
    let mut queries: Vec<_> = fx.queries().into_iter().map(lift_query).collect();
    queries[0] = faulty_query(fx.queries()[0].clone(), Fault::Stall(Duration::from_millis(400)));

    // `thread_cap` forces two genuinely concurrent workers even on a
    // single-core machine, where the default clamp would serialize them
    // and admission could never observe congestion.
    let cfg = BatchConfig {
        jobs: 2,
        thread_cap: Some(2),
        pool_budget: Some(16 << 10),
        ..BatchConfig::default()
    };
    let (results, stats) =
        solve_queries_batch(&fx.program, &callees, &wrapped, &queries, &cfg);
    assert!(stats.shed >= 1, "pool congestion must defer admissions, not fail them");
    for (i, (r, b)) in results.iter().zip(&baseline).enumerate() {
        assert_eq!(r.outcome, b.outcome, "shed query {i} must still reach its verdict");
        assert_eq!(r.iterations, b.iterations, "query {i}");
    }

    // Sequentially the pool drains between queries: no shedding, and
    // results identical to a pool-less run.
    let queries: Vec<_> = fx.queries().into_iter().map(lift_query).collect();
    let seq = BatchConfig { jobs: 1, pool_budget: Some(16 << 10), ..BatchConfig::default() };
    let (results, stats) =
        solve_queries_batch(&fx.program, &callees, &wrapped, &queries, &seq);
    assert_eq!(stats.shed, 0, "jobs=1 admission is a no-op");
    for (i, (r, b)) in results.iter().zip(&baseline).enumerate() {
        assert_eq!(key(r), key(b), "query {i}");
    }
}
