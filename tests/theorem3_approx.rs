//! Property test for Theorem 3 part (1) — **progress**: whenever the
//! trace is a genuine counterexample (the query fails at its end under the
//! current abstraction `p`), the backward meta-analysis must return a
//! formula that still contains the current `(p, d0)` — concretely, its
//! DNF retains at least one cube satisfied by `(p, d0)` even after the
//! beam approximation (`approx`/`drop_k`, Figure 8) pruned disjuncts.
//! That cube is what guarantees each CEGAR iteration eliminates at least
//! the abstraction it just tried, so the loop cannot revisit it.
//!
//! Conversely, a non-counterexample trace must be rejected loudly
//! (`MetaError::MembershipLost`) rather than produce an unsound pruning.
//!
//! Both kernels are exercised on every case: the tree kernel (reference
//! semantics) and the interned kernel (production hot path), across beam
//! widths `k ∈ {1, 3, default}`. Inputs are seeded SplitMix64 so failures
//! reproduce exactly.

use pda_lang::{Atom, VarId};
use pda_meta::{
    analyze_trace, analyze_trace_interned, approx, restrict, BeamConfig, Dnf, Formula,
    InternCache, MetaClient, MetaError,
};
use pda_tracer::{
    nullcli::{NullClient, NullPrim},
    AsMeta,
};
use pda_util::BitSet;
use std::collections::BTreeSet;

/// SplitMix64 — tiny, seedable, and good enough for fuzzing inputs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const N_VARS: u64 = 4;

fn random_atom(rng: &mut SplitMix64) -> Atom {
    let v = |rng: &mut SplitMix64| VarId(rng.below(N_VARS) as u32);
    match rng.below(4) {
        0 => Atom::Null { dst: v(rng) },
        1 => Atom::Copy { dst: v(rng), src: v(rng) },
        2 => Atom::Havoc { dst: v(rng) },
        _ => Atom::New { dst: v(rng), site: pda_lang::SiteId(0) },
    }
}

fn random_formula(rng: &mut SplitMix64, depth: usize) -> Formula<NullPrim> {
    if depth == 0 || rng.below(3) == 0 {
        let v = VarId(rng.below(N_VARS) as u32);
        let prim = if rng.below(2) == 0 { NullPrim::Var(v) } else { NullPrim::Param(v) };
        return if rng.below(2) == 0 { Formula::prim(prim) } else { Formula::nprim(prim) };
    }
    match rng.below(3) {
        0 => Formula::and((0..2 + rng.below(2)).map(|_| random_formula(rng, depth - 1)).collect()),
        1 => Formula::or((0..2 + rng.below(2)).map(|_| random_formula(rng, depth - 1)).collect()),
        _ => Formula::not(random_formula(rng, depth - 1)),
    }
}

/// Theorem 3 (1) as a predicate on the result DNF: some cube is satisfied
/// by the current `(p, d0)` — cube-level, not just `Dnf::holds`, because
/// the retained *cube* is what `drop_k`'s beam is required to preserve.
fn retains_current(dnf: &Dnf<NullPrim>, p: &BitSet, d0: &BTreeSet<VarId>) -> bool {
    dnf.0.iter().any(|c| c.holds(p, d0))
}

#[test]
fn approx_retains_cube_for_current_abstraction() {
    let mut rng = SplitMix64(0x7E03_A9F0_0000_0001);
    let program = pda_lang::parse_program("fn main() { var a, b, c, d; }").unwrap();
    let client = NullClient::new(&program);
    let meta = AsMeta(&client);
    let cfgs = [BeamConfig::with_k(1), BeamConfig::with_k(3), BeamConfig::default()];
    let mut cache: InternCache<NullPrim> = InternCache::new();
    let mut counterexamples = 0usize;
    let mut rejected = 0usize;
    for round in 0..600 {
        let trace: Vec<Atom> = (0..1 + rng.below(6)).map(|_| random_atom(&mut rng)).collect();
        let not_q = random_formula(&mut rng, 3);
        let cfg = &cfgs[(round % cfgs.len() as u64) as usize];
        let p = BitSet::from_iter(
            N_VARS as usize,
            (0..N_VARS as usize).filter(|_| rng.below(2) == 0),
        );
        let d0: BTreeSet<VarId> =
            (0..N_VARS as u32).filter(|_| rng.below(2) == 0).map(VarId).collect();

        // Replay the trace forward to decide whether it is a genuine
        // counterexample under (p, d0).
        let mut d = d0.clone();
        for a in &trace {
            d = meta.transfer(&p, a, &d);
        }
        let is_counterexample = not_q.holds(&p, &d);

        let tree = analyze_trace(&meta, &p, &d0, &trace, &not_q, cfg);
        let mut obs = pda_util::ObsRegistry::default();
        let interned =
            analyze_trace_interned(&meta, &p, &d0, &trace, &not_q, cfg, &mut cache, &mut obs);

        if is_counterexample {
            counterexamples += 1;
            let tree = tree.unwrap_or_else(|e| {
                panic!("tree kernel rejected a counterexample ({e}): trace {trace:?}, not_q {not_q}, p={p}, d0={d0:?}")
            });
            let interned = interned.unwrap_or_else(|e| {
                panic!("interned kernel rejected a counterexample ({e}): trace {trace:?}, not_q {not_q}, p={p}, d0={d0:?}")
            });
            assert!(
                retains_current(&tree, &p, &d0),
                "tree kernel dropped every cube containing (p, d0): trace {trace:?}, \
                 not_q {not_q}, p={p}, d0={d0:?}, k={:?}",
                cfg.k
            );
            assert!(
                retains_current(&interned.to_dnf(), &p, &d0),
                "interned kernel dropped every cube containing (p, d0): trace {trace:?}, \
                 not_q {not_q}, p={p}, d0={d0:?}, k={:?}",
                cfg.k
            );
            // The restriction to the parameter must still contain p itself
            // (Algorithm 1 prunes Φ — p must be in the pruned set).
            let phi = restrict(&tree, &d0);
            let asg: Vec<bool> = (0..N_VARS as usize).map(|i| p.contains(i)).collect();
            assert!(
                phi.eval(&asg),
                "restricted formula excludes the current p: trace {trace:?}, not_q {not_q}, \
                 p={p}, d0={d0:?}"
            );
        } else {
            rejected += 1;
            assert!(
                matches!(tree, Err(MetaError::MembershipLost { .. })),
                "tree kernel accepted a non-counterexample: trace {trace:?}, not_q {not_q}, \
                 p={p}, d0={d0:?}"
            );
            assert!(
                matches!(interned, Err(MetaError::MembershipLost { .. })),
                "interned kernel accepted a non-counterexample: trace {trace:?}, \
                 not_q {not_q}, p={p}, d0={d0:?}"
            );
        }
    }
    // The seed must exercise both branches substantially.
    assert!(counterexamples >= 150, "only {counterexamples} counterexample cases");
    assert!(rejected >= 150, "only {rejected} rejection cases");
}

#[test]
fn approx_direct_membership_contract() {
    // `approx` itself: returns None iff no cube holds at (p, d); when it
    // returns Some, a cube holding at (p, d) survived the beam.
    let mut rng = SplitMix64(0x7E03_A9F0_0000_0002);
    let keep_all = |_: &pda_meta::Cube<NullPrim>| true;
    let mut some = 0usize;
    let mut none = 0usize;
    for _ in 0..500 {
        let f = random_formula(&mut rng, 3);
        let p = BitSet::from_iter(
            N_VARS as usize,
            (0..N_VARS as usize).filter(|_| rng.below(2) == 0),
        );
        let d: BTreeSet<VarId> =
            (0..N_VARS as u32).filter(|_| rng.below(2) == 0).map(VarId).collect();
        let dnf = pda_meta::approx::to_dnf(&f, &BeamConfig::exhaustive(), &keep_all);
        let holds = retains_current(&dnf, &p, &d);
        match approx(&p, &d, dnf, &BeamConfig::with_k(1)) {
            Some(approxed) => {
                some += 1;
                assert!(holds, "approx invented a satisfied cube");
                assert!(
                    retains_current(&approxed, &p, &d),
                    "approx(k=1) lost the cube containing (p, d): f {f}, p={p}, d={d:?}"
                );
            }
            None => {
                none += 1;
                assert!(!holds, "approx dropped a DNF satisfied at (p, d): f {f}, p={p}, d={d:?}");
            }
        }
    }
    assert!(some >= 100, "only {some} Some cases");
    assert!(none >= 100, "only {none} None cases");
}
