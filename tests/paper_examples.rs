//! End-to-end reproduction of the paper's two worked examples
//! (Figures 1 and 6) through the public API, across crates.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_meta::BeamConfig;
use pda_tracer::{solve_query, Outcome, TracerConfig};
use pda_typestate::TypestateClient;

const FIGURE1: &str = r#"
    class File { fn open(); fn close(); }
    typestate File {
        init closed;
        closed -> open -> opened;
        opened -> close -> closed;
        opened -> open -> error;
        closed -> close -> error;
    }
    fn main() {
        var x, y, z;
        x = new File;
        y = x;
        if (*) { z = x; }
        x.open();
        y.close();
        if (*) { query check1: state x in { closed }; }
        else { query check2: state x in { opened }; }
    }
"#;

const FIGURE6: &str = r#"
    class Pair { field f; }
    fn main() {
        var u, v;
        u = new Pair;
        v = new Pair;
        v.f = u;
        query pc: local u;
    }
"#;

fn config_with_k(k: usize) -> TracerConfig {
    TracerConfig { beam: BeamConfig::with_k(k), ..TracerConfig::default() }
}

#[test]
fn figure1_check1_cheapest_is_x_y() {
    let program = pda_lang::parse_program(FIGURE1).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = TypestateClient::for_declared_automaton(&program, &pa, pda_lang::SiteId(0)).unwrap();
    for k in [1, 5] {
        let q = program.query_by_label("check1").unwrap();
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &client.state_query(q),
            &config_with_k(k),
        );
        let Outcome::Proven { param, cost } = r.outcome else {
            panic!("check1 must be proven (k={k})");
        };
        assert_eq!(cost, 2);
        let name_of = |i: usize| program.var_name(pda_lang::VarId(i as u32)).to_string();
        let tracked: Vec<String> = param.iter().map(name_of).collect();
        assert_eq!(tracked, vec!["x".to_string(), "y".to_string()]);
        // Paper: iteration 1 with p = {}, iteration 2 with p = {x},
        // iteration 3 proves with p = {x, y}. With k = 1 we match exactly.
        if k == 1 {
            assert_eq!(r.iterations, 3);
        } else {
            assert!(r.iterations <= 3);
        }
    }
}

#[test]
fn figure1_check2_impossible_quickly() {
    let program = pda_lang::parse_program(FIGURE1).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = TypestateClient::for_declared_automaton(&program, &pa, pda_lang::SiteId(0)).unwrap();
    let q = program.query_by_label("check2").unwrap();
    let r = solve_query(
        &program,
        &|c| pa.callees(c).to_vec(),
        &client,
        &client.state_query(q),
        &config_with_k(1),
    );
    assert_eq!(r.outcome, Outcome::Impossible);
    // Paper: eliminated in 2 iterations (first kills all p without x,
    // second kills all p with x).
    assert_eq!(r.iterations, 2);
}

#[test]
fn figure6_cheapest_maps_h1_h2_to_l() {
    let program = pda_lang::parse_program(FIGURE6).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = EscapeClient::new(&program);
    let q = program.query_by_label("pc").unwrap();
    for k in [1, 5, 1024] {
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &client.local_query(&program, q),
            &config_with_k(k),
        );
        let Outcome::Proven { param, cost } = r.outcome else {
            panic!("figure 6 query must be proven (k={k})");
        };
        assert_eq!(cost, 2, "cheapest is [h1 ↦ L, h2 ↦ L]");
        assert!(param.contains(0) && param.contains(1));
        // Paper Figure 6: without under-approximation (huge k) one
        // backward pass suffices (2 forward runs: fail once, then prove);
        // with k = 1 extra iterations are needed. (The paper's walkthrough
        // uses 3; ours may take 4 when the min-cost solver tie-breaks to
        // [h1↦E, h2↦L] before [h1↦L, h2↦E].)
        match k {
            1 => assert!((3..=4).contains(&r.iterations), "k=1 took {}", r.iterations),
            _ => assert!(r.iterations <= 3),
        }
    }
}

#[test]
fn figure6_under_approximation_tradeoff_matches_paper() {
    // The k = 1 run needs at least as many iterations as the exhaustive
    // run — the paper's precision/iterations tradeoff (Section 4.1).
    let program = pda_lang::parse_program(FIGURE6).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = EscapeClient::new(&program);
    let q = program.query_by_label("pc").unwrap();
    let iters = |k: usize| {
        solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &client.local_query(&program, q),
            &config_with_k(k),
        )
        .iterations
    };
    assert!(iters(1) >= iters(1024));
}
