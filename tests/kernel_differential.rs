//! Differential validation of the interned meta-kernel against the tree
//! kernel (the reference semantics).
//!
//! The interned kernel is designed to be **bit-identical** to the tree
//! path — same DNFs, same restriction formulas, hence the same SAT
//! clauses and the same solver tie-breaking. Three layers check that:
//!
//! 1. end-to-end `solve_query` over the shared corpus, both real clients
//!    (thread-escape and type-state), tree vs interned kernel: outcome,
//!    iteration count, and escalation count must match exactly;
//! 2. batch solving at `jobs ∈ {1, 8}` under both kernels: all four runs
//!    must agree on every verdict;
//! 3. randomized backward runs (SplitMix64-seeded traces and `not_q`
//!    formulas over the definite-null meta-domain): the interned kernel's
//!    DNF and restriction are *syntactically equal* to the tree kernel's.

use pda_analysis::PointsTo;
use pda_escape::EscapeClient;
use pda_lang::{Atom, VarId};
use pda_meta::{
    analyze_trace, analyze_trace_interned, restrict, BeamConfig, Formula, InternCache,
};
use pda_tracer::{
    nullcli::{NullClient, NullPrim},
    solve_query, solve_queries_batch, AsMeta, BatchConfig, MetaKernel, Outcome, TracerConfig,
};
use pda_typestate::{TsMode, TypestateClient};
use pda_util::BitSet;
use std::collections::BTreeSet;

include!("corpus.rs");

fn kernel_config(kernel: MetaKernel) -> TracerConfig {
    TracerConfig { kernel, ..TracerConfig::default() }
}

/// The bit-identity fingerprint of a result: everything except wall-clock
/// time and the meta counters (which differ across kernels by design).
fn fingerprint<P: Clone>(r: &pda_tracer::QueryResult<P>) -> (Outcome<P>, usize, u32) {
    (r.outcome.clone(), r.iterations, r.escalations)
}

#[test]
fn solve_query_is_kernel_invariant_for_escape() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        for (qid, decl) in program.queries.iter_enumerated() {
            if !matches!(decl.kind, pda_lang::QueryKind::Local { .. }) {
                continue;
            }
            let query = client.local_query(&program, qid);
            let tree =
                solve_query(&program, &callees, &client, &query, &kernel_config(MetaKernel::Tree));
            let interned = solve_query(
                &program,
                &callees,
                &client,
                &query,
                &kernel_config(MetaKernel::Interned),
            );
            assert_eq!(
                fingerprint(&tree),
                fingerprint(&interned),
                "kernels diverged on {} in:\n{src}",
                decl.label
            );
        }
    }
}

#[test]
fn solve_query_is_kernel_invariant_for_typestate() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        for site in (0..program.sites.len()).map(|i| pda_lang::SiteId(i as u32)) {
            let client = TypestateClient::new(&program, &pa, site, TsMode::stress());
            for (_, decl) in program.queries.iter_enumerated() {
                let query = pda_tracer::Query {
                    point: decl.point,
                    not_q: Formula::prim(pda_typestate::TsPrim::Err),
                    source: None,
                    limits: Default::default(),
                };
                let tree = solve_query(
                    &program,
                    &callees,
                    &client,
                    &query,
                    &kernel_config(MetaKernel::Tree),
                );
                let interned = solve_query(
                    &program,
                    &callees,
                    &client,
                    &query,
                    &kernel_config(MetaKernel::Interned),
                );
                assert_eq!(
                    fingerprint(&tree),
                    fingerprint(&interned),
                    "kernels diverged on {} (site {site}) in:\n{src}",
                    decl.label
                );
            }
        }
    }
}

#[test]
fn batch_is_kernel_invariant_at_jobs_1_and_8() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        let queries: Vec<_> = program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .map(|(qid, _)| client.local_query(&program, qid))
            .collect();
        assert!(!queries.is_empty());

        let mut runs = Vec::new();
        for kernel in [MetaKernel::Tree, MetaKernel::Interned] {
            for jobs in [1usize, 8] {
                let cfg = BatchConfig { tracer: kernel_config(kernel), jobs, ..BatchConfig::default() };
                let (results, _) = solve_queries_batch(&program, &callees, &client, &queries, &cfg);
                runs.push((kernel, jobs, results));
            }
        }
        let (_, _, reference) = &runs[0];
        for (kernel, jobs, results) in &runs[1..] {
            assert_eq!(reference.len(), results.len());
            for (i, (a, b)) in reference.iter().zip(results).enumerate() {
                assert_eq!(
                    fingerprint(a),
                    fingerprint(b),
                    "batch verdict diverged for query {i} under {kernel:?} jobs={jobs} in:\n{src}"
                );
            }
        }
    }
}

// ---- randomized backward-run differential ----

/// SplitMix64 — tiny, seedable, and good enough for fuzzing inputs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const N_VARS: u64 = 4;

fn random_atom(rng: &mut SplitMix64) -> Atom {
    let v = |rng: &mut SplitMix64| VarId(rng.below(N_VARS) as u32);
    match rng.below(4) {
        0 => Atom::Null { dst: v(rng) },
        1 => Atom::Copy { dst: v(rng), src: v(rng) },
        2 => Atom::Havoc { dst: v(rng) },
        _ => Atom::New { dst: v(rng), site: pda_lang::SiteId(0) },
    }
}

fn random_formula(rng: &mut SplitMix64, depth: usize) -> Formula<NullPrim> {
    if depth == 0 || rng.below(3) == 0 {
        let v = VarId(rng.below(N_VARS) as u32);
        let prim = if rng.below(2) == 0 { NullPrim::Var(v) } else { NullPrim::Param(v) };
        return if rng.below(2) == 0 { Formula::prim(prim) } else { Formula::nprim(prim) };
    }
    match rng.below(3) {
        0 => Formula::and((0..2 + rng.below(2)).map(|_| random_formula(rng, depth - 1)).collect()),
        1 => Formula::or((0..2 + rng.below(2)).map(|_| random_formula(rng, depth - 1)).collect()),
        _ => Formula::not(random_formula(rng, depth - 1)),
    }
}

#[test]
fn random_backward_runs_are_kernel_identical() {
    // Fixed seed: failures reproduce exactly.
    let mut rng = SplitMix64(0x5EED_0001);
    let program = pda_lang::parse_program("fn main() { var a, b, c, d; }").unwrap();
    let client = NullClient::new(&program);
    let cfgs = [BeamConfig::with_k(1), BeamConfig::with_k(3), BeamConfig::default()];
    // A cache shared across all rounds: every round sees a superset
    // universe and a warm memo — the cross-iteration reuse the driver
    // relies on, stress-tested over unrelated traces and queries.
    let mut shared: InternCache<NullPrim> = InternCache::new();
    let mut compared = 0usize;
    for round in 0..600 {
        let trace: Vec<Atom> = (0..1 + rng.below(6)).map(|_| random_atom(&mut rng)).collect();
        let not_q = random_formula(&mut rng, 3);
        let cfg = &cfgs[(round % cfgs.len() as u64) as usize];
        let p = BitSet::from_iter(
            N_VARS as usize,
            (0..N_VARS as usize).filter(|_| rng.below(2) == 0),
        );
        let d0: BTreeSet<VarId> = (0..N_VARS as u32).filter(|_| rng.below(2) == 0).map(VarId).collect();

        let tree = analyze_trace(&AsMeta(&client), &p, &d0, &trace, &not_q, cfg);
        let mut obs = pda_util::ObsRegistry::default();
        // Alternate fresh and shared caches: both must match the tree.
        let mut fresh = InternCache::new();
        let cache = if round % 2 == 0 { &mut fresh } else { &mut shared };
        let interned = analyze_trace_interned(
            &AsMeta(&client),
            &p,
            &d0,
            &trace,
            &not_q,
            cfg,
            cache,
            &mut obs,
        );
        match (tree, interned) {
            (Ok(t), Ok(f)) => {
                assert_eq!(
                    t,
                    f.to_dnf(),
                    "DNF diverged on trace {trace:?}, not_q {not_q}, p={p}, d0={d0:?}"
                );
                assert_eq!(
                    restrict(&t, &d0),
                    f.restrict(),
                    "restriction diverged on trace {trace:?}, not_q {not_q}, p={p}, d0={d0:?}"
                );
                compared += 1;
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!(
                "outcome diverged on trace {trace:?}, not_q {not_q}: tree {a:?} vs interned {:?}",
                b.map(|f| f.to_dnf())
            ),
        }
    }
    assert!(compared >= 200, "only {compared} successful comparisons");
}

// ---- meta-jobs data parallelism ----

/// The full bit-identity contract for `meta_jobs > 1`, as integration
/// surface: DNF, restriction, *and* the per-run counters (`CubesBuilt`,
/// `WpHits`, `WpMisses`) that `MetaDone` trace events put on the wire —
/// against the serial kernel, with both a fresh cache per run and a warm
/// cache reused across rounds (the batch driver's steady state).
#[test]
fn meta_jobs_runs_are_bit_identical_fresh_and_warm() {
    use pda_meta::analyze_trace_interned_jobs as run_jobs;
    use pda_util::{Counter, ObsRegistry};

    let mut rng = SplitMix64(0xBEEF_0002);
    let program = pda_lang::parse_program("fn main() { var a, b, c, d; }").unwrap();
    let client = NullClient::new(&program);
    let cfg = BeamConfig::default();
    let counters = [Counter::CubesBuilt, Counter::WpHits, Counter::WpMisses];

    // Warm lineages: one serial, one per parallel degree. Identical
    // inputs must keep them in lockstep, so the warm comparisons also
    // prove the *caches* evolve identically.
    let mut warm_serial: InternCache<NullPrim> = InternCache::new();
    let mut warm_par = [InternCache::<NullPrim>::new(), InternCache::<NullPrim>::new()];

    for _round in 0..150 {
        let trace: Vec<Atom> = (0..1 + rng.below(6)).map(|_| random_atom(&mut rng)).collect();
        let not_q = random_formula(&mut rng, 3);
        let p = BitSet::from_iter(
            N_VARS as usize,
            (0..N_VARS as usize).filter(|_| rng.below(2) == 0),
        );
        let d0: BTreeSet<VarId> =
            (0..N_VARS as u32).filter(|_| rng.below(2) == 0).map(VarId).collect();

        let run = |cache: &mut InternCache<NullPrim>, meta_jobs: usize| {
            let mut obs = ObsRegistry::default();
            let r = run_jobs(
                &AsMeta(&client), &p, &d0, &trace, &not_q, &cfg, cache, &mut obs, meta_jobs,
            );
            let counts: Vec<u64> = counters.iter().map(|&c| obs.get(c)).collect();
            (r.map(|f| (f.to_dnf(), f.restrict())), counts)
        };

        let fresh_ref = run(&mut InternCache::new(), 1);
        let warm_ref = run(&mut warm_serial, 1);
        for (i, meta_jobs) in [2usize, 4].into_iter().enumerate() {
            let fresh = run(&mut InternCache::new(), meta_jobs);
            assert_eq!(
                fresh_ref, fresh,
                "fresh-cache run diverged at meta_jobs={meta_jobs} on {trace:?}, not_q {not_q}"
            );
            let warm = run(&mut warm_par[i], meta_jobs);
            assert_eq!(
                warm_ref, warm,
                "warm-cache run diverged at meta_jobs={meta_jobs} on {trace:?}, not_q {not_q}"
            );
        }
    }
}

/// End-to-end plumbing check: `TracerConfig::meta_jobs` must be invisible
/// in `solve_query` results over the whole corpus.
#[test]
fn solve_query_is_meta_jobs_invariant() {
    for src in PROGRAMS {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let client = EscapeClient::new(&program);
        for (qid, decl) in program.queries.iter_enumerated() {
            if !matches!(decl.kind, pda_lang::QueryKind::Local { .. }) {
                continue;
            }
            let query = client.local_query(&program, qid);
            let solve = |meta_jobs: usize| {
                let cfg = TracerConfig {
                    kernel: MetaKernel::Interned,
                    meta_jobs,
                    ..TracerConfig::default()
                };
                fingerprint(&solve_query(&program, &callees, &client, &query, &cfg))
            };
            let serial = solve(1);
            for meta_jobs in [2, 4] {
                assert_eq!(
                    serial,
                    solve(meta_jobs),
                    "meta_jobs={meta_jobs} changed {} in:\n{src}",
                    decl.label
                );
            }
        }
    }
}
