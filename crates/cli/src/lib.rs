//! Library backing the `pda` command-line tool.
//!
//! Subcommands:
//!
//! * `pda check <file.jay>` — parse, resolve, validate; print program
//!   statistics.
//! * `pda queries <file.jay>` — list the source queries with their kinds.
//! * `pda solve <file.jay> [--query LABEL] [--k N] [--max-iters N]`
//!   — run TRACER on one labeled query (or all), choosing the client by
//!   the query kind (`local` → thread-escape, `state` → type-state).
//! * `pda gen <benchmark>` — print a generated suite benchmark's source.
//!
//! The heavy lifting lives in the workspace crates; this module only
//! parses arguments and formats reports, and is unit-tested directly.

#![warn(missing_docs)]

use pda_analysis::{PointsTo, Reachability};
use pda_escape::EscapeClient;
use pda_meta::BeamConfig;
use pda_tracer::{
    default_jobs, solve_queries_batch, solve_query, BatchConfig, Outcome, TracerConfig,
};
use pda_typestate::TypestateClient;
use pda_util::Idx;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `pda check <file>`
    Check {
        /// Input path.
        file: String,
    },
    /// `pda queries <file>`
    Queries {
        /// Input path.
        file: String,
    },
    /// `pda solve <file> [--query LABEL] [--k N] [--max-iters N] [--jobs N]`
    Solve {
        /// Input path.
        file: String,
        /// Restrict to one labeled query.
        query: Option<String>,
        /// Beam width.
        k: usize,
        /// Iteration budget.
        max_iters: usize,
        /// Worker threads (1 = today's sequential driver; default = the
        /// machine's available parallelism).
        jobs: usize,
    },
    /// `pda gen <benchmark>`
    Gen {
        /// Suite benchmark name (tsp, elevator, ...).
        name: String,
    },
    /// `pda help` or no/invalid arguments.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
pda — optimum abstractions for parametric dataflow analysis (PLDI'13)

USAGE:
    pda check   <file.jay>                 parse, validate, report stats
    pda queries <file.jay>                 list source queries
    pda solve   <file.jay> [--query LABEL] [--k N] [--max-iters N] [--jobs N]
                                           find optimum abstractions
                                           (--jobs 1 = sequential; default:
                                           available parallelism, batched
                                           with a shared forward-run cache)
    pda gen     <benchmark>                print a generated suite program
";

/// Parses command-line arguments (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, String> {
    let args: Vec<String> = args.into_iter().collect();
    match args.first().map(String::as_str) {
        Some("check") => match args.get(1) {
            Some(f) => Ok(Command::Check { file: f.clone() }),
            None => Err("check: missing <file>".into()),
        },
        Some("queries") => match args.get(1) {
            Some(f) => Ok(Command::Queries { file: f.clone() }),
            None => Err("queries: missing <file>".into()),
        },
        Some("gen") => match args.get(1) {
            Some(n) => Ok(Command::Gen { name: n.clone() }),
            None => Err("gen: missing <benchmark>".into()),
        },
        Some("solve") => {
            let Some(file) = args.get(1).cloned() else {
                return Err("solve: missing <file>".into());
            };
            let mut query = None;
            let mut k = 5usize;
            let mut max_iters = 100usize;
            let mut jobs = default_jobs();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--query" => {
                        query = Some(
                            args.get(i + 1)
                                .ok_or("--query needs a label")?
                                .clone(),
                        );
                        i += 2;
                    }
                    "--k" => {
                        k = args
                            .get(i + 1)
                            .ok_or("--k needs a number")?
                            .parse()
                            .map_err(|_| "--k needs a number".to_string())?;
                        i += 2;
                    }
                    "--max-iters" => {
                        max_iters = args
                            .get(i + 1)
                            .ok_or("--max-iters needs a number")?
                            .parse()
                            .map_err(|_| "--max-iters needs a number".to_string())?;
                        i += 2;
                    }
                    "--jobs" => {
                        jobs = args
                            .get(i + 1)
                            .ok_or("--jobs needs a number")?
                            .parse::<usize>()
                            .map_err(|_| "--jobs needs a number".to_string())?
                            .max(1);
                        i += 2;
                    }
                    other => return Err(format!("solve: unknown flag `{other}`")),
                }
            }
            Ok(Command::Solve { file, query, k, max_iters, jobs })
        }
        Some("help") | None => Ok(Command::Help),
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

/// Executes a command against source text, returning the report.
///
/// File access happens in `main`; this function is pure given the source,
/// which keeps it testable.
pub fn run_on_source(cmd: &Command, source: &str) -> Result<String, String> {
    match cmd {
        Command::Check { .. } => check_report(source),
        Command::Queries { .. } => queries_report(source),
        Command::Solve { query, k, max_iters, jobs, .. } => {
            solve_report(source, query.as_deref(), *k, *max_iters, *jobs)
        }
        Command::Gen { name } => {
            let cfg = pda_suite::suite()
                .into_iter()
                .find(|c| c.name == *name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            Ok(pda_suite::generate_source(&cfg))
        }
        Command::Help => Ok(USAGE.to_string()),
    }
}

fn load(source: &str) -> Result<pda_lang::Program, String> {
    pda_lang::parse_program(source).map_err(|e| e.to_string())
}

fn check_report(source: &str) -> Result<String, String> {
    let program = load(source)?;
    let violations = pda_lang::validate::check(&program);
    let pa = PointsTo::analyze(&program);
    let reach = Reachability::compute(&program, &pa);
    let mut out = String::new();
    writeln!(out, "classes:   {}", program.classes.len()).unwrap();
    writeln!(out, "methods:   {} ({} reachable)", program.methods.len(), reach.count()).unwrap();
    writeln!(out, "variables: {}", program.vars.len()).unwrap();
    writeln!(out, "sites:     {}", program.sites.len()).unwrap();
    writeln!(out, "queries:   {}", program.queries.len()).unwrap();
    writeln!(
        out,
        "abstraction families: 2^{} (type-state), 2^{} (thread-escape)",
        program.vars.len(),
        program.sites.len()
    )
    .unwrap();
    if violations.is_empty() {
        writeln!(out, "IR: well-formed").unwrap();
        Ok(out)
    } else {
        for v in &violations {
            writeln!(out, "violation: {v}").unwrap();
        }
        Err(out)
    }
}

fn queries_report(source: &str) -> Result<String, String> {
    let program = load(source)?;
    let mut out = String::new();
    for (_, q) in program.queries.iter_enumerated() {
        let line = program.points[q.point].line;
        match &q.kind {
            pda_lang::QueryKind::Local { var } => {
                writeln!(out, "{}: local {} (line {line})", q.label, program.var_name(*var)).unwrap();
            }
            pda_lang::QueryKind::State { var, allowed } => {
                let names: Vec<&str> =
                    allowed.iter().map(|&n| program.names.resolve(n)).collect();
                writeln!(
                    out,
                    "{}: state {} in {{{}}} (line {line})",
                    q.label,
                    program.var_name(*var),
                    names.join(", ")
                )
                .unwrap();
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no queries)\n");
    }
    Ok(out)
}

fn solve_report(
    source: &str,
    label: Option<&str>,
    k: usize,
    max_iters: usize,
    jobs: usize,
) -> Result<String, String> {
    let program = load(source)?;
    let pa = PointsTo::analyze(&program);
    let config = TracerConfig {
        beam: BeamConfig::with_k(k),
        max_iters,
        ..TracerConfig::default()
    };
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();

    // With --jobs > 1 the thread-escape queries (which share one client)
    // run upfront as one batch on the worker pool with a shared
    // forward-run cache; per-query verdicts are identical to the
    // sequential driver and get rendered below in declaration order.
    let mut batched: Vec<(pda_lang::QueryId, pda_tracer::QueryResult<pda_util::BitSet>)> =
        Vec::new();
    let mut batch_stats = None;
    if jobs > 1 {
        let client = EscapeClient::new(&program);
        let local: Vec<pda_lang::QueryId> = program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| label.is_none_or(|want| d.label == want))
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .map(|(qid, _)| qid)
            .collect();
        let queries: Vec<_> = local.iter().map(|&qid| client.local_query(&program, qid)).collect();
        if !queries.is_empty() {
            let batch = BatchConfig { tracer: config.clone(), jobs };
            let (results, stats) =
                solve_queries_batch(&program, &callees, &client, &queries, &batch);
            batched = local.into_iter().zip(results).collect();
            batch_stats = Some(stats);
        }
    }

    let mut out = String::new();
    let mut matched = false;
    for (qid, decl) in program.queries.iter_enumerated() {
        if let Some(want) = label {
            if decl.label != want {
                continue;
            }
        }
        matched = true;
        match &decl.kind {
            pda_lang::QueryKind::Local { .. } => {
                let r = match batched.iter().position(|(id, _)| *id == qid) {
                    Some(i) => batched.swap_remove(i).1,
                    None => {
                        let client = EscapeClient::new(&program);
                        let query = client.local_query(&program, qid);
                        solve_query(&program, &callees, &client, &query, &config)
                    }
                };
                render(&mut out, &program, &decl.label, "thread-escape", &r, |i| {
                    format!("site {}", program.site_label(pda_lang::SiteId::from_usize(i)))
                });
            }
            pda_lang::QueryKind::State { var, .. } => {
                let sites: Vec<pda_lang::SiteId> = pa
                    .pts_var(*var)
                    .iter()
                    .map(pda_lang::SiteId::from_usize)
                    .collect();
                if sites.is_empty() {
                    writeln!(out, "{}: vacuous (receiver points nowhere)", decl.label).unwrap();
                }
                for site in sites {
                    let Some(client) =
                        TypestateClient::for_declared_automaton(&program, &pa, site)
                    else {
                        writeln!(
                            out,
                            "{}: site {} has no typestate declaration",
                            decl.label,
                            program.site_label(site)
                        )
                        .unwrap();
                        continue;
                    };
                    let query = client.state_query(qid);
                    let r = solve_query(&program, &callees, &client, &query, &config);
                    let tag = format!("{} @ {}", decl.label, program.site_label(site));
                    render(&mut out, &program, &tag, "type-state", &r, |i| {
                        program.var_name(pda_lang::VarId(i as u32)).to_string()
                    });
                }
            }
        }
    }
    if !matched {
        return Err(match label {
            Some(l) => format!("no query labeled `{l}`"),
            None => "program has no queries".to_string(),
        });
    }
    if let Some(stats) = batch_stats {
        writeln!(out, "batch: {stats}").unwrap();
    }
    Ok(out)
}

fn render(
    out: &mut String,
    _program: &pda_lang::Program,
    label: &str,
    analysis: &str,
    r: &pda_tracer::QueryResult<pda_util::BitSet>,
    atom_name: impl Fn(usize) -> String,
) {
    match &r.outcome {
        Outcome::Proven { param, cost } => {
            let parts: Vec<String> = param.iter().map(atom_name).collect();
            writeln!(
                out,
                "{label} [{analysis}]: PROVEN, optimum |p| = {cost} {{{}}} ({} iterations)",
                parts.join(", "),
                r.iterations
            )
            .unwrap();
        }
        Outcome::Impossible => {
            writeln!(
                out,
                "{label} [{analysis}]: IMPOSSIBLE for every abstraction ({} iterations)",
                r.iterations
            )
            .unwrap();
        }
        Outcome::Unresolved(u) => {
            writeln!(out, "{label} [{analysis}]: unresolved ({u:?})").unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        global g;
        class File { fn open(); fn close(); }
        typestate File {
            init closed;
            closed -> open -> opened;
            opened -> close -> closed;
            opened -> open -> error;
            closed -> close -> error;
        }
        class Box { field item; }
        fn main() {
            var f, b, x;
            f = new File;
            f.open();
            f.close();
            b = new Box;
            x = new Box;
            b.item = x;
            query protocol: state f in { closed };
            query localx: local x;
            if (*) { g = b; }
        }
    "#;

    #[test]
    fn parse_args_all_commands() {
        let a = |xs: &[&str]| parse_args(xs.iter().map(|s| s.to_string()));
        assert_eq!(a(&["check", "f.jay"]).unwrap(), Command::Check { file: "f.jay".into() });
        assert_eq!(a(&["queries", "f.jay"]).unwrap(), Command::Queries { file: "f.jay".into() });
        assert_eq!(a(&["gen", "tsp"]).unwrap(), Command::Gen { name: "tsp".into() });
        assert_eq!(
            a(&["solve", "f.jay", "--query", "q", "--k", "3", "--max-iters", "9"]).unwrap(),
            Command::Solve {
                file: "f.jay".into(),
                query: Some("q".into()),
                k: 3,
                max_iters: 9,
                jobs: default_jobs(),
            }
        );
        assert_eq!(
            a(&["solve", "f.jay", "--jobs", "4"]).unwrap(),
            Command::Solve { file: "f.jay".into(), query: None, k: 5, max_iters: 100, jobs: 4 }
        );
        // --jobs 0 is clamped to the sequential driver.
        assert_eq!(
            a(&["solve", "f.jay", "--jobs", "0"]).unwrap(),
            Command::Solve { file: "f.jay".into(), query: None, k: 5, max_iters: 100, jobs: 1 }
        );
        assert_eq!(a(&[]).unwrap(), Command::Help);
        assert!(a(&["bogus"]).is_err());
        assert!(a(&["solve"]).is_err());
        assert!(a(&["solve", "f", "--k", "NaN"]).is_err());
        assert!(a(&["solve", "f", "--jobs", "many"]).is_err());
    }

    #[test]
    fn check_reports_stats() {
        let report = run_on_source(&Command::Check { file: String::new() }, SRC).unwrap();
        assert!(report.contains("classes:   2"));
        assert!(report.contains("queries:   2"));
        assert!(report.contains("well-formed"));
    }

    #[test]
    fn queries_lists_both_kinds() {
        let report = run_on_source(&Command::Queries { file: String::new() }, SRC).unwrap();
        assert!(report.contains("protocol: state f in {closed}"));
        assert!(report.contains("localx: local x"));
    }

    #[test]
    fn solve_resolves_both_queries() {
        let cmd =
            Command::Solve { file: String::new(), query: None, k: 5, max_iters: 50, jobs: 1 };
        let report = run_on_source(&cmd, SRC).unwrap();
        assert!(report.contains("protocol @ File#0 [type-state]: PROVEN"), "{report}");
        assert!(report.contains("localx [thread-escape]: PROVEN"), "{report}");
    }

    #[test]
    fn solve_single_query_and_missing_label() {
        let cmd = Command::Solve {
            file: String::new(),
            query: Some("localx".into()),
            k: 5,
            max_iters: 50,
            jobs: 1,
        };
        let report = run_on_source(&cmd, SRC).unwrap();
        assert!(!report.contains("protocol"));
        let bad = Command::Solve {
            file: String::new(),
            query: Some("nope".into()),
            k: 5,
            max_iters: 50,
            jobs: 1,
        };
        assert!(run_on_source(&bad, SRC).is_err());
    }

    #[test]
    fn parallel_solve_matches_sequential_verdicts() {
        let seq =
            Command::Solve { file: String::new(), query: None, k: 5, max_iters: 50, jobs: 1 };
        let par =
            Command::Solve { file: String::new(), query: None, k: 5, max_iters: 50, jobs: 4 };
        let seq_report = run_on_source(&seq, SRC).unwrap();
        let par_report = run_on_source(&par, SRC).unwrap();
        // Same per-query lines; the parallel run appends a batch stats line.
        let verdicts =
            |r: &str| r.lines().filter(|l| !l.starts_with("batch:")).map(String::from).collect::<Vec<_>>();
        assert_eq!(verdicts(&seq_report), verdicts(&par_report));
        assert!(par_report.contains("batch: 1 queries, jobs="), "{par_report}");
        assert!(!seq_report.contains("batch:"));
    }

    #[test]
    fn gen_produces_named_benchmark() {
        let out = run_on_source(&Command::Gen { name: "tsp".into() }, "").unwrap();
        assert!(out.contains("benchmark `tsp`"));
        assert!(run_on_source(&Command::Gen { name: "nope".into() }, "").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = run_on_source(&Command::Check { file: String::new() }, "fn main( {").unwrap_err();
        assert!(err.contains("parse error"));
    }
}
