//! Library backing the `pda` command-line tool.
//!
//! Subcommands:
//!
//! * `pda check <file.jay>` — parse, resolve, validate; print program
//!   statistics.
//! * `pda queries <file.jay>` — list the source queries with their kinds.
//! * `pda solve <file.jay> [--query LABEL] [--k N] [--max-iters N]
//!   [--jobs N] [--deadline MS] [--escalate N] [--checkpoint PATH]
//!   [--trace OUT.jsonl] [--metrics]`
//!   — run TRACER on one labeled query (or all), choosing the client by
//!   the query kind (`local` → thread-escape, `state` → type-state).
//!   `--trace` streams the structured JSONL event log to a file;
//!   `--metrics` appends the per-span latency table to the report.
//! * `pda gen <benchmark>` — print a generated suite benchmark's source.
//!
//! The heavy lifting lives in the workspace crates; this module only
//! parses arguments and formats reports, and is unit-tested directly.
//! Failures are typed ([`CliError`]) so `main` can map them to exit
//! codes: usage mistakes exit 2, everything else exits 1.

#![warn(missing_docs)]

use pda_analysis::{PointsTo, Reachability};
use pda_escape::EscapeClient;
use pda_meta::BeamConfig;
use pda_tracer::{
    default_jobs, outcome_tag, solve_queries_batch_checkpointed_traced, solve_queries_batch_traced,
    solve_query, solve_query_observed, BatchConfig, Escalation, Outcome, QueryObs, TracerConfig,
    ViableEngine,
};
use pda_typestate::TypestateClient;
use pda_util::{Deadline, Event, FileSink, Idx, ObsRegistry, TraceSink};
use std::fmt;
use std::fmt::Write as _;

/// Appends a report line; `fmt::Write` to a `String` cannot fail, so the
/// result is deliberately discarded instead of unwrapped.
macro_rules! out {
    ($dst:expr, $($arg:tt)*) => {{ let _ = writeln!($dst, $($arg)*); }};
}

/// Everything that can go wrong running the tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line itself is malformed (exit code 2).
    Usage(String),
    /// The input program is unreadable, unparsable, or ill-formed.
    Input(String),
    /// A checkpoint file could not be created, read, or trusted.
    Checkpoint(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) | CliError::Checkpoint(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Input(m) => write!(f, "{m}"),
            CliError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `pda check <file>`
    Check {
        /// Input path.
        file: String,
    },
    /// `pda queries <file>`
    Queries {
        /// Input path.
        file: String,
    },
    /// `pda solve <file> [--query LABEL] [--k N] [--max-iters N]
    /// [--jobs N] [--meta-jobs N] [--deadline MS] [--escalate N] [--mem-budget BYTES]
    /// [--pool-budget BYTES] [--checkpoint PATH] [--trace PATH]
    /// [--metrics]`
    Solve {
        /// Input path.
        file: String,
        /// Restrict to one labeled query.
        query: Option<String>,
        /// Beam width.
        k: usize,
        /// Iteration budget.
        max_iters: usize,
        /// Worker threads (1 = today's sequential driver; default = the
        /// machine's available parallelism).
        jobs: usize,
        /// In-query data parallelism for the backward meta-kernel
        /// (1 = serial kernel, the default; results are bit-identical
        /// at any value).
        meta_jobs: usize,
        /// Per-query wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Fact-budget escalation retries on forward-run `TooBig`.
        escalate: Option<u32>,
        /// Per-query memory budget in estimated bytes (accepts `k`/`m`/`g`
        /// suffixes).
        mem_budget: Option<u64>,
        /// Shared batch memory pool in estimated bytes (admission
        /// control; accepts `k`/`m`/`g` suffixes).
        pool_budget: Option<u64>,
        /// Retry transiently faulted queries up to N times on the
        /// deterministic backoff ladder.
        retry_faults: Option<u32>,
        /// Checkpoint file: resume finished thread-escape queries from it
        /// and stream new results into it.
        checkpoint: Option<String>,
        /// Structured JSONL trace output path.
        trace: Option<String>,
        /// Append the per-span latency table to the report (and enable
        /// span wall-clock measurement).
        metrics: bool,
        /// Viable-set constraint engine: DPLL branch-and-bound (the
        /// default) or the resident ROBDD. Outcomes are bit-identical.
        viable_engine: ViableEngine,
        /// Deterministic fault plan armed for the run (chaos testing;
        /// `point@hit=action` entries or `seed:N`, see `pda_util::faultplane`).
        fault_plan: Option<String>,
    },
    /// `pda serve <file> [--socket PATH] [--journal PATH] [--jobs N]
    /// [--meta-jobs N] [--thread-cap N] [--deadline MS] [--retry-faults N]
    /// [--k N] [--max-iters N] [--viable-engine E] [--trace PATH]
    /// [--allow-inject]`
    Serve {
        /// Input path.
        file: String,
        /// Unix-socket path; omitted = serve one JSONL session on
        /// stdin/stdout.
        socket: Option<String>,
        /// Journal (batch checkpoint) path for crash-safe resume.
        journal: Option<String>,
        /// Worker threads for the `batch` op.
        jobs: usize,
        /// In-query data parallelism for the backward meta-kernel.
        meta_jobs: usize,
        /// Upper bound on threads the daemon may occupy (batch workers
        /// and the solve op's meta-kernel degree alike). `None` clamps
        /// to the machine's available parallelism.
        thread_cap: Option<usize>,
        /// Default per-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Retry transient faults (including deadline hits) up to N
        /// times per request on the deterministic backoff ladder.
        retry_faults: Option<u32>,
        /// Beam width.
        k: usize,
        /// Iteration budget.
        max_iters: usize,
        /// Structured JSONL trace output path (per-request obs spans).
        trace: Option<String>,
        /// Honor `"inject":"panic"` requests (tests and CI only).
        allow_inject: bool,
        /// Viable-set constraint engine for every request.
        viable_engine: ViableEngine,
        /// Deterministic fault plan armed for the daemon's life.
        fault_plan: Option<String>,
        /// Abandon solve attempts that make no heartbeat progress for
        /// this many milliseconds (`engine_stall` + quarantine).
        watchdog_ms: Option<u64>,
    },
    /// `pda request <socket> <json-line>` — one-shot daemon client.
    Request {
        /// Daemon socket path.
        socket: String,
        /// The request line to send.
        line: String,
    },
    /// `pda gen <benchmark>`
    Gen {
        /// Suite benchmark name (tsp, elevator, ...).
        name: String,
    },
    /// `pda help` or no/invalid arguments.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
pda — optimum abstractions for parametric dataflow analysis (PLDI'13)

USAGE:
    pda check   <file.jay>                 parse, validate, report stats
    pda queries <file.jay>                 list source queries
    pda solve   <file.jay> [--query LABEL] [--k N] [--max-iters N] [--jobs N]
                [--meta-jobs N] [--deadline MS] [--escalate N] [--mem-budget BYTES]
                [--pool-budget BYTES] [--checkpoint PATH]
                                           find optimum abstractions
                                           (--jobs 1 = sequential; default:
                                           available parallelism, batched
                                           with a shared forward-run cache)
                                           --meta-jobs   in-query data
                                                         parallelism for the
                                                         backward meta-kernel
                                                         (results identical at
                                                         any value; default 1,
                                                         env PDA_META_JOBS)
                                           --deadline    per-query wall-clock
                                                         budget, milliseconds
                                           --escalate    retry TooBig forward
                                                         runs N times with a
                                                         4x fact budget each
                                           --mem-budget  per-query memory
                                                         budget in estimated
                                                         bytes (k/m/g ok);
                                                         under pressure the
                                                         governor degrades
                                                         before giving up
                                           --pool-budget shared batch memory
                                                         pool (admission
                                                         control; k/m/g ok)
                                           --retry-faults retry transiently
                                                         faulted queries up to
                                                         N times on the
                                                         deterministic backoff
                                                         ladder
                                           --checkpoint  stream results to
                                                         PATH; on rerun, skip
                                                         queries already there
                                           --trace       stream structured
                                                         JSONL events to PATH
                                           --metrics     append the per-span
                                                         latency table to the
                                                         report
                                           --viable-engine dpll|bdd
                                                         viable-set constraint
                                                         engine: DPLL search
                                                         (default) or the
                                                         resident ROBDD;
                                                         outcomes identical
                                                         (env
                                                         PDA_VIABLE_ENGINE)
                                           --fault-plan  arm the deterministic
                                                         fault-injection plane:
                                                         `point@hit=action`
                                                         entries (actions
                                                         panic|stall:MS|
                                                         ioerr[:KIND]|abort)
                                                         or `seed:N[:permille]`
                                                         (env PDA_FAULT_PLAN)
    pda serve   <file.jay> [--socket PATH] [--journal PATH] [--jobs N]
                [--meta-jobs N] [--thread-cap N] [--deadline MS]
                [--retry-faults N] [--k N] [--max-iters N]
                [--viable-engine E] [--trace PATH] [--allow-inject]
                                           run the crash-safe analysis daemon
                                           (JSONL over the Unix socket, or
                                           stdin/stdout without --socket);
                                           --journal resumes finished queries
                                           across restarts, SIGTERM drains
                                           gracefully, --thread-cap bounds
                                           daemon threads (batch workers and
                                           solve-op meta-kernel alike),
                                           --allow-inject enables
                                           fault-injection requests,
                                           --fault-plan arms the deterministic
                                           fault plane (env PDA_FAULT_PLAN),
                                           --watchdog-ms abandons solve
                                           attempts with no heartbeat progress
                                           for that long (engine_stall reply +
                                           cache quarantine)
    pda request <socket> <json-line>       send one request to a daemon and
                                           print the response
    pda gen     <benchmark>                print a generated suite program
";

/// The `--meta-jobs` default: `PDA_META_JOBS` from the environment if
/// set and parseable, else `1` (the serial backward kernel). Unlike
/// `--jobs`, the default is *not* the machine parallelism: in-query data
/// parallelism only pays off on large DNF products, so it stays opt-in.
fn default_meta_jobs() -> usize {
    std::env::var("PDA_META_JOBS").ok().and_then(|v| v.parse::<usize>().ok()).map_or(1, |n| n.max(1))
}

/// The `--viable-engine` default: `PDA_VIABLE_ENGINE` from the
/// environment if set and recognizable, else DPLL. Outcomes are
/// bit-identical either way, so a bad value falls back silently rather
/// than failing a command the flag was never passed to.
fn default_viable_engine() -> ViableEngine {
    std::env::var("PDA_VIABLE_ENGINE")
        .ok()
        .and_then(|v| ViableEngine::parse(&v).ok())
        .unwrap_or_default()
}

fn parse_engine(args: &[String], i: usize) -> Result<ViableEngine, CliError> {
    match args.get(i + 1) {
        Some(v) => ViableEngine::parse(v).map_or_else(|e| usage(format!("--viable-engine: {e}")), Ok),
        None => usage("--viable-engine needs dpll|bdd"),
    }
}

fn parse_num<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, CliError> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .map_or_else(|| usage(format!("{flag} needs a number")), Ok)
}

fn parse_size(args: &[String], i: usize, flag: &str) -> Result<u64, CliError> {
    args.get(i + 1)
        .and_then(|v| pda_util::parse_bytes(v))
        .map_or_else(|| usage(format!("{flag} needs a byte size (e.g. 4096, 64k, 2m, 1g)")), Ok)
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// [`CliError::Usage`] on unknown commands, unknown flags, and malformed
/// flag values.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let args: Vec<String> = args.into_iter().collect();
    match args.first().map(String::as_str) {
        Some("check") => match args.get(1) {
            Some(f) => Ok(Command::Check { file: f.clone() }),
            None => usage("check: missing <file>"),
        },
        Some("queries") => match args.get(1) {
            Some(f) => Ok(Command::Queries { file: f.clone() }),
            None => usage("queries: missing <file>"),
        },
        Some("gen") => match args.get(1) {
            Some(n) => Ok(Command::Gen { name: n.clone() }),
            None => usage("gen: missing <benchmark>"),
        },
        Some("solve") => {
            let Some(file) = args.get(1).cloned() else {
                return usage("solve: missing <file>");
            };
            let mut query = None;
            let mut k = 5usize;
            let mut max_iters = 100usize;
            let mut jobs = default_jobs();
            let mut meta_jobs = default_meta_jobs();
            let mut deadline_ms = None;
            let mut escalate = None;
            let mut mem_budget = None;
            let mut pool_budget = None;
            let mut retry_faults = None;
            let mut checkpoint = None;
            let mut trace = None;
            let mut metrics = false;
            let mut viable_engine = default_viable_engine();
            let mut fault_plan = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--query" => {
                        let Some(label) = args.get(i + 1) else {
                            return usage("--query needs a label");
                        };
                        query = Some(label.clone());
                    }
                    "--k" => k = parse_num(&args, i, "--k")?,
                    "--max-iters" => max_iters = parse_num(&args, i, "--max-iters")?,
                    "--jobs" => jobs = parse_num::<usize>(&args, i, "--jobs")?.max(1),
                    "--meta-jobs" => {
                        meta_jobs = parse_num::<usize>(&args, i, "--meta-jobs")?.max(1);
                    }
                    "--deadline" => deadline_ms = Some(parse_num(&args, i, "--deadline")?),
                    "--escalate" => escalate = Some(parse_num(&args, i, "--escalate")?),
                    "--mem-budget" => mem_budget = Some(parse_size(&args, i, "--mem-budget")?),
                    "--pool-budget" => pool_budget = Some(parse_size(&args, i, "--pool-budget")?),
                    "--retry-faults" => {
                        retry_faults = Some(parse_num(&args, i, "--retry-faults")?);
                    }
                    "--checkpoint" => {
                        let Some(path) = args.get(i + 1) else {
                            return usage("--checkpoint needs a path");
                        };
                        checkpoint = Some(path.clone());
                    }
                    "--trace" => {
                        let Some(path) = args.get(i + 1) else {
                            return usage("--trace needs a path");
                        };
                        trace = Some(path.clone());
                    }
                    "--metrics" => {
                        metrics = true;
                        i += 1;
                        continue;
                    }
                    "--viable-engine" => viable_engine = parse_engine(&args, i)?,
                    "--fault-plan" => {
                        let Some(spec) = args.get(i + 1) else {
                            return usage("--fault-plan needs a plan spec");
                        };
                        fault_plan = Some(spec.clone());
                    }
                    other => return usage(format!("solve: unknown flag `{other}`")),
                }
                i += 2;
            }
            Ok(Command::Solve {
                file,
                query,
                k,
                max_iters,
                jobs,
                meta_jobs,
                deadline_ms,
                escalate,
                mem_budget,
                pool_budget,
                retry_faults,
                checkpoint,
                trace,
                metrics,
                viable_engine,
                fault_plan,
            })
        }
        Some("serve") => {
            let Some(file) = args.get(1).cloned() else {
                return usage("serve: missing <file>");
            };
            let mut socket = None;
            let mut journal = None;
            let mut jobs = default_jobs();
            let mut meta_jobs = default_meta_jobs();
            let mut thread_cap = None;
            let mut deadline_ms = None;
            let mut retry_faults = None;
            let mut k = 5usize;
            let mut max_iters = 100usize;
            let mut trace = None;
            let mut allow_inject = false;
            let mut viable_engine = default_viable_engine();
            let mut fault_plan = None;
            let mut watchdog_ms = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--socket" => {
                        let Some(path) = args.get(i + 1) else {
                            return usage("--socket needs a path");
                        };
                        socket = Some(path.clone());
                    }
                    "--journal" => {
                        let Some(path) = args.get(i + 1) else {
                            return usage("--journal needs a path");
                        };
                        journal = Some(path.clone());
                    }
                    "--jobs" => jobs = parse_num::<usize>(&args, i, "--jobs")?.max(1),
                    "--meta-jobs" => {
                        meta_jobs = parse_num::<usize>(&args, i, "--meta-jobs")?.max(1);
                    }
                    "--thread-cap" => {
                        thread_cap = Some(parse_num::<usize>(&args, i, "--thread-cap")?.max(1));
                    }
                    "--deadline" => deadline_ms = Some(parse_num(&args, i, "--deadline")?),
                    "--retry-faults" => {
                        retry_faults = Some(parse_num(&args, i, "--retry-faults")?);
                    }
                    "--k" => k = parse_num(&args, i, "--k")?,
                    "--max-iters" => max_iters = parse_num(&args, i, "--max-iters")?,
                    "--trace" => {
                        let Some(path) = args.get(i + 1) else {
                            return usage("--trace needs a path");
                        };
                        trace = Some(path.clone());
                    }
                    "--allow-inject" => {
                        allow_inject = true;
                        i += 1;
                        continue;
                    }
                    "--viable-engine" => viable_engine = parse_engine(&args, i)?,
                    "--fault-plan" => {
                        let Some(spec) = args.get(i + 1) else {
                            return usage("--fault-plan needs a plan spec");
                        };
                        fault_plan = Some(spec.clone());
                    }
                    "--watchdog-ms" => {
                        watchdog_ms = Some(parse_num::<u64>(&args, i, "--watchdog-ms")?.max(1));
                    }
                    other => return usage(format!("serve: unknown flag `{other}`")),
                }
                i += 2;
            }
            Ok(Command::Serve {
                file,
                socket,
                journal,
                jobs,
                meta_jobs,
                thread_cap,
                deadline_ms,
                retry_faults,
                k,
                max_iters,
                trace,
                allow_inject,
                viable_engine,
                fault_plan,
                watchdog_ms,
            })
        }
        Some("request") => match (args.get(1), args.get(2)) {
            (Some(socket), Some(line)) => {
                Ok(Command::Request { socket: socket.clone(), line: line.clone() })
            }
            _ => usage("request: needs <socket> <json-line>"),
        },
        Some("help") | None => Ok(Command::Help),
        Some(other) => usage(format!("unknown command `{other}`")),
    }
}

/// Executes a command against source text, returning the report.
///
/// File access for the *input program* happens in `main`; this function is
/// pure given the source — except for `--checkpoint`, which by design
/// reads and writes its path.
///
/// # Errors
///
/// [`CliError::Input`] for bad programs or unmatched query labels;
/// [`CliError::Checkpoint`] for unusable checkpoint files.
pub fn run_on_source(cmd: &Command, source: &str) -> Result<String, CliError> {
    match cmd {
        Command::Check { .. } => check_report(source),
        Command::Queries { .. } => queries_report(source),
        Command::Solve {
            query,
            k,
            max_iters,
            jobs,
            meta_jobs,
            deadline_ms,
            escalate,
            mem_budget,
            pool_budget,
            retry_faults,
            checkpoint,
            trace,
            metrics,
            viable_engine,
            fault_plan,
            ..
        } => {
            arm_fault_plane(fault_plan.as_deref())?;
            let opts = SolveOpts {
                label: query.as_deref(),
                k: *k,
                max_iters: *max_iters,
                jobs: *jobs,
                meta_jobs: *meta_jobs,
                deadline_ms: *deadline_ms,
                escalate: *escalate,
                mem_budget: *mem_budget,
                pool_budget: *pool_budget,
                retry_faults: *retry_faults,
                checkpoint: checkpoint.as_deref(),
                trace: trace.as_deref(),
                metrics: *metrics,
                viable_engine: *viable_engine,
            };
            let report = solve_report(source, &opts);
            dump_fault_hits();
            report
        }
        Command::Serve { .. } => run_serve(cmd, source),
        Command::Request { socket, line } => {
            pda_serve::request_line(std::path::Path::new(socket), line)
                .map(|r| format!("{r}\n"))
                .map_err(|e| CliError::Input(e.to_string()))
        }
        Command::Gen { name } => {
            let cfg = pda_suite::suite()
                .into_iter()
                .find(|c| c.name == *name)
                .ok_or_else(|| CliError::Input(format!("unknown benchmark `{name}`")))?;
            Ok(pda_suite::generate_source(&cfg))
        }
        Command::Help => Ok(USAGE.to_string()),
    }
}

fn load(source: &str) -> Result<pda_lang::Program, CliError> {
    pda_lang::parse_program(source).map_err(|e| CliError::Input(e.to_string()))
}

/// With the fault plane armed, prints the per-point hit counts the run
/// accumulated to stderr — the `record` plan's output, and the table a
/// plan author reads to pick `point@hit` ordinals for a real plan.
fn dump_fault_hits() {
    if !pda_util::faultplane::armed() {
        return;
    }
    let mut hits = pda_util::faultplane::hits();
    hits.sort();
    eprintln!("fault plane: {} point(s) crossed", hits.len());
    for (point, count) in hits {
        eprintln!("fault plane:   {point} x{count}");
    }
}

/// Arms the global fault-injection plane: an explicit `--fault-plan`
/// wins; otherwise `PDA_FAULT_PLAN` from the environment is consulted;
/// with neither, the plane is left untouched (zero-cost disabled).
fn arm_fault_plane(flag: Option<&str>) -> Result<(), CliError> {
    match flag {
        Some(spec) => pda_util::faultplane::install(spec)
            .map_err(|e| CliError::Usage(format!("--fault-plan: {e}"))),
        None => pda_util::faultplane::install_from_env()
            .map(|_| ())
            .map_err(|e| CliError::Usage(format!("PDA_FAULT_PLAN: {e}"))),
    }
}

fn check_report(source: &str) -> Result<String, CliError> {
    let program = load(source)?;
    let violations = pda_lang::validate::check(&program);
    let pa = PointsTo::analyze(&program);
    let reach = Reachability::compute(&program, &pa);
    let mut out = String::new();
    out!(out, "classes:   {}", program.classes.len());
    out!(out, "methods:   {} ({} reachable)", program.methods.len(), reach.count());
    out!(out, "variables: {}", program.vars.len());
    out!(out, "sites:     {}", program.sites.len());
    out!(out, "queries:   {}", program.queries.len());
    out!(
        out,
        "abstraction families: 2^{} (type-state), 2^{} (thread-escape)",
        program.vars.len(),
        program.sites.len()
    );
    if violations.is_empty() {
        out!(out, "IR: well-formed");
        Ok(out)
    } else {
        for v in &violations {
            out!(out, "violation: {v}");
        }
        Err(CliError::Input(out))
    }
}

fn queries_report(source: &str) -> Result<String, CliError> {
    let program = load(source)?;
    let mut out = String::new();
    for (_, q) in program.queries.iter_enumerated() {
        let line = program.points[q.point].line;
        match &q.kind {
            pda_lang::QueryKind::Local { var } => {
                out!(out, "{}: local {} (line {line})", q.label, program.var_name(*var));
            }
            pda_lang::QueryKind::State { var, allowed } => {
                let names: Vec<&str> =
                    allowed.iter().map(|&n| program.names.resolve(n)).collect();
                out!(
                    out,
                    "{}: state {} in {{{}}} (line {line})",
                    q.label,
                    program.var_name(*var),
                    names.join(", ")
                );
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no queries)\n");
    }
    Ok(out)
}

struct SolveOpts<'a> {
    label: Option<&'a str>,
    k: usize,
    max_iters: usize,
    jobs: usize,
    meta_jobs: usize,
    deadline_ms: Option<u64>,
    escalate: Option<u32>,
    mem_budget: Option<u64>,
    pool_budget: Option<u64>,
    retry_faults: Option<u32>,
    checkpoint: Option<&'a str>,
    trace: Option<&'a str>,
    metrics: bool,
    viable_engine: ViableEngine,
}

/// Runs the analysis daemon until drained; the returned report is the
/// exit summary (the daemon itself writes protocol/status lines).
///
/// Resident queries are the program's thread-escape (`local`) queries in
/// declaration order, matching `solve`'s batch numbering; verdicts are
/// identical to the batch driver's.
fn run_serve(cmd: &Command, source: &str) -> Result<String, CliError> {
    let Command::Serve {
        socket,
        journal,
        jobs,
        meta_jobs,
        thread_cap,
        deadline_ms,
        retry_faults,
        k,
        max_iters,
        trace,
        allow_inject,
        viable_engine,
        fault_plan,
        watchdog_ms,
        ..
    } = cmd
    else {
        unreachable!("dispatched on Command::Serve");
    };
    arm_fault_plane(fault_plan.as_deref())?;
    let program = load(source)?;
    let pa = PointsTo::analyze(&program);
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
    let client = EscapeClient::new(&program);
    let (labels, queries): (Vec<String>, Vec<_>) = program
        .queries
        .iter_enumerated()
        .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
        .map(|(qid, d)| (d.label.clone(), client.local_query(&program, qid)))
        .unzip();
    if queries.is_empty() {
        return Err(CliError::Input("program has no thread-escape queries to serve".into()));
    }
    let config = pda_serve::ServeConfig {
        tracer: TracerConfig {
            beam: BeamConfig::with_k(*k),
            max_iters: *max_iters,
            meta_jobs: *meta_jobs,
            viable_engine: *viable_engine,
            ..TracerConfig::default()
        },
        jobs: *jobs,
        thread_cap: *thread_cap,
        deadline_ms: *deadline_ms,
        // Daemon requests run under per-request deadlines, so deadline
        // hits are retried too (each retry gets a fresh budget).
        retry: retry_faults.map(|n| pda_tracer::RetryPolicy {
            retry_deadline: true,
            ..pda_tracer::RetryPolicy::deterministic(n)
        }),
        allow_inject: *allow_inject,
        watchdog_ms: *watchdog_ms,
    };
    let options = pda_serve::DaemonOptions {
        socket: socket.as_ref().map(std::path::PathBuf::from),
        journal: journal.as_ref().map(std::path::PathBuf::from),
        trace: trace.as_ref().map(std::path::PathBuf::from),
    };
    let report =
        pda_serve::run_daemon(&program, &callees, &client, queries, labels, config, &options)
            .map_err(|e| match e {
                pda_serve::ServeError::Journal(m) => CliError::Checkpoint(m),
                pda_serve::ServeError::Io(m) => CliError::Input(m),
            })?;
    Ok(format!(
        "serve: drained cleanly — served={} faults={} quarantines={} watchdog={} resumed={}\n",
        report.served, report.faults, report.quarantines, report.watchdog_fired, report.resumed
    ))
}

fn solve_report(source: &str, opts: &SolveOpts<'_>) -> Result<String, CliError> {
    let program = load(source)?;
    let pa = PointsTo::analyze(&program);
    let config = TracerConfig {
        beam: BeamConfig::with_k(opts.k),
        max_iters: opts.max_iters,
        timeout: opts.deadline_ms.map(std::time::Duration::from_millis),
        escalation: opts
            .escalate
            .map_or_else(Escalation::default, |retries| Escalation { retries, ..Escalation::standard() }),
        mem_budget: opts.mem_budget,
        meta_jobs: opts.meta_jobs,
        viable_engine: opts.viable_engine,
        ..TracerConfig::default()
    };
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();

    // Observability: `--trace` streams structured JSONL events, and
    // `--metrics` turns on span wall-clock measurement for the footer
    // table. Either one forces the batched driver below so thread-escape
    // queries get traced uniformly.
    let sink: Option<FileSink> = match opts.trace {
        Some(path) => Some(
            FileSink::create(std::path::Path::new(path))
                .map_err(|e| CliError::Input(format!("trace: {e}")))?,
        ),
        None => None,
    };
    let sink_ref: Option<&dyn TraceSink> = sink.as_ref().map(|s| s as &dyn TraceSink);
    let observing = sink.is_some() || opts.metrics;
    // Span/counter totals from queries solved outside the batch driver
    // (type-state queries), merged into the `--metrics` table at the end.
    let mut extra_obs = ObsRegistry::default();

    // Thread-escape queries (which share one client) run upfront as one
    // batch on the worker pool with a shared forward-run cache whenever
    // batching buys something: parallelism, checkpoint/resume (the
    // checkpoint streams per-query batch results), or observability.
    // Per-query verdicts are identical to the sequential driver and get
    // rendered below in declaration order.
    let mut batched: Vec<(pda_lang::QueryId, pda_tracer::QueryResult<pda_util::BitSet>)> =
        Vec::new();
    let mut batch_stats = None;
    if opts.jobs > 1 || opts.checkpoint.is_some() || opts.retry_faults.is_some() || observing {
        let client = EscapeClient::new(&program);
        let local: Vec<pda_lang::QueryId> = program
            .queries
            .iter_enumerated()
            .filter(|(_, d)| opts.label.is_none_or(|want| d.label == want))
            .filter(|(_, d)| matches!(d.kind, pda_lang::QueryKind::Local { .. }))
            .map(|(qid, _)| qid)
            .collect();
        let queries: Vec<_> = local.iter().map(|&qid| client.local_query(&program, qid)).collect();
        if !queries.is_empty() {
            let batch = BatchConfig {
                tracer: config.clone(),
                jobs: opts.jobs,
                timed: opts.metrics,
                pool_budget: opts.pool_budget,
                retry: opts.retry_faults.map(pda_tracer::RetryPolicy::deterministic),
                ..BatchConfig::default()
            };
            let (results, stats) = match opts.checkpoint {
                Some(path) => solve_queries_batch_checkpointed_traced(
                    &program,
                    &callees,
                    &client,
                    &queries,
                    &batch,
                    std::path::Path::new(path),
                    sink_ref,
                )
                .map_err(|e| CliError::Checkpoint(e.to_string()))?,
                None => solve_queries_batch_traced(
                    &program,
                    &callees,
                    &client,
                    &queries,
                    &batch,
                    sink_ref,
                ),
            };
            batched = local.into_iter().zip(results).collect();
            batch_stats = Some(stats);
        }
    }
    // Type-state queries below continue the trace's query numbering after
    // the batch.
    let mut next_query = batched.len() as u64;

    let mut out = String::new();
    let mut matched = false;
    for (qid, decl) in program.queries.iter_enumerated() {
        if let Some(want) = opts.label {
            if decl.label != want {
                continue;
            }
        }
        matched = true;
        match &decl.kind {
            pda_lang::QueryKind::Local { .. } => {
                let r = match batched.iter().position(|(id, _)| *id == qid) {
                    Some(i) => batched.swap_remove(i).1,
                    None => {
                        let client = EscapeClient::new(&program);
                        let query = client.local_query(&program, qid);
                        solve_query(&program, &callees, &client, &query, &config)
                    }
                };
                render(&mut out, &decl.label, "thread-escape", &r, |i| {
                    format!("site {}", program.site_label(pda_lang::SiteId::from_usize(i)))
                });
            }
            pda_lang::QueryKind::State { var, .. } => {
                let sites: Vec<pda_lang::SiteId> = pa
                    .pts_var(*var)
                    .iter()
                    .map(pda_lang::SiteId::from_usize)
                    .collect();
                if sites.is_empty() {
                    out!(out, "{}: vacuous (receiver points nowhere)", decl.label);
                }
                for site in sites {
                    let Some(client) =
                        TypestateClient::for_declared_automaton(&program, &pa, site)
                    else {
                        out!(
                            out,
                            "{}: site {} has no typestate declaration",
                            decl.label,
                            program.site_label(site)
                        );
                        continue;
                    };
                    let query = client.state_query(qid);
                    let r = if observing {
                        let mut qobs = QueryObs::new(next_query, sink.is_some(), opts.metrics);
                        let r = solve_query_observed(
                            &program,
                            &callees,
                            &client,
                            &query,
                            &config,
                            Deadline::NEVER,
                            &mut qobs,
                        );
                        if let Some(s) = &sink {
                            for ev in &qobs.events {
                                s.emit(ev);
                            }
                            s.emit(&Event::QueryResolved {
                                query: next_query,
                                outcome: outcome_tag(&r.outcome).to_string(),
                                iterations: r.iterations as u64,
                            });
                        }
                        extra_obs.merge(&qobs.reg);
                        next_query += 1;
                        r
                    } else {
                        solve_query(&program, &callees, &client, &query, &config)
                    };
                    let tag = format!("{} @ {}", decl.label, program.site_label(site));
                    render(&mut out, &tag, "type-state", &r, |i| {
                        program.var_name(pda_lang::VarId(i as u32)).to_string()
                    });
                }
            }
        }
    }
    if !matched {
        return Err(CliError::Input(match opts.label {
            Some(l) => format!("no query labeled `{l}`"),
            None => "program has no queries".to_string(),
        }));
    }
    if let Some(stats) = &batch_stats {
        out!(out, "batch: {stats}");
    }
    if opts.metrics {
        let mut reg = batch_stats.map(|s| s.to_obs()).unwrap_or_default();
        reg.merge(&extra_obs);
        out!(out, "{}", reg.render_spans());
    }
    if let Some(s) = &sink {
        s.flush();
    }
    Ok(out)
}

fn render(
    out: &mut String,
    label: &str,
    analysis: &str,
    r: &pda_tracer::QueryResult<pda_util::BitSet>,
    atom_name: impl Fn(usize) -> String,
) {
    match &r.outcome {
        Outcome::Proven { param, cost } => {
            let parts: Vec<String> = param.iter().map(atom_name).collect();
            out!(
                out,
                "{label} [{analysis}]: PROVEN, optimum |p| = {cost} {{{}}} ({} iterations)",
                parts.join(", "),
                r.iterations
            );
        }
        Outcome::Impossible => {
            out!(
                out,
                "{label} [{analysis}]: IMPOSSIBLE for every abstraction ({} iterations)",
                r.iterations
            );
        }
        Outcome::Unresolved(u) => {
            out!(out, "{label} [{analysis}]: unresolved ({u})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        global g;
        class File { fn open(); fn close(); }
        typestate File {
            init closed;
            closed -> open -> opened;
            opened -> close -> closed;
            opened -> open -> error;
            closed -> close -> error;
        }
        class Box { field item; }
        fn main() {
            var f, b, x;
            f = new File;
            f.open();
            f.close();
            b = new Box;
            x = new Box;
            b.item = x;
            query protocol: state f in { closed };
            query localx: local x;
            if (*) { g = b; }
        }
    "#;

    fn solve_cmd(query: Option<&str>, jobs: usize) -> Command {
        solve_cmd_full(query, jobs, None, None)
    }

    fn solve_cmd_full(
        query: Option<&str>,
        jobs: usize,
        deadline_ms: Option<u64>,
        checkpoint: Option<String>,
    ) -> Command {
        Command::Solve {
            file: String::new(),
            query: query.map(String::from),
            k: 5,
            max_iters: 50,
            jobs,
            meta_jobs: 1,
            deadline_ms,
            escalate: None,
            mem_budget: None,
            pool_budget: None,
            retry_faults: None,
            checkpoint,
            trace: None,
            metrics: false,
            viable_engine: ViableEngine::Dpll,
            fault_plan: None,
        }
    }

    #[test]
    fn parse_args_all_commands() {
        let a = |xs: &[&str]| parse_args(xs.iter().map(|s| s.to_string()));
        assert_eq!(a(&["check", "f.jay"]).unwrap(), Command::Check { file: "f.jay".into() });
        assert_eq!(a(&["queries", "f.jay"]).unwrap(), Command::Queries { file: "f.jay".into() });
        assert_eq!(a(&["gen", "tsp"]).unwrap(), Command::Gen { name: "tsp".into() });
        assert_eq!(
            a(&["solve", "f.jay", "--query", "q", "--k", "3", "--max-iters", "9"]).unwrap(),
            Command::Solve {
                file: "f.jay".into(),
                query: Some("q".into()),
                k: 3,
                max_iters: 9,
                jobs: default_jobs(),
                meta_jobs: default_meta_jobs(),
                deadline_ms: None,
                escalate: None,
                mem_budget: None,
                pool_budget: None,
                retry_faults: None,
                checkpoint: None,
                trace: None,
                metrics: false,
                viable_engine: ViableEngine::Dpll,
                fault_plan: None,
            }
        );
        assert_eq!(
            a(&[
                "solve", "f.jay", "--jobs", "4", "--deadline", "250", "--escalate", "2",
                "--mem-budget", "64k", "--pool-budget", "2m", "--retry-faults", "3",
                "--checkpoint", "state.jsonl", "--metrics", "--trace", "out.jsonl",
                "--viable-engine", "bdd", "--fault-plan", "journal.write@2=ioerr:perm"
            ])
            .unwrap(),
            Command::Solve {
                file: "f.jay".into(),
                query: None,
                k: 5,
                max_iters: 100,
                jobs: 4,
                meta_jobs: default_meta_jobs(),
                deadline_ms: Some(250),
                escalate: Some(2),
                mem_budget: Some(64 << 10),
                pool_budget: Some(2 << 20),
                retry_faults: Some(3),
                checkpoint: Some("state.jsonl".into()),
                trace: Some("out.jsonl".into()),
                metrics: true,
                viable_engine: ViableEngine::Bdd,
                fault_plan: Some("journal.write@2=ioerr:perm".into()),
            }
        );
        assert_eq!(
            a(&[
                "serve", "f.jay", "--socket", "/tmp/pda.sock", "--journal", "j.jsonl",
                "--jobs", "2", "--thread-cap", "3", "--deadline", "500", "--retry-faults", "1",
                "--allow-inject", "--trace", "t.jsonl", "--viable-engine", "bdd",
                "--watchdog-ms", "200", "--fault-plan", "record"
            ])
            .unwrap(),
            Command::Serve {
                file: "f.jay".into(),
                socket: Some("/tmp/pda.sock".into()),
                journal: Some("j.jsonl".into()),
                jobs: 2,
                meta_jobs: default_meta_jobs(),
                thread_cap: Some(3),
                deadline_ms: Some(500),
                retry_faults: Some(1),
                k: 5,
                max_iters: 100,
                trace: Some("t.jsonl".into()),
                allow_inject: true,
                viable_engine: ViableEngine::Bdd,
                fault_plan: Some("record".into()),
                watchdog_ms: Some(200),
            }
        );
        assert!(a(&["solve", "f", "--viable-engine", "cnf"]).is_err());
        assert!(a(&["solve", "f", "--viable-engine"]).is_err());
        assert!(a(&["serve", "f", "--thread-cap", "many"]).is_err());
        assert!(a(&["serve", "f", "--watchdog-ms", "soon"]).is_err());
        assert!(a(&["serve", "f", "--fault-plan"]).is_err());
        assert!(a(&["solve", "f", "--fault-plan"]).is_err());
        assert_eq!(
            a(&["request", "/tmp/pda.sock", "{\"op\":\"health\"}"]).unwrap(),
            Command::Request {
                socket: "/tmp/pda.sock".into(),
                line: "{\"op\":\"health\"}".into(),
            }
        );
        assert!(a(&["serve"]).is_err());
        assert!(a(&["serve", "f.jay", "--socket"]).is_err());
        assert!(a(&["serve", "f.jay", "--retry-faults", "NaN"]).is_err());
        assert!(a(&["request", "/tmp/pda.sock"]).is_err());
        assert!(a(&["solve", "f", "--retry-faults", "many"]).is_err());
        // --jobs 0 is clamped to the sequential driver.
        assert!(matches!(
            a(&["solve", "f.jay", "--jobs", "0"]).unwrap(),
            Command::Solve { jobs: 1, .. }
        ));
        assert_eq!(a(&[]).unwrap(), Command::Help);
        assert!(a(&["bogus"]).is_err());
        assert!(a(&["solve"]).is_err());
        assert!(a(&["solve", "f", "--k", "NaN"]).is_err());
        assert!(a(&["solve", "f", "--jobs", "many"]).is_err());
        assert!(a(&["solve", "f", "--deadline", "soon"]).is_err());
        assert!(a(&["solve", "f", "--mem-budget", "lots"]).is_err());
        assert!(a(&["solve", "f", "--pool-budget"]).is_err());
        assert!(a(&["solve", "f", "--checkpoint"]).is_err());
        assert!(a(&["solve", "f", "--trace"]).is_err());
        // --metrics is a plain flag: the next token is parsed normally.
        assert!(matches!(
            a(&["solve", "f", "--metrics", "--jobs", "2"]).unwrap(),
            Command::Solve { metrics: true, jobs: 2, .. }
        ));
    }

    #[test]
    fn usage_errors_exit_2_others_exit_1() {
        let a = |xs: &[&str]| parse_args(xs.iter().map(|s| s.to_string()));
        let e = a(&["bogus"]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(matches!(e, CliError::Usage(_)));
        let e = run_on_source(&Command::Gen { name: "nope".into() }, "").unwrap_err();
        assert_eq!(e.exit_code(), 1);
        let e = run_on_source(&Command::Check { file: String::new() }, "fn main( {").unwrap_err();
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn check_reports_stats() {
        let report = run_on_source(&Command::Check { file: String::new() }, SRC).unwrap();
        assert!(report.contains("classes:   2"));
        assert!(report.contains("queries:   2"));
        assert!(report.contains("well-formed"));
    }

    #[test]
    fn queries_lists_both_kinds() {
        let report = run_on_source(&Command::Queries { file: String::new() }, SRC).unwrap();
        assert!(report.contains("protocol: state f in {closed}"));
        assert!(report.contains("localx: local x"));
    }

    #[test]
    fn solve_resolves_both_queries() {
        let report = run_on_source(&solve_cmd(None, 1), SRC).unwrap();
        assert!(report.contains("protocol @ File#0 [type-state]: PROVEN"), "{report}");
        assert!(report.contains("localx [thread-escape]: PROVEN"), "{report}");
    }

    #[test]
    fn solve_single_query_and_missing_label() {
        let report = run_on_source(&solve_cmd(Some("localx"), 1), SRC).unwrap();
        assert!(!report.contains("protocol"));
        assert!(run_on_source(&solve_cmd(Some("nope"), 1), SRC).is_err());
    }

    #[test]
    fn parallel_solve_matches_sequential_verdicts() {
        let seq_report = run_on_source(&solve_cmd(None, 1), SRC).unwrap();
        let par_report = run_on_source(&solve_cmd(None, 4), SRC).unwrap();
        // Same per-query lines; the parallel run appends batch + meta
        // stats lines.
        let verdicts = |r: &str| {
            r.lines()
                .filter(|l| !l.starts_with("batch:") && !l.starts_with("meta:"))
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&seq_report), verdicts(&par_report));
        assert!(par_report.contains("batch: 1 queries, jobs="), "{par_report}");
        assert!(par_report.contains("meta: "), "{par_report}");
        assert!(!seq_report.contains("batch:"));
    }

    #[test]
    fn retry_faults_engages_the_batch_driver_and_footer() {
        // `--retry-faults` routes thread-escape queries through the
        // batched driver even at jobs=1, so the retry ladder (and its
        // `retries=` footer counter) is in effect; a healthy program
        // consumes zero retries.
        let mut cmd = solve_cmd(Some("localx"), 1);
        if let Command::Solve { retry_faults, .. } = &mut cmd {
            *retry_faults = Some(2);
        }
        let report = run_on_source(&cmd, SRC).unwrap();
        assert!(report.contains("localx [thread-escape]: PROVEN"), "{report}");
        assert!(report.contains("batch: 1 queries"), "{report}");
        assert!(report.contains("retries=0"), "{report}");
    }

    #[test]
    fn zero_deadline_reports_deadline_exceeded() {
        let cmd = solve_cmd_full(Some("localx"), 1, Some(0), None);
        let report = run_on_source(&cmd, SRC).unwrap();
        assert!(report.contains("unresolved (wall-clock deadline exceeded)"), "{report}");
    }

    #[test]
    fn tiny_mem_budget_still_proves_soundly() {
        // A 1-byte budget keeps the governor under pressure at every
        // iteration boundary, but the degradation ladder is sound
        // (Theorem 3): a query that proves quickly still proves, with the
        // same verdict as the unbudgeted run.
        let mut cmd = solve_cmd(Some("localx"), 1);
        if let Command::Solve { mem_budget, .. } = &mut cmd {
            *mem_budget = Some(1);
        }
        let report = run_on_source(&cmd, SRC).unwrap();
        assert!(report.contains("localx [thread-escape]: PROVEN"), "{report}");
    }

    #[test]
    fn checkpoint_resumes_and_skips_finished_queries() {
        let path = std::env::temp_dir()
            .join(format!("pda-cli-ckpt-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let cmd = solve_cmd_full(
            Some("localx"),
            1,
            None,
            Some(path.to_string_lossy().into_owned()),
        );
        let first = run_on_source(&cmd, SRC).unwrap();
        assert!(first.contains("localx [thread-escape]: PROVEN"), "{first}");
        assert!(first.contains("resumed=0"), "{first}");
        // Second run restores the result from the checkpoint.
        let second = run_on_source(&cmd, SRC).unwrap();
        assert!(second.contains("localx [thread-escape]: PROVEN"), "{second}");
        assert!(second.contains("resumed=1"), "{second}");
        // A corrupted header is a typed checkpoint error.
        std::fs::write(&path, "not a checkpoint\n").unwrap();
        let err = run_on_source(&cmd, SRC).unwrap_err();
        assert!(matches!(err, CliError::Checkpoint(_)), "{err:?}");
        assert_eq!(err.exit_code(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_file_parses_and_metrics_table_renders() {
        let path =
            std::env::temp_dir().join(format!("pda-cli-trace-{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let cmd = Command::Solve {
            file: String::new(),
            query: None,
            k: 5,
            max_iters: 50,
            jobs: 1,
            meta_jobs: 1,
            deadline_ms: None,
            escalate: None,
            mem_budget: None,
            pool_budget: None,
            retry_faults: None,
            checkpoint: None,
            trace: Some(path.to_string_lossy().into_owned()),
            metrics: true,
            viable_engine: ViableEngine::Dpll,
            fault_plan: None,
        };
        let report = run_on_source(&cmd, SRC).unwrap();
        assert!(report.contains("localx [thread-escape]: PROVEN"), "{report}");
        assert!(report.contains("batch: 1 queries"), "{report}");
        assert!(report.contains("span solver"), "{report}");
        assert!(report.contains("solver nodes: "), "{report}");
        let text = std::fs::read_to_string(&path).unwrap();
        let events = pda_util::obs::parse_trace(&text).unwrap();
        assert!(
            events.iter().any(|e| matches!(e, Event::IterationStart { .. })),
            "trace should contain iteration events"
        );
        // One query_resolved per query instance, numbered batch-first:
        // the batched thread-escape query, then the type-state site.
        let resolved: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::QueryResolved { query, .. } => Some(*query),
                _ => None,
            })
            .collect();
        assert_eq!(resolved, vec![0, 1], "{events:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_produces_named_benchmark() {
        let out = run_on_source(&Command::Gen { name: "tsp".into() }, "").unwrap();
        assert!(out.contains("benchmark `tsp`"));
        assert!(run_on_source(&Command::Gen { name: "nope".into() }, "").is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = run_on_source(&Command::Check { file: String::new() }, "fn main( {").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
