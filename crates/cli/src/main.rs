//! The `pda` command-line tool. See [`pda_cli`] for the commands.

use pda_cli::{parse_args, run_on_source, Command, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(e.exit_code());
        }
    };
    let source = match &cmd {
        Command::Check { file }
        | Command::Queries { file }
        | Command::Solve { file, .. }
        | Command::Serve { file, .. } => match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Command::Gen { .. } | Command::Request { .. } | Command::Help => String::new(),
    };
    match run_on_source(&cmd, &source) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
