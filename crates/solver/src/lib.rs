//! Minimum-cost boolean model finding for abstraction selection.
//!
//! TRACER (Algorithm 1 of the paper) maintains a *viable set* of
//! abstractions: the initial family `P` minus, per CEGAR iteration, the set
//! of abstractions the backward meta-analysis proved unviable. Each
//! unviable set arrives as a boolean formula `φᵢ` over *parameter atoms*
//! ("variable `x` is tracked", "site `h` maps to `L`"), so the viable set
//! is the models of `⋀ᵢ ¬φᵢ`, and the paper's "choose a minimum `p`"
//! (line 8) is exactly a **minimum-cost model** query — costs count
//! tracked variables resp. `L`-sites, matching the paper's cost preorders
//! `p ⪯ p' ⟺ |p| ≤ |p'|`.
//!
//! This crate implements that query: [`PFormula`] (formulas over atoms),
//! Tseitin conversion to CNF, and a DPLL branch-and-bound search
//! ([`MinCostSolver`]) that returns a cheapest model or reports
//! unsatisfiability — the paper's *impossibility* outcome.
//!
//! # Example
//!
//! ```
//! use pda_solver::{MinCostSolver, PFormula};
//! // Viable abstractions must track atom 0 or atom 1, and not atom 2.
//! let mut solver = MinCostSolver::new(3, vec![1, 1, 1]);
//! solver.require(PFormula::or(vec![PFormula::lit(0, true), PFormula::lit(1, true)]));
//! solver.require(PFormula::lit(2, false));
//! let model = solver.solve().unwrap();
//! assert_eq!(model.cost, 1);
//! assert!(!model.assignment[2]);
//! ```

#![warn(missing_docs)]

mod bdd;
mod cnf;
mod dpll;

pub use bdd::Bdd;
pub use dpll::{MinCostSolver, Model};

/// A boolean formula over parameter atoms `0..n`.
///
/// Constructed by the backward meta-analysis when it restricts its final
/// trace-entry formula to the initial abstract state, leaving only
/// parameter primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PFormula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atom or its negation.
    Lit {
        /// Atom index.
        atom: usize,
        /// `true` for the positive literal.
        pos: bool,
    },
    /// Negation.
    Not(Box<PFormula>),
    /// Conjunction (true if empty).
    And(Vec<PFormula>),
    /// Disjunction (false if empty).
    Or(Vec<PFormula>),
}

impl PFormula {
    /// A literal.
    pub fn lit(atom: usize, pos: bool) -> PFormula {
        PFormula::Lit { atom, pos }
    }

    /// Conjunction, flattening trivial cases.
    pub fn and(mut parts: Vec<PFormula>) -> PFormula {
        parts.retain(|p| *p != PFormula::True);
        if parts.contains(&PFormula::False) {
            return PFormula::False;
        }
        match parts.len() {
            0 => PFormula::True,
            1 => parts.pop().unwrap(),
            _ => PFormula::And(parts),
        }
    }

    /// Disjunction, flattening trivial cases.
    pub fn or(mut parts: Vec<PFormula>) -> PFormula {
        parts.retain(|p| *p != PFormula::False);
        if parts.contains(&PFormula::True) {
            return PFormula::True;
        }
        match parts.len() {
            0 => PFormula::False,
            1 => parts.pop().unwrap(),
            _ => PFormula::Or(parts),
        }
    }

    /// Negation, collapsing double negation and constants.
    // An associated constructor like `and`/`or`, not a `!` overload on
    // `self` — the by-value signature is the point.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PFormula) -> PFormula {
        match f {
            PFormula::True => PFormula::False,
            PFormula::False => PFormula::True,
            PFormula::Lit { atom, pos } => PFormula::Lit { atom, pos: !pos },
            PFormula::Not(inner) => *inner,
            other => PFormula::Not(Box::new(other)),
        }
    }

    /// Evaluates under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            PFormula::True => true,
            PFormula::False => false,
            PFormula::Lit { atom, pos } => assignment[*atom] == *pos,
            PFormula::Not(f) => !f.eval(assignment),
            PFormula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            PFormula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
        }
    }

    /// Collects the atoms mentioned (sorted, deduplicated).
    pub fn atoms(&self) -> Vec<usize> {
        fn go(f: &PFormula, out: &mut Vec<usize>) {
            match f {
                PFormula::True | PFormula::False => {}
                PFormula::Lit { atom, .. } => out.push(*atom),
                PFormula::Not(f) => go(f, out),
                PFormula::And(fs) | PFormula::Or(fs) => fs.iter().for_each(|f| go(f, out)),
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_simplify() {
        assert_eq!(PFormula::and(vec![]), PFormula::True);
        assert_eq!(PFormula::or(vec![]), PFormula::False);
        assert_eq!(
            PFormula::and(vec![PFormula::True, PFormula::lit(0, true)]),
            PFormula::lit(0, true)
        );
        assert_eq!(
            PFormula::or(vec![PFormula::True, PFormula::lit(0, true)]),
            PFormula::True
        );
        assert_eq!(PFormula::not(PFormula::lit(1, true)), PFormula::lit(1, false));
        assert_eq!(
            PFormula::not(PFormula::not(PFormula::And(vec![
                PFormula::lit(0, true),
                PFormula::lit(1, true)
            ]))),
            PFormula::And(vec![PFormula::lit(0, true), PFormula::lit(1, true)])
        );
    }

    #[test]
    fn eval_matches_semantics() {
        let f = PFormula::or(vec![
            PFormula::and(vec![PFormula::lit(0, true), PFormula::lit(1, false)]),
            PFormula::lit(2, true),
        ]);
        assert!(f.eval(&[true, false, false]));
        assert!(!f.eval(&[true, true, false]));
        assert!(f.eval(&[false, true, true]));
    }

    #[test]
    fn atoms_sorted_unique() {
        let f = PFormula::and(vec![
            PFormula::lit(3, true),
            PFormula::or(vec![PFormula::lit(1, false), PFormula::lit(3, true)]),
        ]);
        assert_eq!(f.atoms(), vec![1, 3]);
    }
}
