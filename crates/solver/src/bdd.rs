//! Reduced ordered BDD over parameter atoms with min-cost model extraction.
//!
//! The viable set `⋀ᵢ ¬φᵢ` only ever *shrinks* (the CEGAR loop conjoins a
//! new unviability constraint per iteration), which makes it a natural fit
//! for a resident ROBDD: [`Bdd::conjoin`] folds the next constraint into
//! the existing graph, "impossible" becomes a constant-time root check
//! ([`Bdd::is_false`]), and the minimum-cost model is re-extracted by a
//! weighted shortest-path sweep over the node arena instead of a fresh
//! CNF + branch-and-bound search.
//!
//! Variables are ordered by their dense atom index — the same u32
//! primitive ids the interner hands out — so BDD paths visit atoms in
//! ascending order. The arena is hash-consed and append-only: node ids are
//! never freed or reused, so the apply/restrict caches stay valid across
//! conjoins for the lifetime of the [`Bdd`]; only the cached cost sweep is
//! invalidated when the root moves.
//!
//! Among equal-cost minima [`Bdd::solve`] returns the **canonical** model:
//! the lexicographically least assignment under `Vec<bool>` order (atom 0
//! most significant, `false < true`). Because paths visit atoms in
//! ascending order, preferring the `lo` (false) edge on cost ties and
//! defaulting reduced-out atoms to false is exactly that rule — the same
//! one [`crate::MinCostSolver`] implements, which is what keeps the two
//! viable engines bit-identical on chosen optima.

use crate::dpll::Model;
use crate::PFormula;
use pda_util::fault_point;
use std::collections::HashMap;

/// The ⊥ terminal: no satisfying assignment below this point.
const FALSE: u32 = 0;
/// The ⊤ terminal: every assignment below this point satisfies.
const TRUE: u32 = 1;
/// Sentinel variable index for terminals — orders after every real atom.
const TERM_VAR: u32 = u32::MAX;

/// Cost-sweep infinity: the ⊥ terminal is unreachable at any cost.
const INF: u64 = u64::MAX;

/// Apply-cache operation tags.
const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_NOT: u8 = 2;
const OP_RESTRICT_F: u8 = 3;
const OP_RESTRICT_T: u8 = 4;

/// One decision node: branch on `var`, false edge `lo`, true edge `hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// A reduced ordered BDD holding the current viable-set formula.
///
/// Created once per query via [`Bdd::new`] (root = ⊤, the unconstrained
/// viable set), then narrowed one [`Bdd::conjoin`] at a time. The arena,
/// unique table, and operation caches persist across conjoins; dropping
/// the whole struct is the only deallocation.
#[derive(Debug, Clone)]
pub struct Bdd {
    n_vars: usize,
    costs: Vec<u64>,
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    cache: HashMap<(u8, u32, u32), u32>,
    root: u32,
    /// Min completion cost per node, or `None` after a root change.
    sweep: Option<Vec<u64>>,
}

impl Bdd {
    /// An unconstrained BDD (root ⊤) over `n_vars` atoms with per-atom
    /// true-assignment costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len() != n_vars`.
    pub fn new(n_vars: usize, costs: Vec<u64>) -> Bdd {
        assert_eq!(costs.len(), n_vars, "one cost per atom");
        let terminals = vec![
            Node { var: TERM_VAR, lo: FALSE, hi: FALSE },
            Node { var: TERM_VAR, lo: TRUE, hi: TRUE },
        ];
        Bdd {
            n_vars,
            costs,
            nodes: terminals,
            unique: HashMap::new(),
            cache: HashMap::new(),
            root: TRUE,
            sweep: Some(vec![INF, 0]),
        }
    }

    /// Number of atoms in the universe.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Total nodes in the arena, terminals included. Monotone — the arena
    /// is append-only, so this also bounds live reachable nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Deterministic size estimate for [`pda_util::MemBudget`] charging:
    /// arena + unique table + apply cache + cached sweep, counted as
    /// entries × entry size. Same convention as the interner's
    /// `approx_bytes` — an accounting figure, not allocator truth.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let arena = self.nodes.len().saturating_mul(size_of::<Node>());
        let unique = self
            .unique
            .len()
            .saturating_mul(size_of::<((u32, u32, u32), u32)>());
        let cache = self
            .cache
            .len()
            .saturating_mul(size_of::<((u8, u32, u32), u32)>());
        let sweep = self
            .sweep
            .as_ref()
            .map_or(0, |s| s.len().saturating_mul(size_of::<u64>()));
        arena
            .saturating_add(unique)
            .saturating_add(cache)
            .saturating_add(sweep)
    }

    /// True iff the conjoined constraints are unsatisfiable — the paper's
    /// *impossibility* verdict. Constant time: the root is ⊥.
    pub fn is_false(&self) -> bool {
        self.root == FALSE
    }

    /// Conjoins `f` into the resident formula and invalidates the cached
    /// cost sweep. The arena and operation caches are retained.
    pub fn conjoin(&mut self, f: &PFormula) {
        fault_point("bdd.conjoin");
        let g = self.build(f);
        self.root = self.and(self.root, g);
        self.sweep = None;
    }

    /// Replaces the formula with its restriction `f[var := val]`.
    pub fn restrict_var(&mut self, var: usize, val: bool) {
        self.root = self.restrict(self.root, var as u32, val);
        self.sweep = None;
    }

    /// Replaces the formula with `∃var. f` — true where either
    /// restriction is.
    pub fn exists_var(&mut self, var: usize) {
        let f = self.restrict(self.root, var as u32, false);
        let t = self.restrict(self.root, var as u32, true);
        self.root = self.or(f, t);
        self.sweep = None;
    }

    /// Evaluates the resident formula under a total assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        let mut cur = self.root;
        while cur > TRUE {
            let n = self.nodes[cur as usize];
            cur = if assignment[n.var as usize] { n.hi } else { n.lo };
        }
        cur == TRUE
    }

    /// Minimum-cost satisfying assignment, or `None` when impossible.
    ///
    /// Bottom-up sweep (cached until the next [`Bdd::conjoin`]): each
    /// node's min completion cost is `min(lo, hi + cost[var])`; the model
    /// is read back top-down preferring the `lo` edge on ties, with
    /// reduced-out atoms false — the canonical tie-break.
    pub fn solve(&mut self) -> Option<Model> {
        fault_point("bdd.mincost");
        if self.is_false() {
            return None;
        }
        let sweep = self.sweep.get_or_insert_with(|| {
            // Children are created before parents, so index order is a
            // valid bottom-up order over the whole arena.
            let mut memo = vec![0u64; self.nodes.len()];
            memo[FALSE as usize] = INF;
            for (i, n) in self.nodes.iter().enumerate().skip(2) {
                let via_hi = memo[n.hi as usize].saturating_add(self.costs[n.var as usize]);
                memo[i] = memo[n.lo as usize].min(via_hi);
            }
            memo
        });
        let mut assignment = vec![false; self.n_vars];
        let cost = sweep[self.root as usize];
        debug_assert_ne!(cost, INF, "non-⊥ root must reach ⊤");
        let mut cur = self.root;
        while cur > TRUE {
            let n = self.nodes[cur as usize];
            let via_hi = sweep[n.hi as usize].saturating_add(self.costs[n.var as usize]);
            if sweep[n.lo as usize] <= via_hi {
                cur = n.lo;
            } else {
                assignment[n.var as usize] = true;
                cur = n.hi;
            }
        }
        Some(Model { assignment, cost })
    }

    /// Verifies the reduced-form invariants over the whole arena: ordered
    /// children (`var` strictly increases downward), no redundant tests
    /// (`lo != hi`), and no duplicate `(var, lo, hi)` triples.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_reduced(&self) -> Result<(), String> {
        let mut seen = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate().skip(2) {
            if n.lo == n.hi {
                return Err(format!("node {i} is a redundant test on var {}", n.var));
            }
            for child in [n.lo, n.hi] {
                if child as usize >= i {
                    return Err(format!("node {i} points forward to {child}"));
                }
                let cv = self.nodes[child as usize].var;
                if cv <= n.var {
                    return Err(format!(
                        "node {i} (var {}) has child {child} with var {cv} out of order",
                        n.var
                    ));
                }
            }
            if let Some(prev) = seen.insert((n.var, n.lo, n.hi), i) {
                return Err(format!("nodes {prev} and {i} duplicate ({}, {}, {})", n.var, n.lo, n.hi));
            }
        }
        Ok(())
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("BDD arena overflow");
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    fn build(&mut self, f: &PFormula) -> u32 {
        match f {
            PFormula::True => TRUE,
            PFormula::False => FALSE,
            PFormula::Lit { atom, pos } => {
                let var = u32::try_from(*atom).expect("atom id fits u32");
                if *pos {
                    self.mk(var, FALSE, TRUE)
                } else {
                    self.mk(var, TRUE, FALSE)
                }
            }
            PFormula::Not(inner) => {
                let g = self.build(inner);
                self.not(g)
            }
            PFormula::And(parts) => {
                let mut acc = TRUE;
                for p in parts {
                    if acc == FALSE {
                        break;
                    }
                    let g = self.build(p);
                    acc = self.and(acc, g);
                }
                acc
            }
            PFormula::Or(parts) => {
                let mut acc = FALSE;
                for p in parts {
                    if acc == TRUE {
                        break;
                    }
                    let g = self.build(p);
                    acc = self.or(acc, g);
                }
                acc
            }
        }
    }

    fn and(&mut self, a: u32, b: u32) -> u32 {
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE || a == b {
            return a;
        }
        let key = (OP_AND, a.min(b), a.max(b));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = self.apply_branch(a, b, OP_AND);
        self.cache.insert(key, r);
        r
    }

    fn or(&mut self, a: u32, b: u32) -> u32 {
        if a == TRUE || b == TRUE {
            return TRUE;
        }
        if a == FALSE {
            return b;
        }
        if b == FALSE || a == b {
            return a;
        }
        let key = (OP_OR, a.min(b), a.max(b));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let r = self.apply_branch(a, b, OP_OR);
        self.cache.insert(key, r);
        r
    }

    /// Shannon expansion step shared by `and`/`or`: branch on the smaller
    /// top variable, recurse on cofactors.
    fn apply_branch(&mut self, a: u32, b: u32, op: u8) -> u32 {
        let na = self.nodes[a as usize];
        let nb = self.nodes[b as usize];
        let var = na.var.min(nb.var);
        let (alo, ahi) = if na.var == var { (na.lo, na.hi) } else { (a, a) };
        let (blo, bhi) = if nb.var == var { (nb.lo, nb.hi) } else { (b, b) };
        let (lo, hi) = if op == OP_AND {
            (self.and(alo, blo), self.and(ahi, bhi))
        } else {
            (self.or(alo, blo), self.or(ahi, bhi))
        };
        self.mk(var, lo, hi)
    }

    fn not(&mut self, a: u32) -> u32 {
        if a == FALSE {
            return TRUE;
        }
        if a == TRUE {
            return FALSE;
        }
        let key = (OP_NOT, a, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[a as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    fn restrict(&mut self, a: u32, var: u32, val: bool) -> u32 {
        if a <= TRUE {
            return a;
        }
        let n = self.nodes[a as usize];
        if n.var > var {
            // Ordered: `var` cannot appear below here.
            return a;
        }
        if n.var == var {
            return if val { n.hi } else { n.lo };
        }
        let op = if val { OP_RESTRICT_T } else { OP_RESTRICT_F };
        let key = (op, a, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let lo = self.restrict(n.lo, var, val);
        let hi = self.restrict(n.hi, var, val);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinCostSolver;
    use pda_util::SplitMix64;

    /// Same shape as the DPLL module's generator: literal/constant leaves,
    /// `And`/`Or`/`Not` interior nodes, depth-bounded.
    fn random_formula(rng: &mut SplitMix64, n_atoms: usize, depth: u32) -> PFormula {
        if depth == 0 || rng.gen_bool(0.3) {
            return match rng.gen_range(0, 6) {
                0 => PFormula::True,
                1 => PFormula::False,
                _ => PFormula::lit(rng.gen_range(0, n_atoms), rng.gen_bool(0.5)),
            };
        }
        match rng.gen_range(0, 3) {
            0 => PFormula::And(
                (0..rng.gen_range(1, 4))
                    .map(|_| random_formula(rng, n_atoms, depth - 1))
                    .collect(),
            ),
            1 => PFormula::Or(
                (0..rng.gen_range(1, 4))
                    .map(|_| random_formula(rng, n_atoms, depth - 1))
                    .collect(),
            ),
            _ => PFormula::Not(Box::new(random_formula(rng, n_atoms, depth - 1))),
        }
    }

    /// Every assignment over `n` atoms, in lexicographic `Vec<bool>`
    /// order (atom 0 most significant, false before true).
    fn assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..1u32 << n).map(move |bits| (0..n).map(|i| bits >> (n - 1 - i) & 1 == 1).collect())
    }

    /// Exhaustive min-cost oracle with the canonical tie-break: the
    /// lexicographically least among equal-cost minima.
    fn brute_min_cost(fs: &[PFormula], n: usize, costs: &[u64]) -> Option<Model> {
        let mut best: Option<Model> = None;
        for a in assignments(n) {
            if !fs.iter().all(|f| f.eval(&a)) {
                continue;
            }
            let cost: u64 = (0..n).filter(|&i| a[i]).map(|i| costs[i]).sum();
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(Model { assignment: a, cost });
            }
        }
        best
    }

    #[test]
    fn build_and_conjoin_match_truth_tables() {
        let mut rng = SplitMix64::new(0xbdd_0001);
        for case in 0..120 {
            let n = rng.gen_range_inclusive(1, 8);
            let mut bdd = Bdd::new(n, vec![1; n]);
            let mut fs = Vec::new();
            for _ in 0..rng.gen_range_inclusive(1, 4) {
                let f = random_formula(&mut rng, n, 3);
                bdd.conjoin(&f);
                fs.push(f);
                bdd.check_reduced().unwrap_or_else(|e| panic!("case {case}: {e}"));
                for a in assignments(n) {
                    assert_eq!(
                        bdd.eval(&a),
                        fs.iter().all(|f| f.eval(&a)),
                        "case {case}: eval mismatch at {a:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn restrict_and_exists_match_semantics() {
        let mut rng = SplitMix64::new(0xbdd_0002);
        for case in 0..150 {
            let n = rng.gen_range_inclusive(2, 8);
            let f = random_formula(&mut rng, n, 3);
            let var = rng.gen_range(0, n);
            let val = rng.gen_bool(0.5);

            let mut base = Bdd::new(n, vec![1; n]);
            base.conjoin(&f);

            let mut restricted = base.clone();
            restricted.restrict_var(var, val);
            restricted
                .check_reduced()
                .unwrap_or_else(|e| panic!("case {case} restrict: {e}"));

            let mut exists = base.clone();
            exists.exists_var(var);
            exists
                .check_reduced()
                .unwrap_or_else(|e| panic!("case {case} exists: {e}"));

            for a in assignments(n) {
                let mut fixed = a.clone();
                fixed[var] = val;
                assert_eq!(
                    restricted.eval(&a),
                    f.eval(&fixed),
                    "case {case}: restrict mismatch at {a:?}"
                );
                let mut lo = a.clone();
                lo[var] = false;
                let mut hi = a.clone();
                hi[var] = true;
                assert_eq!(
                    exists.eval(&a),
                    f.eval(&lo) || f.eval(&hi),
                    "case {case}: exists mismatch at {a:?}"
                );
            }
        }
    }

    #[test]
    fn min_cost_matches_exhaustive_enumeration() {
        let mut rng = SplitMix64::new(0xbdd_0003);
        for case in 0..200 {
            let n = rng.gen_range_inclusive(1, 12);
            let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 5) as u64).collect();
            let mut bdd = Bdd::new(n, costs.clone());
            let mut fs = Vec::new();
            for _ in 0..rng.gen_range_inclusive(1, 5) {
                let f = random_formula(&mut rng, n, 3);
                bdd.conjoin(&f);
                fs.push(f);
                let expected = brute_min_cost(&fs, n, &costs);
                let got = bdd.solve();
                assert_eq!(got, expected, "case {case}: optimum mismatch");
                assert_eq!(bdd.is_false(), expected.is_none(), "case {case}: emptiness");
            }
        }
    }

    #[test]
    fn agrees_with_dpll_on_random_instances() {
        let mut rng = SplitMix64::new(0xbdd_0004);
        for case in 0..150 {
            let n = rng.gen_range_inclusive(1, 10);
            let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(0, 4) as u64).collect();
            let mut bdd = Bdd::new(n, costs.clone());
            let mut dpll = MinCostSolver::new(n, costs);
            for _ in 0..rng.gen_range_inclusive(1, 4) {
                let f = random_formula(&mut rng, n, 3);
                bdd.conjoin(&f);
                dpll.require(f);
                assert_eq!(
                    bdd.solve(),
                    dpll.solve(),
                    "case {case}: engines disagree"
                );
            }
        }
    }

    #[test]
    fn conjoin_only_narrows_and_false_is_absorbing() {
        let n = 4;
        let mut bdd = Bdd::new(n, vec![1; n]);
        assert!(!bdd.is_false());
        assert_eq!(
            bdd.solve(),
            Some(Model { assignment: vec![false; n], cost: 0 })
        );
        bdd.conjoin(&PFormula::lit(1, true));
        let m = bdd.solve().unwrap();
        assert_eq!(m.cost, 1);
        assert_eq!(m.assignment, vec![false, true, false, false]);
        bdd.conjoin(&PFormula::lit(1, false));
        assert!(bdd.is_false());
        assert_eq!(bdd.solve(), None);
        // ⊥ stays ⊥ under further constraints.
        bdd.conjoin(&PFormula::True);
        assert!(bdd.is_false());
    }

    #[test]
    fn canonical_tie_break_prefers_lex_least() {
        // x0 ⊕ x1 with equal costs: {x0} and {x1} both cost 1; the
        // canonical model is [false, true] (atom 0 most significant).
        let mut bdd = Bdd::new(2, vec![1, 1]);
        bdd.conjoin(&PFormula::or(vec![PFormula::lit(0, true), PFormula::lit(1, true)]));
        bdd.conjoin(&PFormula::not(PFormula::and(vec![
            PFormula::lit(0, true),
            PFormula::lit(1, true),
        ])));
        let m = bdd.solve().unwrap();
        assert_eq!(m.cost, 1);
        assert_eq!(m.assignment, vec![false, true]);
    }

    #[test]
    fn arena_accounting_is_monotone_and_nonzero() {
        let mut bdd = Bdd::new(6, vec![1; 6]);
        let base = bdd.approx_bytes();
        assert!(base > 0);
        let mut prev_nodes = bdd.node_count();
        for i in 0..6 {
            bdd.conjoin(&PFormula::or(vec![
                PFormula::lit(i, true),
                PFormula::lit((i + 1) % 6, false),
            ]));
            assert!(bdd.node_count() >= prev_nodes, "arena is append-only");
            prev_nodes = bdd.node_count();
        }
        assert!(bdd.approx_bytes() > base);
    }
}
