//! DPLL with unit propagation and cost-pruning branch and bound.

use crate::cnf::Cnf;
use crate::PFormula;
use pda_util::{fault_point, Counter, Deadline, DeadlineExceeded, MemBudget, ObsRegistry, Span, SpanKind};

/// A satisfying assignment together with its cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    /// Truth value per original atom.
    pub assignment: Vec<bool>,
    /// Total cost of the atoms set to true.
    pub cost: u64,
}

/// Finds minimum-cost models of a conjunction of [`PFormula`] constraints.
///
/// Atom `i` set to true contributes `costs[i]`; false atoms are free. The
/// search is complete: [`MinCostSolver::solve`] returns a model of
/// globally minimal cost, or `None` when the constraints are
/// unsatisfiable (TRACER's *impossibility* outcome).
///
/// Among equal-cost minima the solver returns the **canonical** model:
/// the lexicographically least assignment under `Vec<bool>` order (atom 0
/// most significant, `false < true`). The rule is engine-independent —
/// the BDD viable engine's lo-edge-preferring extraction produces the
/// same model — which is what lets `ViableEngine::{Dpll,Bdd}` stay
/// bit-identical on chosen optima, not just on costs.
///
/// # Examples
///
/// ```
/// use pda_solver::{MinCostSolver, PFormula};
/// let mut s = MinCostSolver::new(2, vec![5, 1]);
/// s.require(PFormula::or(vec![PFormula::lit(0, true), PFormula::lit(1, true)]));
/// assert_eq!(s.solve().unwrap().assignment, vec![false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct MinCostSolver {
    n_atoms: usize,
    costs: Vec<u64>,
    constraints: Vec<PFormula>,
}

impl MinCostSolver {
    /// Creates a solver over `n_atoms` atoms with the given true-costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len() != n_atoms`.
    pub fn new(n_atoms: usize, costs: Vec<u64>) -> MinCostSolver {
        assert_eq!(costs.len(), n_atoms, "one cost per atom required");
        MinCostSolver { n_atoms, costs, constraints: Vec::new() }
    }

    /// Uniform cost 1 per atom (the paper's `|p|` cost preorders).
    pub fn with_unit_costs(n_atoms: usize) -> MinCostSolver {
        MinCostSolver::new(n_atoms, vec![1; n_atoms])
    }

    /// Adds a hard constraint.
    pub fn require(&mut self, f: PFormula) {
        self.constraints.push(f);
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[PFormula] {
        &self.constraints
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Finds a minimum-cost model, or `None` if unsatisfiable.
    pub fn solve(&self) -> Option<Model> {
        match self.solve_within(Deadline::NEVER) {
            Ok(m) => m,
            Err(DeadlineExceeded) => unreachable!("NEVER deadline cannot expire"),
        }
    }

    /// Like [`MinCostSolver::solve`], but polls `deadline` between search
    /// nodes and aborts cooperatively once it expires.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] if the deadline passes mid-search (a
    /// model found earlier in the search is discarded: it may not be the
    /// minimum, and TRACER needs minimality for Theorem 2).
    pub fn solve_within(&self, deadline: Deadline) -> Result<Option<Model>, DeadlineExceeded> {
        self.solve_within_observed(deadline, &mut ObsRegistry::default())
    }

    /// Like [`MinCostSolver::solve_within`], but records the search effort
    /// into `obs`: explored nodes go to [`Counter::SolverNodes`] and the
    /// whole solve is wrapped in a [`SpanKind::Solver`] span (timed only
    /// when the registry is).
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] under exactly the conditions of
    /// [`MinCostSolver::solve_within`].
    pub fn solve_within_observed(
        &self,
        deadline: Deadline,
        obs: &mut ObsRegistry,
    ) -> Result<Option<Model>, DeadlineExceeded> {
        self.solve_within_budgeted(deadline, obs, None)
    }

    /// Like [`MinCostSolver::solve_within_observed`], but charges the
    /// materialized CNF clause database against `budget` for the duration
    /// of the solve (released on return), adding the bytes to
    /// [`Counter::MemCharged`]. The budget is an accounting tap polled by
    /// the TRACER memory governor between CEGAR iterations — it never
    /// alters the search itself, so results are identical with or without
    /// a budget.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] under exactly the conditions of
    /// [`MinCostSolver::solve_within`].
    pub fn solve_within_budgeted(
        &self,
        deadline: Deadline,
        obs: &mut ObsRegistry,
        budget: Option<&MemBudget>,
    ) -> Result<Option<Model>, DeadlineExceeded> {
        let span = Span::enter(obs, SpanKind::Solver);
        let result = self.solve_inner(deadline, obs, budget);
        span.exit(obs);
        result
    }

    fn solve_inner(
        &self,
        deadline: Deadline,
        obs: &mut ObsRegistry,
        budget: Option<&MemBudget>,
    ) -> Result<Option<Model>, DeadlineExceeded> {
        fault_point("dpll.solve");
        let mut cnf = Cnf::new(self.n_atoms);
        for c in &self.constraints {
            cnf.require(c);
        }
        if cnf.clauses.iter().any(|c| c.is_empty()) {
            return Ok(None);
        }
        // Deterministic counts-times-size_of estimate of the clause
        // database, charged for the lifetime of the search.
        let clause_bytes = cnf.clauses.iter().fold(
            (cnf.clauses.len() as u64)
                .saturating_mul(std::mem::size_of::<Vec<crate::cnf::Lit>>() as u64),
            |acc, c| {
                acc.saturating_add(
                    (c.len() as u64).saturating_mul(std::mem::size_of::<crate::cnf::Lit>() as u64),
                )
            },
        );
        if let Some(b) = budget {
            b.charge(clause_bytes);
            obs.add(Counter::MemCharged, clause_bytes);
        }
        let mut search = Search {
            n_atoms: self.n_atoms,
            costs: &self.costs,
            clauses: &cnf.clauses,
            assign: vec![None; cnf.n_vars],
            trail: Vec::new(),
            cost: 0,
            best: None,
            deadline,
            nodes: 0,
            aborted: false,
        };
        search.dfs();
        let best = match search.best.take() {
            None => None,
            Some((cost, witness)) if !search.aborted => {
                Some(Model { assignment: search.canonicalize(cost, witness), cost })
            }
            Some(_) => None,
        };
        obs.add(Counter::SolverNodes, search.nodes);
        if let Some(b) = budget {
            b.release(clause_bytes);
        }
        if search.aborted {
            return Err(DeadlineExceeded);
        }
        Ok(best)
    }

    /// Exhaustive reference solver (exponential); used to validate
    /// [`MinCostSolver::solve`] in tests. Applies the same canonical
    /// tie-break as the search: cheapest first, lexicographically least
    /// assignment among equal-cost minima.
    ///
    /// # Panics
    ///
    /// Panics if there are more than 20 atoms.
    pub fn solve_brute(&self) -> Option<Model> {
        assert!(self.n_atoms <= 20, "brute force limited to 20 atoms");
        let mut best: Option<Model> = None;
        for bits in 0..(1u64 << self.n_atoms) {
            let assignment: Vec<bool> = (0..self.n_atoms).map(|i| (bits >> i) & 1 == 1).collect();
            if self.constraints.iter().all(|c| c.eval(&assignment)) {
                let cost = assignment
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(i, _)| self.costs[i])
                    .sum();
                if best.as_ref().is_none_or(|b| {
                    cost < b.cost || (cost == b.cost && assignment < b.assignment)
                }) {
                    best = Some(Model { assignment, cost });
                }
            }
        }
        best
    }
}

/// Poll the wall clock every this many search nodes — including the root,
/// so an already-expired deadline aborts without exploring.
const DEADLINE_STRIDE: u64 = 512;

struct Search<'a> {
    n_atoms: usize,
    costs: &'a [u64],
    clauses: &'a [Vec<crate::cnf::Lit>],
    assign: Vec<Option<bool>>,
    trail: Vec<usize>,
    cost: u64,
    best: Option<(u64, Vec<bool>)>,
    deadline: Deadline,
    nodes: u64,
    aborted: bool,
}

impl Search<'_> {
    fn set(&mut self, var: usize, value: bool) {
        debug_assert!(self.assign[var].is_none());
        self.assign[var] = Some(value);
        self.trail.push(var);
        if value && var < self.n_atoms {
            self.cost += self.costs[var];
        }
    }

    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let var = self.trail.pop().unwrap();
            if self.assign[var] == Some(true) && var < self.n_atoms {
                self.cost -= self.costs[var];
            }
            self.assign[var] = None;
        }
    }

    /// Admissible lower bound on the cost of any completion: the current
    /// cost plus, for a greedily-chosen set of *variable-disjoint*
    /// unsatisfied clauses whose only unassigned literals are positive
    /// cost-bearing ones, the cheapest literal of each. Such clauses each
    /// force at least one distinct true assignment.
    fn lower_bound(&self) -> u64 {
        let mut lb = self.cost;
        let mut used = vec![false; self.assign.len()];
        'clauses: for clause in self.clauses {
            let mut cheapest: Option<u64> = None;
            for l in clause {
                match self.assign[l.var] {
                    Some(v) if v == l.pos => continue 'clauses, // satisfied
                    Some(_) => {}
                    None => {
                        if !l.pos || l.var >= self.n_atoms || used[l.var] {
                            continue 'clauses; // free/overlapping way out
                        }
                        let c = self.costs[l.var];
                        cheapest = Some(cheapest.map_or(c, |b: u64| b.min(c)));
                    }
                }
            }
            if let Some(c) = cheapest {
                for l in clause {
                    if self.assign[l.var].is_none() {
                        used[l.var] = true;
                    }
                }
                lb += c;
            }
        }
        lb
    }

    /// Runs unit propagation to fixpoint. Returns `false` on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let mut changed = false;
            for clause in self.clauses {
                let mut satisfied = false;
                let mut unassigned = None;
                let mut n_unassigned = 0;
                for l in clause {
                    match self.assign[l.var] {
                        Some(v) if v == l.pos => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(*l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return false,
                    1 => {
                        let l = unassigned.unwrap();
                        self.set(l.var, l.pos);
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// Picks the branching variable: an unassigned variable of an
    /// unsatisfied clause; `None` when every clause is satisfied.
    fn pick(&self) -> Option<usize> {
        for clause in self.clauses {
            let satisfied = clause
                .iter()
                .any(|l| self.assign[l.var] == Some(l.pos));
            if satisfied {
                continue;
            }
            for l in clause {
                if self.assign[l.var].is_none() {
                    return Some(l.var);
                }
            }
        }
        None
    }

    fn record_model(&mut self) {
        // Strictly cheaper only — the canonical lex tie-break among
        // equal-cost minima is applied by the second (canonicalization)
        // phase, never inside the branch and bound, whose `>=` pruning
        // would otherwise have to enumerate every tied model.
        if self.best.as_ref().is_none_or(|(c, _)| self.cost < *c) {
            let assignment =
                (0..self.n_atoms).map(|i| self.assign[i] == Some(true)).collect();
            self.best = Some((self.cost, assignment));
        }
    }

    /// Canonicalization phase: turns any minimum-cost `witness` (cost
    /// `cost`) into the lexicographically least model of the same cost.
    ///
    /// Walks atoms in ascending order keeping a working model. An atom the
    /// working model already sets false is lex-minimal as-is; for each
    /// atom it sets true, one *decision* query asks whether some model of
    /// cost ≤ `cost` extends the false-flipped prefix — if so that model
    /// becomes the working model. Decision queries stop at their first
    /// hit, so tied models are never enumerated (the trap a lex tie-break
    /// inside the branch and bound itself would fall into).
    ///
    /// On deadline abort the witness is returned unchanged; the caller
    /// checks `aborted` and discards it.
    fn canonicalize(&mut self, cost: u64, witness: Vec<bool>) -> Vec<bool> {
        let mut model = witness;
        for i in 0..self.n_atoms {
            if self.aborted {
                break;
            }
            if !model[i] {
                continue;
            }
            debug_assert!(self.trail.is_empty());
            let mark = self.trail.len();
            let mut conflict = false;
            for (j, &v) in model.iter().enumerate().take(i + 1) {
                let v = if j == i { false } else { v };
                match self.assign[j] {
                    None => self.set(j, v),
                    Some(prev) if prev != v => {
                        conflict = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if !conflict {
                if let Some(found) = self.first_within(cost) {
                    debug_assert!(!found[i]);
                    model = found;
                }
            }
            self.undo_to(mark);
        }
        model
    }

    /// Decision search under the current assumptions: the first completion
    /// (false-completed over the original atoms) whose cost is within
    /// `cap`, or `None`. Returns on the first hit.
    fn first_within(&mut self, cap: u64) -> Option<Vec<bool>> {
        if self.aborted {
            return None;
        }
        if self.nodes.is_multiple_of(DEADLINE_STRIDE) && self.deadline.expired() {
            self.aborted = true;
            return None;
        }
        self.nodes += 1;
        let mark = self.trail.len();
        if !self.propagate() || self.lower_bound() > cap {
            self.undo_to(mark);
            return None;
        }
        let result = match self.pick() {
            None => {
                Some((0..self.n_atoms).map(|i| self.assign[i] == Some(true)).collect())
            }
            Some(var) => {
                let mut found = None;
                for value in [false, true] {
                    let inner = self.trail.len();
                    self.set(var, value);
                    found = self.first_within(cap);
                    self.undo_to(inner);
                    if found.is_some() {
                        break;
                    }
                }
                found
            }
        };
        self.undo_to(mark);
        result
    }

    fn dfs(&mut self) {
        if self.aborted {
            return;
        }
        if self.nodes.is_multiple_of(DEADLINE_STRIDE) && self.deadline.expired() {
            self.aborted = true;
            return;
        }
        self.nodes += 1;
        let mark = self.trail.len();
        if !self.propagate() {
            self.undo_to(mark);
            return;
        }
        if self.best.as_ref().is_some_and(|(c, _)| self.lower_bound() >= *c) {
            self.undo_to(mark);
            return;
        }
        match self.pick() {
            None => {
                // All clauses satisfied; unassigned atoms default to false
                // (zero cost), which can only help.
                self.record_model();
                self.undo_to(mark);
            }
            Some(var) => {
                for value in [false, true] {
                    let inner = self.trail.len();
                    self.set(var, value);
                    self.dfs();
                    self.undo_to(inner);
                }
                self.undo_to(mark);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_util::SplitMix64;

    #[test]
    fn empty_constraints_give_all_false() {
        let s = MinCostSolver::with_unit_costs(4);
        let m = s.solve().unwrap();
        assert_eq!(m.cost, 0);
        assert_eq!(m.assignment, vec![false; 4]);
    }

    #[test]
    fn unsat_detected() {
        let mut s = MinCostSolver::with_unit_costs(1);
        s.require(PFormula::lit(0, true));
        s.require(PFormula::lit(0, false));
        assert_eq!(s.solve(), None);
    }

    #[test]
    fn picks_cheapest_of_alternatives() {
        let mut s = MinCostSolver::new(3, vec![10, 3, 4]);
        s.require(PFormula::or(vec![
            PFormula::lit(0, true),
            PFormula::and(vec![PFormula::lit(1, true), PFormula::lit(2, true)]),
        ]));
        let m = s.solve().unwrap();
        assert_eq!(m.cost, 7);
        assert_eq!(m.assignment, vec![false, true, true]);
    }

    #[test]
    fn negated_compound_constraint() {
        // ¬(x0 ∧ ¬x1): forbids x0 without x1.
        let mut s = MinCostSolver::with_unit_costs(2);
        s.require(PFormula::not(PFormula::and(vec![
            PFormula::lit(0, true),
            PFormula::lit(1, false),
        ])));
        s.require(PFormula::lit(0, true));
        let m = s.solve().unwrap();
        assert_eq!(m.assignment, vec![true, true]);
    }

    #[test]
    fn observed_solve_counts_nodes_and_spans() {
        let mut s = MinCostSolver::with_unit_costs(3);
        s.require(PFormula::or(vec![PFormula::lit(0, true), PFormula::lit(1, true)]));
        let mut obs = ObsRegistry::default();
        let m = s.solve_within_observed(Deadline::NEVER, &mut obs).unwrap().unwrap();
        assert_eq!(m, s.solve().unwrap());
        assert!(obs.get(Counter::SolverNodes) > 0);
        assert_eq!(obs.span_stats(SpanKind::Solver).count, 1);
    }

    #[test]
    fn budgeted_solve_charges_and_matches_unbudgeted() {
        let mut s = MinCostSolver::with_unit_costs(3);
        s.require(PFormula::or(vec![PFormula::lit(0, true), PFormula::lit(2, true)]));
        let b = MemBudget::unlimited();
        let mut obs = ObsRegistry::default();
        let m = s.solve_within_budgeted(Deadline::NEVER, &mut obs, Some(&b)).unwrap();
        assert_eq!(m, s.solve());
        assert!(b.total_charged() > 0, "clause database must be charged");
        assert_eq!(b.used(), 0, "clause bytes released after the solve");
        assert!(obs.get(Counter::MemCharged) > 0);
    }

    #[test]
    fn expired_deadline_aborts_search() {
        let mut s = MinCostSolver::with_unit_costs(8);
        s.require(PFormula::or(vec![PFormula::lit(0, true), PFormula::lit(1, true)]));
        let expired = Deadline::after(std::time::Duration::ZERO);
        assert_eq!(s.solve_within(expired), Err(DeadlineExceeded));
        // A live deadline behaves exactly like `solve`.
        let live = Deadline::timeout(Some(std::time::Duration::from_secs(3600)));
        assert_eq!(s.solve_within(live).unwrap(), s.solve());
    }

    /// A random formula over `n_atoms` atoms, depth-bounded. Literal,
    /// `True`, and `False` leaves; `And`/`Or`/`Not` interior nodes.
    fn random_formula(rng: &mut SplitMix64, n_atoms: usize, depth: u32) -> PFormula {
        if depth == 0 || rng.gen_bool(0.3) {
            return match rng.gen_range(0, 6) {
                0 => PFormula::True,
                1 => PFormula::False,
                _ => PFormula::lit(rng.gen_range(0, n_atoms), rng.gen_bool(0.5)),
            };
        }
        match rng.gen_range(0, 3) {
            0 => PFormula::And(
                (0..rng.gen_range(1, 4))
                    .map(|_| random_formula(rng, n_atoms, depth - 1))
                    .collect(),
            ),
            1 => PFormula::Or(
                (0..rng.gen_range(1, 4))
                    .map(|_| random_formula(rng, n_atoms, depth - 1))
                    .collect(),
            ),
            _ => PFormula::Not(Box::new(random_formula(rng, n_atoms, depth - 1))),
        }
    }

    /// Randomized oracle: the DPLL branch-and-bound agrees with exhaustive
    /// enumeration on satisfiability and on minimum cost, for random
    /// constraint sets over up to 12 atoms. Fixed seed — the run is
    /// deterministic and needs no external property-testing framework.
    #[test]
    fn solve_matches_brute_force() {
        let mut rng = SplitMix64::new(0x5eed_cafe);
        for case in 0..300 {
            let n_atoms = rng.gen_range_inclusive(1, 12);
            let costs: Vec<u64> = (0..n_atoms).map(|_| rng.gen_range(1, 6) as u64).collect();
            let mut s = MinCostSolver::new(n_atoms, costs);
            for _ in 0..rng.gen_range(0, 4) {
                s.require(random_formula(&mut rng, n_atoms, 3));
            }
            let fast = s.solve();
            let brute = s.solve_brute();
            match (fast, brute) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    // Canonical tie-break: the *exact* model must agree,
                    // not just the cost.
                    assert_eq!(a, b, "case {case}: model mismatch");
                    // The returned model must actually satisfy everything.
                    assert!(
                        s.constraints().iter().all(|c| c.eval(&a.assignment)),
                        "case {case}: model violates a constraint"
                    );
                }
                (a, b) => panic!("case {case}: disagree: fast={a:?} brute={b:?}"),
            }
        }
    }
}
