//! Tseitin transformation of [`PFormula`]s into CNF.

use crate::PFormula;

/// A literal in DIMACS style: variable index and polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index (original atoms first, then Tseitin auxiliaries).
    pub var: usize,
    /// Polarity.
    pub pos: bool,
}

impl Lit {
    /// The opposite literal.
    pub fn negated(self) -> Lit {
        Lit { var: self.var, pos: !self.pos }
    }
}

/// A CNF instance: clauses over `n_vars` variables, the first `n_atoms` of
/// which are the original parameter atoms.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Total variable count (atoms + auxiliaries).
    pub n_vars: usize,
    /// Clauses (disjunctions of literals).
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty CNF over the `n_atoms` original atoms.
    pub fn new(n_atoms: usize) -> Cnf {
        Cnf { n_vars: n_atoms, clauses: Vec::new() }
    }

    fn fresh(&mut self) -> usize {
        let v = self.n_vars;
        self.n_vars += 1;
        v
    }

    /// Adds `formula` as a hard constraint (must be true).
    ///
    /// Uses the Tseitin encoding: each compound subformula gets an
    /// auxiliary variable constrained to be *equivalent* to it, so unit
    /// propagation fully determines auxiliaries once atoms are assigned.
    pub fn require(&mut self, formula: &PFormula) {
        match self.encode(formula) {
            Enc::Const(true) => {}
            Enc::Const(false) => self.clauses.push(Vec::new()), // unsatisfiable
            Enc::Lit(l) => self.clauses.push(vec![l]),
        }
    }

    fn encode(&mut self, f: &PFormula) -> Enc {
        match f {
            PFormula::True => Enc::Const(true),
            PFormula::False => Enc::Const(false),
            PFormula::Lit { atom, pos } => Enc::Lit(Lit { var: *atom, pos: *pos }),
            PFormula::Not(inner) => match self.encode(inner) {
                Enc::Const(b) => Enc::Const(!b),
                Enc::Lit(l) => Enc::Lit(l.negated()),
            },
            PFormula::And(parts) => {
                let mut lits = Vec::new();
                for p in parts {
                    match self.encode(p) {
                        Enc::Const(false) => return Enc::Const(false),
                        Enc::Const(true) => {}
                        Enc::Lit(l) => lits.push(l),
                    }
                }
                match lits.len() {
                    0 => Enc::Const(true),
                    1 => Enc::Lit(lits[0]),
                    _ => {
                        // aux <-> AND(lits)
                        let aux = self.fresh();
                        let a = Lit { var: aux, pos: true };
                        for &l in &lits {
                            self.clauses.push(vec![a.negated(), l]);
                        }
                        let mut big: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                        big.push(a);
                        self.clauses.push(big);
                        Enc::Lit(a)
                    }
                }
            }
            PFormula::Or(parts) => {
                let mut lits = Vec::new();
                for p in parts {
                    match self.encode(p) {
                        Enc::Const(true) => return Enc::Const(true),
                        Enc::Const(false) => {}
                        Enc::Lit(l) => lits.push(l),
                    }
                }
                match lits.len() {
                    0 => Enc::Const(false),
                    1 => Enc::Lit(lits[0]),
                    _ => {
                        // aux <-> OR(lits)
                        let aux = self.fresh();
                        let a = Lit { var: aux, pos: true };
                        for &l in &lits {
                            self.clauses.push(vec![a, l.negated()]);
                        }
                        let mut big = lits;
                        big.push(a.negated());
                        self.clauses.push(big);
                        Enc::Lit(a)
                    }
                }
            }
        }
    }
}

enum Enc {
    Const(bool),
    Lit(Lit),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check: CNF (projected to atoms) has the same models as
    /// the original formula.
    fn equisatisfiable_on_atoms(f: &PFormula, n_atoms: usize) {
        let mut cnf = Cnf::new(n_atoms);
        cnf.require(f);
        for bits in 0..(1u32 << n_atoms) {
            let atoms: Vec<bool> = (0..n_atoms).map(|i| (bits >> i) & 1 == 1).collect();
            let want = f.eval(&atoms);
            // Try all auxiliary extensions.
            let n_aux = cnf.n_vars - n_atoms;
            let mut any = false;
            for aux_bits in 0..(1u32 << n_aux) {
                let mut full = atoms.clone();
                full.extend((0..n_aux).map(|i| (aux_bits >> i) & 1 == 1));
                let sat = cnf.clauses.iter().all(|cl| {
                    cl.iter().any(|l| full[l.var] == l.pos)
                });
                if sat {
                    any = true;
                    break;
                }
            }
            assert_eq!(any, want, "mismatch at atoms {atoms:?} for {f:?}");
        }
    }

    #[test]
    fn tseitin_preserves_models() {
        use PFormula as F;
        let cases = vec![
            F::lit(0, true),
            F::not(F::lit(1, true)),
            F::and(vec![F::lit(0, true), F::lit(1, false)]),
            F::or(vec![F::lit(0, true), F::lit(1, true), F::lit(2, false)]),
            F::not(F::or(vec![
                F::and(vec![F::lit(0, true), F::lit(1, true)]),
                F::lit(2, true),
            ])),
            F::and(vec![
                F::or(vec![F::lit(0, true), F::lit(1, true)]),
                F::or(vec![F::lit(0, false), F::lit(2, true)]),
            ]),
        ];
        for f in cases {
            equisatisfiable_on_atoms(&f, 3);
        }
    }

    #[test]
    fn constants() {
        let mut cnf = Cnf::new(1);
        cnf.require(&PFormula::True);
        assert!(cnf.clauses.is_empty());
        cnf.require(&PFormula::False);
        assert!(cnf.clauses.iter().any(|c| c.is_empty()));
    }
}
