//! Stress and structure tests for the minimum-cost DPLL beyond the unit
//! tests: long implication chains, pigeonhole-style unsat instances, and
//! accumulated-constraint workloads shaped like TRACER's viable sets.

use pda_solver::{MinCostSolver, PFormula};

/// `x0 → x1 → ... → x_{n-1}` plus `x0`: the only models set a full prefix
/// chain; minimal cost forces all of them. Exercises unit propagation
/// depth.
#[test]
fn implication_chain_propagates() {
    let n = 60;
    let mut s = MinCostSolver::with_unit_costs(n);
    s.require(PFormula::lit(0, true));
    for i in 0..n - 1 {
        s.require(PFormula::or(vec![PFormula::lit(i, false), PFormula::lit(i + 1, true)]));
    }
    let m = s.solve().unwrap();
    assert_eq!(m.cost, n as u64);
    assert!(m.assignment.iter().all(|&b| b));
}

/// Exactly-one-of-k via pairwise exclusion: the solver must pick the
/// cheapest atom.
#[test]
fn picks_cheapest_of_mutually_exclusive() {
    let n = 8;
    let costs: Vec<u64> = (0..n).map(|i| (i as u64 + 3) % 7 + 1).collect();
    let mut s = MinCostSolver::new(n, costs.clone());
    s.require(PFormula::or((0..n).map(|i| PFormula::lit(i, true)).collect()));
    for i in 0..n {
        for j in i + 1..n {
            s.require(PFormula::or(vec![PFormula::lit(i, false), PFormula::lit(j, false)]));
        }
    }
    let m = s.solve().unwrap();
    let chosen: Vec<usize> = (0..n).filter(|&i| m.assignment[i]).collect();
    assert_eq!(chosen.len(), 1);
    assert_eq!(m.cost, *costs.iter().min().unwrap());
}

/// Small pigeonhole principle (3 pigeons, 2 holes): unsatisfiable, found
/// without cost help.
#[test]
fn pigeonhole_is_unsat() {
    // atom p*2 + h means pigeon p in hole h.
    let var = |p: usize, h: usize| p * 2 + h;
    let mut s = MinCostSolver::with_unit_costs(6);
    for p in 0..3 {
        s.require(PFormula::or(vec![
            PFormula::lit(var(p, 0), true),
            PFormula::lit(var(p, 1), true),
        ]));
    }
    for h in 0..2 {
        for p1 in 0..3 {
            for p2 in p1 + 1..3 {
                s.require(PFormula::or(vec![
                    PFormula::lit(var(p1, h), false),
                    PFormula::lit(var(p2, h), false),
                ]));
            }
        }
    }
    assert_eq!(s.solve(), None);
}

/// The TRACER workload shape: a growing conjunction of negated cubes.
/// Each round must keep a model until the cubes cover the whole space.
#[test]
fn accumulated_negated_cubes_until_unsat() {
    let n = 3;
    let mut s = MinCostSolver::with_unit_costs(n);
    let mut rounds = 0;
    loop {
        match s.solve() {
            None => break,
            Some(m) => {
                rounds += 1;
                assert!(rounds <= 1 << n, "more rounds than abstractions");
                // Eliminate exactly the found model (worst-case pruning).
                let cube = PFormula::and(
                    (0..n).map(|i| PFormula::lit(i, m.assignment[i])).collect(),
                );
                s.require(PFormula::not(cube));
            }
        }
    }
    assert_eq!(rounds, 1 << n, "every abstraction visited exactly once");
}

/// Cost pruning must not sacrifice optimality when the cheap region is
/// unsatisfiable.
#[test]
fn optimum_in_expensive_region() {
    let n = 10;
    let mut s = MinCostSolver::with_unit_costs(n);
    // Require at least 7 of the 10 atoms via "any 4 atoms include a true"
    // (i.e. at most 3 false): for each 4-subset, one must be true.
    // Encode more simply: forbid every assignment with ≤ 6 trues among
    // the first 8 atoms by requiring pairs.
    for i in 0..8 {
        for j in i + 1..8 {
            s.require(PFormula::or(vec![
                PFormula::lit(i, true),
                PFormula::lit(j, true),
            ]));
        }
    }
    // At most one of the first 8 may be false => cost ≥ 7.
    let m = s.solve().unwrap();
    assert_eq!(m.cost, 7);
}

/// Large conjunction of independent clauses: scales without exponential
/// behavior (completes quickly).
#[test]
fn many_independent_clauses() {
    let n = 120;
    let mut s = MinCostSolver::with_unit_costs(n);
    for i in (0..n).step_by(2) {
        s.require(PFormula::or(vec![PFormula::lit(i, true), PFormula::lit(i + 1, true)]));
    }
    let m = s.solve().unwrap();
    assert_eq!(m.cost, (n / 2) as u64);
}
