//! Property test for Lemma 1: for a disjunctive analysis,
//! `F_p[s]({d}) = { F_p[t](d) | t ∈ trace(s) }` — every final state the
//! term engine computes is witnessed by a concrete trace that replays to
//! exactly that state, and every witness's replay is a final state.

use pda_dataflow::{ParametricAnalysis, TermRun};
use pda_lang::{Atom, PointId, TermArena, TermId, VarId};
use pda_util::SplitMix64;

/// Saturating counter transfer: `Null{v}` adds `v+1`, capped at the param.
struct Counter;

impl ParametricAnalysis for Counter {
    type Param = u32;
    type State = u32;
    fn transfer(&self, p: &u32, atom: &Atom, d: &u32) -> u32 {
        match atom {
            Atom::Null { dst } => (*d + dst.0 + 1).min(*p),
            Atom::Havoc { .. } => d / 2,
            _ => *d,
        }
    }
}

/// A recipe for building a random term into an arena.
#[derive(Debug, Clone)]
enum Recipe {
    Atom(u32),
    Havoc,
    Seq(Box<Recipe>, Box<Recipe>),
    Choice(Box<Recipe>, Box<Recipe>),
    Star(Box<Recipe>),
}

fn build(arena: &mut TermArena, r: &Recipe, next_point: &mut u32) -> TermId {
    match r {
        Recipe::Atom(v) => {
            let p = PointId(*next_point);
            *next_point += 1;
            arena.atom(Atom::Null { dst: VarId(*v) }, p)
        }
        Recipe::Havoc => {
            let p = PointId(*next_point);
            *next_point += 1;
            arena.atom(Atom::Havoc { dst: VarId(0) }, p)
        }
        Recipe::Seq(a, b) => {
            let ta = build(arena, a, next_point);
            let tb = build(arena, b, next_point);
            arena.seq(ta, tb)
        }
        Recipe::Choice(a, b) => {
            let ta = build(arena, a, next_point);
            let tb = build(arena, b, next_point);
            arena.choice(ta, tb)
        }
        Recipe::Star(a) => {
            let ta = build(arena, a, next_point);
            arena.star(ta)
        }
    }
}

fn random_recipe(rng: &mut SplitMix64, depth: u32) -> Recipe {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.75) {
            Recipe::Atom(rng.gen_range(0, 3) as u32)
        } else {
            Recipe::Havoc
        };
    }
    match rng.gen_range(0, 3) {
        0 => Recipe::Seq(
            Box::new(random_recipe(rng, depth - 1)),
            Box::new(random_recipe(rng, depth - 1)),
        ),
        1 => Recipe::Choice(
            Box::new(random_recipe(rng, depth - 1)),
            Box::new(random_recipe(rng, depth - 1)),
        ),
        _ => Recipe::Star(Box::new(random_recipe(rng, depth - 1))),
    }
}

#[test]
fn every_final_state_has_a_replaying_witness() {
    let mut rng = SplitMix64::new(0x1e44a1);
    for _ in 0..64 {
        let recipe = random_recipe(&mut rng, 4);
        let p = rng.gen_range(1, 12) as u32;
        let mut arena = TermArena::new();
        let mut np = 0;
        let root = build(&mut arena, &recipe, &mut np);
        let analysis = Counter;
        let mut run = TermRun::new(&analysis, &p, &arena);
        let finals = run.run(root, &0);
        assert!(!finals.is_empty());
        for target in &finals {
            let trace = run.trace_to(root, &0, target).expect("Lemma 1 witness");
            let replay = trace
                .iter()
                .fold(0u32, |d, s| analysis.transfer(&p, &s.atom, &d));
            assert_eq!(replay, *target, "trace does not replay to its target");
        }
        // Conversely, no witness exists for a non-final state.
        let bogus = finals.iter().max().unwrap() + 1000;
        assert!(run.trace_to(root, &0, &bogus).is_none());
    }
}
