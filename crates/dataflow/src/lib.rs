//! Parametric dataflow analysis engines.
//!
//! A *parametric analysis* in the paper's Section 3.2 is a triple
//! `(P, ⪯, D, ⟦-⟧)`: a preordered family of abstractions, a finite set of
//! abstract states, and per-atom transfer functions `⟦a⟧_p : D → D`
//! parameterized by `p ∈ P`. In this workspace that interface is the
//! [`ParametricAnalysis`] trait, implemented by the type-state and
//! thread-escape clients.
//!
//! Two engines compute `F_p[s]({d_I})`:
//!
//! * [`term`] — the *reference engine*: interprets the regular-term
//!   semantics of the paper's Figure 3 literally (disjunctive, memoized,
//!   least fixpoints for `s*`) over an inlined whole-program term, and
//!   searches counterexample *traces* per Lemma 1.
//! * [`rhs`] — the *scalable engine*: Reps–Horwitz–Sagiv-style tabulation
//!   over method CFGs with entry-state-keyed summaries (fully flow- and
//!   context-sensitive, supports recursion), recording back-pointers so a
//!   failed query yields an interprocedurally valid, flattened
//!   counterexample trace for the backward meta-analysis.
//!
//! Both engines agree on inlinable programs; `tests/engines_agree.rs`
//! checks this end to end.

#![warn(missing_docs)]

pub mod rhs;
pub mod term;
mod traits;

pub use rhs::{Interrupt, RhsLimits, RhsResult, TooBig};
pub use term::TermRun;
pub use traits::{replay, ParametricAnalysis, TraceStep};
