//! The parametric-analysis interface shared by all engines and clients.

use pda_lang::{Atom, CallInfo, MethodId, PointId, Program};

/// A parametric dataflow analysis: per-atom transfer functions `⟦a⟧_p`
/// over a finite abstract domain, parameterized by an abstraction `p`.
///
/// Implementations must be **total and deterministic** in `(p, d)`;
/// the backward meta-analysis depends on this to compute exact weakest
/// preconditions (requirement (2) of the paper's Section 4).
pub trait ParametricAnalysis {
    /// The abstraction parameter `p ∈ P`.
    type Param;
    /// An abstract state `d ∈ D`.
    type State: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug;

    /// Applies `⟦atom⟧_p` to `d`.
    fn transfer(&self, p: &Self::Param, atom: &Atom, d: &Self::State) -> Self::State;
}

/// One step of a counterexample trace: an atomic command and the program
/// point it executed at ([`pda_lang::ir::SYNTHETIC_POINT`] for glue atoms
/// synthesized at call boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// The atomic command.
    pub atom: Atom,
    /// Its program point.
    pub point: PointId,
}

/// Replays a trace from `d0`, returning the final abstract state.
///
/// Used by tests and diagnostics to check that counterexample traces are
/// consistent with the engine that produced them: replaying a witness
/// must land exactly on the state the engine reported.
pub fn replay<A: ParametricAnalysis>(
    analysis: &A,
    p: &A::Param,
    steps: &[TraceStep],
    d0: &A::State,
) -> A::State {
    steps
        .iter()
        .fold(d0.clone(), |d, s| analysis.transfer(p, &s.atom, &d))
}

/// The parameter-binding atoms executed when `call` enters `callee`
/// (receiver and arguments copied into formals). Shared by the inliner
/// convention, the RHS engine, and trace reconstruction so all three agree
/// on the trace alphabet.
pub fn call_binding_atoms(program: &Program, call: &CallInfo, callee: MethodId) -> Vec<Atom> {
    let m = &program.methods[callee];
    let mut actuals: Vec<pda_lang::VarId> = Vec::new();
    if let pda_lang::CallKind::Virtual { recv, .. } = call.kind {
        actuals.push(recv);
    }
    actuals.extend(call.args.iter().copied());
    m.params
        .iter()
        .zip(actuals)
        .map(|(&formal, actual)| Atom::Copy { dst: formal, src: actual })
        .collect()
}

/// The result-copy atom executed when `call` returns from `callee`, if the
/// call binds a result.
pub fn call_return_atom(program: &Program, call: &CallInfo, callee: MethodId) -> Option<Atom> {
    let ret = program.methods[callee].ret?;
    call.dst.map(|dst| Atom::Copy { dst, src: ret })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::parse_program;

    #[test]
    fn binding_atoms_cover_receiver_and_args() {
        let p = parse_program(
            r#"
            class A { fn m(a, b) { return a; } }
            fn main() { var o, x, r; o = new A; x = null; r = o.m(x, o); }
            "#,
        )
        .unwrap();
        let call = &p.calls[pda_lang::CallId(0)];
        let callee = match call.kind {
            pda_lang::CallKind::Virtual { method, .. } => {
                p.classes[pda_lang::ClassId(0)].methods[&method]
            }
            _ => unreachable!(),
        };
        let binds = call_binding_atoms(&p, call, callee);
        assert_eq!(binds.len(), 3); // this, a, b
        assert!(matches!(binds[0], Atom::Copy { .. }));
        let ret = call_return_atom(&p, call, callee).unwrap();
        assert!(matches!(ret, Atom::Copy { .. }));
    }

    #[test]
    fn no_return_atom_without_destination() {
        let p = parse_program(
            "fn f() { } fn main() { f(); }",
        )
        .unwrap();
        let call = &p.calls[pda_lang::CallId(0)];
        let callee = match call.kind {
            pda_lang::CallKind::Static(m) => m,
            _ => unreachable!(),
        };
        assert!(call_binding_atoms(&p, call, callee).is_empty());
        assert!(call_return_atom(&p, call, callee).is_none());
    }
}
