//! The exact reference engine over regular program terms.
//!
//! Implements the paper's Figure 3 semantics verbatim: programs denote
//! transformers on *sets* of abstract states (`F_p[s]`), atoms apply the
//! client transfer, `+` is union, and `*` is a least fixpoint. Because the
//! analysis is disjunctive, Lemma 1 guarantees every final state is
//! produced by some loop-free *trace*; [`TermRun::witness`] searches one
//! out for failed queries.

use crate::traits::{ParametricAnalysis, TraceStep};
use pda_lang::{PointId, TermArena, TermId, TermNode};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A memoizing interpreter for one `(analysis, p)` instantiation.
///
/// Construct one per forward run; the memo table is keyed on
/// `(term, input state)` and shared across [`TermRun::run`],
/// [`TermRun::states_at_points`], and [`TermRun::witness`].
pub struct TermRun<'a, A: ParametricAnalysis> {
    analysis: &'a A,
    p: &'a A::Param,
    arena: &'a TermArena,
    memo: HashMap<(TermId, A::State), BTreeSet<A::State>>,
}

impl<'a, A: ParametricAnalysis> TermRun<'a, A> {
    /// Creates an interpreter for the `p` instance of `analysis`.
    pub fn new(analysis: &'a A, p: &'a A::Param, arena: &'a TermArena) -> Self {
        TermRun { analysis, p, arena, memo: HashMap::new() }
    }

    /// Computes `F_p[t]({d})` — all final states of `t` from `d`.
    pub fn run(&mut self, t: TermId, d: &A::State) -> BTreeSet<A::State> {
        if let Some(cached) = self.memo.get(&(t, d.clone())) {
            return cached.clone();
        }
        let out = match self.arena.node(t) {
            TermNode::Eps => BTreeSet::from([d.clone()]),
            TermNode::Atom(a, _) => BTreeSet::from([self.analysis.transfer(self.p, &a, d)]),
            TermNode::Seq(s1, s2) => {
                let mid = self.run(s1, d);
                let mut out = BTreeSet::new();
                for d1 in &mid {
                    out.extend(self.run(s2, d1));
                }
                out
            }
            TermNode::Choice(s1, s2) => {
                let mut out = self.run(s1, d);
                out.extend(self.run(s2, d));
                out
            }
            TermNode::Star(s) => self.star_closure(s, d),
        };
        self.memo.insert((t, d.clone()), out.clone());
        out
    }

    /// All states reachable from `d` by zero or more iterations of `s`.
    fn star_closure(&mut self, s: TermId, d: &A::State) -> BTreeSet<A::State> {
        let mut set = BTreeSet::from([d.clone()]);
        let mut frontier = vec![d.clone()];
        while let Some(x) = frontier.pop() {
            for y in self.run(s, &x) {
                if set.insert(y.clone()) {
                    frontier.push(y);
                }
            }
        }
        set
    }

    /// Collects, for every program point in the term, the set of states
    /// *arriving at* that point (the pre-state of the atom there).
    ///
    /// Queries are judged against these sets: a query at point `pc` is
    /// proven iff every arriving state satisfies it.
    pub fn states_at_points(
        &mut self,
        root: TermId,
        d0: &A::State,
    ) -> HashMap<PointId, BTreeSet<A::State>> {
        let mut out: HashMap<PointId, BTreeSet<A::State>> = HashMap::new();
        let mut visited: HashSet<(TermId, A::State)> = HashSet::new();
        self.visit(root, d0, &mut out, &mut visited);
        out
    }

    fn visit(
        &mut self,
        t: TermId,
        d: &A::State,
        out: &mut HashMap<PointId, BTreeSet<A::State>>,
        visited: &mut HashSet<(TermId, A::State)>,
    ) {
        if !visited.insert((t, d.clone())) {
            return;
        }
        match self.arena.node(t) {
            TermNode::Eps => {}
            TermNode::Atom(_, p) => {
                if p != pda_lang::ir::SYNTHETIC_POINT {
                    out.entry(p).or_default().insert(d.clone());
                }
            }
            TermNode::Seq(s1, s2) => {
                self.visit(s1, d, out, visited);
                for d1 in self.run(s1, d) {
                    self.visit(s2, &d1, out, visited);
                }
            }
            TermNode::Choice(s1, s2) => {
                self.visit(s1, d, out, visited);
                self.visit(s2, d, out, visited);
            }
            TermNode::Star(s) => {
                for x in self.star_closure(s, d) {
                    self.visit(s, &x, out, visited);
                }
            }
        }
    }

    /// A witness trace of `root` from `d0` ending exactly in `target`
    /// (Lemma 1: every final state of a disjunctive analysis is produced
    /// by some trace), or `None` if `target ∉ F_p[root]({d0})`.
    pub fn trace_to(
        &mut self,
        root: TermId,
        d0: &A::State,
        target: &A::State,
    ) -> Option<Vec<TraceStep>> {
        if !self.run(root, d0).contains(target) {
            return None;
        }
        Some(self.path_to_state(root, d0, target))
    }

    /// Searches a trace from `d0` whose next step arrives at a point/state
    /// satisfying `bad` — an abstract counterexample per Lemma 1. The
    /// returned steps end *just before* the bad point.
    pub fn witness(
        &mut self,
        root: TermId,
        d0: &A::State,
        bad: &dyn Fn(PointId, &A::State) -> bool,
    ) -> Option<Vec<TraceStep>> {
        self.path_to_bad(root, d0, bad)
    }

    fn path_to_bad(
        &mut self,
        t: TermId,
        d: &A::State,
        bad: &dyn Fn(PointId, &A::State) -> bool,
    ) -> Option<Vec<TraceStep>> {
        match self.arena.node(t) {
            TermNode::Eps => None,
            TermNode::Atom(_, p) => {
                if p != pda_lang::ir::SYNTHETIC_POINT && bad(p, d) {
                    Some(Vec::new())
                } else {
                    None
                }
            }
            TermNode::Seq(s1, s2) => {
                if let Some(tr) = self.path_to_bad(s1, d, bad) {
                    return Some(tr);
                }
                for d1 in self.run(s1, d) {
                    if let Some(tail) = self.path_to_bad(s2, &d1, bad) {
                        let mut tr = self.path_to_state(s1, d, &d1);
                        tr.extend(tail);
                        return Some(tr);
                    }
                }
                None
            }
            TermNode::Choice(s1, s2) => self
                .path_to_bad(s1, d, bad)
                .or_else(|| self.path_to_bad(s2, d, bad)),
            TermNode::Star(s) => {
                // BFS over iteration states, remembering parents.
                let mut parent: HashMap<A::State, A::State> = HashMap::new();
                let mut order = vec![d.clone()];
                let mut queue = VecDeque::from([d.clone()]);
                let mut seen: HashSet<A::State> = HashSet::from([d.clone()]);
                while let Some(x) = queue.pop_front() {
                    for y in self.run(s, &x) {
                        if seen.insert(y.clone()) {
                            parent.insert(y.clone(), x.clone());
                            order.push(y.clone());
                            queue.push_back(y);
                        }
                    }
                }
                for x in order {
                    if let Some(tail) = self.path_to_bad(s, &x, bad) {
                        let mut tr = self.iterate_to(s, d, &x, &parent);
                        tr.extend(tail);
                        return Some(tr);
                    }
                }
                None
            }
        }
    }

    /// The trace of whole loop iterations taking `d` to `x` under `s*`,
    /// following recorded BFS parents.
    fn iterate_to(
        &mut self,
        s: TermId,
        d: &A::State,
        x: &A::State,
        parent: &HashMap<A::State, A::State>,
    ) -> Vec<TraceStep> {
        let mut chain = vec![x.clone()];
        let mut cur = x;
        while cur != d {
            let p = &parent[cur];
            chain.push(p.clone());
            cur = p;
        }
        chain.reverse();
        let mut tr = Vec::new();
        for w in chain.windows(2) {
            tr.extend(self.path_to_state(s, &w[0], &w[1]));
        }
        tr
    }

    /// A trace of `t` from `d` ending exactly in `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target ∉ F_p[t]({d})` — callers must establish
    /// membership first (the engine always does).
    fn path_to_state(&mut self, t: TermId, d: &A::State, target: &A::State) -> Vec<TraceStep> {
        match self.arena.node(t) {
            TermNode::Eps => {
                assert_eq!(d, target, "path_to_state: eps mismatch");
                Vec::new()
            }
            TermNode::Atom(a, p) => {
                debug_assert_eq!(&self.analysis.transfer(self.p, &a, d), target);
                vec![TraceStep { atom: a, point: p }]
            }
            TermNode::Seq(s1, s2) => {
                for d1 in self.run(s1, d) {
                    if self.run(s2, &d1).contains(target) {
                        let mut tr = self.path_to_state(s1, d, &d1);
                        tr.extend(self.path_to_state(s2, &d1, target));
                        return tr;
                    }
                }
                panic!("path_to_state: target unreachable through Seq");
            }
            TermNode::Choice(s1, s2) => {
                if self.run(s1, d).contains(target) {
                    self.path_to_state(s1, d, target)
                } else {
                    self.path_to_state(s2, d, target)
                }
            }
            TermNode::Star(s) => {
                if d == target {
                    return Vec::new();
                }
                // BFS with parents until we hit the target.
                let mut parent: HashMap<A::State, A::State> = HashMap::new();
                let mut queue = VecDeque::from([d.clone()]);
                let mut seen: HashSet<A::State> = HashSet::from([d.clone()]);
                while let Some(x) = queue.pop_front() {
                    for y in self.run(s, &x) {
                        if seen.insert(y.clone()) {
                            parent.insert(y.clone(), x.clone());
                            if &y == target {
                                return self.iterate_to(s, d, target, &parent);
                            }
                            queue.push_back(y);
                        }
                    }
                }
                panic!("path_to_state: target unreachable through Star");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::{Atom, VarId};

    /// A toy analysis over `u32` counters: `Null{v}` increments by `v`'s
    /// index, everything else is identity. Param caps the counter.
    struct Counter;

    impl ParametricAnalysis for Counter {
        type Param = u32;
        type State = u32;
        fn transfer(&self, p: &u32, atom: &Atom, d: &u32) -> u32 {
            match atom {
                Atom::Null { dst } => (*d + dst.0 + 1).min(*p),
                _ => *d,
            }
        }
    }

    fn arena_incr() -> (TermArena, TermId) {
        // ( null v0 )* ; choice(null v1, eps)
        let mut a = TermArena::new();
        let one = a.atom(Atom::Null { dst: VarId(0) }, PointId(0));
        let star = a.star(one);
        let two = a.atom(Atom::Null { dst: VarId(1) }, PointId(1));
        let eps = a.eps();
        let tail = a.choice(two, eps);
        let root = a.seq(star, tail);
        (a, root)
    }

    use pda_lang::PointId;

    #[test]
    fn run_computes_fixpoint_with_cap() {
        let (a, root) = arena_incr();
        let analysis = Counter;
        let p = 4;
        let mut run = TermRun::new(&analysis, &p, &a);
        let out = run.run(root, &0);
        // Star yields {0,1,2,3,4}; tail adds +2 capped at 4 or stays.
        assert_eq!(out, BTreeSet::from([0, 1, 2, 3, 4]));
    }

    #[test]
    fn states_at_points_collects_prestates() {
        let (a, root) = arena_incr();
        let analysis = Counter;
        let p = 2;
        let mut run = TermRun::new(&analysis, &p, &a);
        let at = run.states_at_points(root, &0);
        // Loop body sees all closure states; tail sees them too.
        assert_eq!(at[&PointId(0)], BTreeSet::from([0, 1, 2]));
        assert_eq!(at[&PointId(1)], BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn witness_reaches_bad_state_through_loop() {
        let (a, root) = arena_incr();
        let analysis = Counter;
        let p = 10;
        let mut run = TermRun::new(&analysis, &p, &a);
        // Bad: arriving at point 1 with counter ≥ 3 (needs 3 loop spins).
        let tr = run
            .witness(root, &0, &|pt, d| pt == PointId(1) && *d >= 3)
            .expect("witness exists");
        assert_eq!(tr.len(), 3);
        assert!(tr.iter().all(|s| s.point == PointId(0)));
        // Replaying the trace lands on 3.
        let final_d = tr.iter().fold(0, |d, s| analysis.transfer(&p, &s.atom, &d));
        assert_eq!(final_d, 3);
    }

    #[test]
    fn witness_none_when_unreachable() {
        let (a, root) = arena_incr();
        let analysis = Counter;
        let p = 2; // cap prevents ever reaching 5
        let mut run = TermRun::new(&analysis, &p, &a);
        assert!(run.witness(root, &0, &|_, d| *d >= 5).is_none());
    }

    #[test]
    fn witness_in_first_position_is_empty() {
        let (a, root) = arena_incr();
        let analysis = Counter;
        let p = 9;
        let mut run = TermRun::new(&analysis, &p, &a);
        let tr = run.witness(root, &0, &|pt, d| pt == PointId(0) && *d == 0).unwrap();
        assert!(tr.is_empty());
    }
}
