//! RHS-style interprocedural tabulation with counterexample extraction.
//!
//! The paper implements its forward analyses "as an instance of the RHS
//! tabulation framework" (its citation 19, Reps–Horwitz–Sagiv). This
//! module is the from-scratch equivalent:
//! facts are single abstract states (the analyses are disjunctive), path
//! edges are keyed by `(method, entry state)` — functional context
//! sensitivity — and summaries `(method, entry state) → exit states` are
//! reused across call sites. Recursion is handled by the fixpoint; no
//! inlining is required.
//!
//! Every propagated fact records a back-pointer (*reason*), so when a
//! query fails the engine reconstructs an interprocedurally valid,
//! flattened trace of atomic commands — exactly the abstract
//! counterexample trace the backward meta-analysis of Section 4 consumes.

use crate::traits::{call_binding_atoms, call_return_atom, ParametricAnalysis, TraceStep};
use pda_lang::{Atom, CallId, CallKind, MethodId, Node, NodeId, PointId, Program};
use pda_util::Deadline;
use std::collections::{BTreeSet, HashMap};

/// Resource limits for one tabulation run.
#[derive(Debug, Clone, Copy)]
pub struct RhsLimits {
    /// Maximum number of path-edge facts before giving up.
    pub max_facts: usize,
    /// Wall-clock deadline, polled cooperatively by the worklist loop.
    /// Defaults to [`Deadline::NEVER`].
    pub deadline: Deadline,
}

impl Default for RhsLimits {
    fn default() -> Self {
        RhsLimits { max_facts: 4_000_000, deadline: Deadline::NEVER }
    }
}

/// The tabulation exceeded its fact budget (the paper's timeout analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TooBig {
    /// Facts created before giving up.
    pub facts: usize,
}

impl std::fmt::Display for TooBig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tabulation exceeded fact budget at {} facts", self.facts)
    }
}

impl std::error::Error for TooBig {}

/// Why a tabulation run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The fact budget was exhausted — a *deterministic* size limit.
    TooBig(TooBig),
    /// The wall-clock deadline in [`RhsLimits`] expired.
    DeadlineExceeded,
}

impl From<TooBig> for Interrupt {
    fn from(e: TooBig) -> Self {
        Interrupt::TooBig(e)
    }
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::TooBig(e) => e.fmt(f),
            Interrupt::DeadlineExceeded => write!(f, "tabulation hit its wall-clock deadline"),
        }
    }
}

impl std::error::Error for Interrupt {}

type Sid = u32;
type Fact = (MethodId, Sid, NodeId, Sid);

#[derive(Debug, Clone)]
enum Reason {
    Seed,
    Flow {
        from_node: NodeId,
        from_state: Sid,
        steps: Vec<TraceStep>,
    },
    Return {
        call_node: NodeId,
        caller_pre: Sid,
        callee: MethodId,
        callee_entry: Sid,
        callee_exit: Sid,
        glue: Vec<TraceStep>,
    },
}

struct StateTable<S> {
    states: Vec<S>,
    ids: HashMap<S, Sid>,
}

impl<S: Clone + Eq + std::hash::Hash> StateTable<S> {
    fn new() -> Self {
        StateTable { states: Vec::new(), ids: HashMap::new() }
    }

    fn intern(&mut self, s: S) -> Sid {
        if let Some(&id) = self.ids.get(&s) {
            return id;
        }
        let id = self.states.len() as Sid;
        self.states.push(s.clone());
        self.ids.insert(s, id);
        id
    }

    fn get(&self, id: Sid) -> &S {
        &self.states[id as usize]
    }
}

/// The result of one interprocedural forward run: path edges, summaries,
/// and back-pointers for trace reconstruction.
///
/// The `Debug` representation summarizes sizes rather than dumping the
/// full fact table.
pub struct RhsResult<'a, S> {
    program: &'a Program,
    states: StateTable<S>,
    reasons: HashMap<Fact, Reason>,
    /// First caller of each non-root context, recorded at context
    /// creation, hence acyclic: `(callee, entry) → (caller method, caller
    /// entry, call node, pre-state)`.
    ctx_parent: HashMap<(MethodId, Sid), (MethodId, Sid, NodeId, Sid)>,
    d0: Sid,
}

/// Runs the tabulation for the `p` instance of `analysis` from initial
/// state `d0` at `program.main`'s entry.
///
/// `callees` resolves call sites (normally
/// [`pda_analysis::PointsTo::callees`] wrapped in a closure).
///
/// # Errors
///
/// Returns [`Interrupt::TooBig`] if the fact budget in `limits` is
/// exhausted, or [`Interrupt::DeadlineExceeded`] if its wall-clock
/// deadline expires mid-run.
pub fn run<'a, A: ParametricAnalysis>(
    program: &'a Program,
    analysis: &A,
    p: &A::Param,
    d0: A::State,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    limits: RhsLimits,
) -> Result<RhsResult<'a, A::State>, Interrupt> {
    let mut solver = Solver {
        program,
        analysis,
        p,
        callees,
        limits,
        states: StateTable::new(),
        reasons: HashMap::new(),
        worklist: Vec::new(),
        summaries: HashMap::new(),
        callers: HashMap::new(),
        ctx_parent: HashMap::new(),
    };
    let d0id = solver.states.intern(d0);
    let entry = program.methods[program.main].cfg.entry;
    solver.propagate((program.main, d0id, entry, d0id), Reason::Seed);
    solver.run()?;
    Ok(RhsResult {
        program,
        states: solver.states,
        reasons: solver.reasons,
        ctx_parent: solver.ctx_parent,
        d0: d0id,
    })
}

struct Solver<'a, A: ParametricAnalysis> {
    program: &'a Program,
    analysis: &'a A,
    p: &'a A::Param,
    callees: &'a dyn Fn(CallId) -> Vec<MethodId>,
    limits: RhsLimits,
    states: StateTable<A::State>,
    reasons: HashMap<Fact, Reason>,
    worklist: Vec<Fact>,
    /// `(method, entry) → exit states`.
    summaries: HashMap<(MethodId, Sid), BTreeSet<Sid>>,
    /// `(method, entry) → call sites waiting on its summaries`.
    /// Entries are `(caller method, caller entry, call node, pre-state)`.
    #[allow(clippy::type_complexity)]
    callers: HashMap<(MethodId, Sid), Vec<(MethodId, Sid, NodeId, Sid)>>,
    /// First caller per context (see [`RhsResult::ctx_parent`]).
    ctx_parent: HashMap<(MethodId, Sid), (MethodId, Sid, NodeId, Sid)>,
}

impl<A: ParametricAnalysis> Solver<'_, A> {
    fn propagate(&mut self, fact: Fact, reason: Reason) {
        if self.reasons.contains_key(&fact) {
            return;
        }
        self.reasons.insert(fact, reason);
        self.worklist.push(fact);
    }

    fn transfer(&mut self, a: &Atom, d: Sid) -> Sid {
        let out = self.analysis.transfer(self.p, a, self.states.get(d));
        self.states.intern(out)
    }

    fn run(&mut self) -> Result<(), Interrupt> {
        // Poll the wall clock every `DEADLINE_STRIDE` pops — including pop
        // zero, so an already-expired deadline aborts before any work and
        // a zero timeout behaves deterministically.
        const DEADLINE_STRIDE: u64 = 1024;
        let mut pops: u64 = 0;
        while let Some(fact) = self.worklist.pop() {
            if pops.is_multiple_of(DEADLINE_STRIDE) && self.limits.deadline.expired() {
                return Err(Interrupt::DeadlineExceeded);
            }
            pops += 1;
            if self.reasons.len() > self.limits.max_facts {
                return Err(TooBig { facts: self.reasons.len() }.into());
            }
            self.process(fact);
        }
        Ok(())
    }

    fn process(&mut self, fact: Fact) {
        let (m, de, n, d) = fact;
        let node = self.program.methods[m].cfg.nodes[n].clone();
        match node.kind {
            Node::Entry => {
                for &succ in &node.succs {
                    self.propagate(
                        (m, de, succ, d),
                        Reason::Flow { from_node: n, from_state: d, steps: Vec::new() },
                    );
                }
            }
            Node::Atom(a, point) => {
                let d2 = self.transfer(&a, d);
                let steps = vec![TraceStep { atom: a, point }];
                for &succ in &node.succs {
                    self.propagate(
                        (m, de, succ, d2),
                        Reason::Flow { from_node: n, from_state: d, steps: steps.clone() },
                    );
                }
            }
            Node::Exit => {
                if self.summaries.entry((m, de)).or_default().insert(d) {
                    for caller in self.callers.get(&(m, de)).cloned().unwrap_or_default() {
                        self.apply_summary(caller, m, de, d);
                    }
                }
            }
            Node::Call(c) => self.process_call(fact, c, &node.succs),
        }
    }

    /// The atoms executed at the call site itself, before any callee body:
    /// the `Invoke` type-state transition for virtual calls.
    fn call_site_steps(&self, c: CallId) -> Vec<TraceStep> {
        let info = &self.program.calls[c];
        match info.kind {
            CallKind::Virtual { recv, method } => vec![TraceStep {
                atom: Atom::Invoke { recv, method },
                point: info.point,
            }],
            CallKind::Static(_) => Vec::new(),
        }
    }

    fn process_call(&mut self, fact: Fact, c: CallId, succs: &[NodeId]) {
        let (m, de, n, d) = fact;
        let info = self.program.calls[c].clone();
        let site_steps = self.call_site_steps(c);
        let mut d1 = d;
        for s in &site_steps {
            d1 = self.transfer(&s.atom, d1);
        }
        let targets = (self.callees)(c);
        let with_body: Vec<MethodId> = targets
            .iter()
            .copied()
            .filter(|&t| self.program.methods[t].body.is_some())
            .collect();
        let bodyless = targets.len() != with_body.len() || targets.is_empty();

        // Bodyless targets (and unresolvable calls): havoc the result and
        // fall through directly.
        if bodyless {
            let mut steps = site_steps.clone();
            let mut d2 = d1;
            if let Some(dst) = info.dst {
                let a = Atom::Havoc { dst };
                d2 = self.transfer(&a, d2);
                steps.push(TraceStep { atom: a, point: info.point });
            }
            for &succ in succs {
                self.propagate(
                    (m, de, succ, d2),
                    Reason::Flow { from_node: n, from_state: d, steps: steps.clone() },
                );
            }
        }

        for callee in with_body {
            let binds = call_binding_atoms(self.program, &info, callee);
            let mut dentry = d1;
            for a in &binds {
                dentry = self.transfer(a, dentry);
            }
            let centry = self.program.methods[callee].cfg.entry;
            self.callers
                .entry((callee, dentry))
                .or_default()
                .push((m, de, n, d));
            self.ctx_parent
                .entry((callee, dentry))
                .or_insert((m, de, n, d));
            self.propagate((callee, dentry, centry, dentry), Reason::Seed);
            for dexit in self
                .summaries
                .get(&(callee, dentry))
                .cloned()
                .unwrap_or_default()
            {
                self.apply_summary((m, de, n, d), callee, dentry, dexit);
            }
        }
    }

    fn apply_summary(
        &mut self,
        caller: (MethodId, Sid, NodeId, Sid),
        callee: MethodId,
        callee_entry: Sid,
        callee_exit: Sid,
    ) {
        let (m, de, n, d_pre) = caller;
        let Node::Call(c) = self.program.methods[m].cfg.nodes[n].kind else {
            unreachable!("caller node must be a call");
        };
        let info = self.program.calls[c].clone();
        let mut glue = Vec::new();
        let mut d3 = callee_exit;
        if let Some(a) = call_return_atom(self.program, &info, callee) {
            d3 = self.transfer(&a, d3);
            glue.push(TraceStep { atom: a, point: info.point });
        }
        let succs = self.program.methods[m].cfg.nodes[n].succs.clone();
        for succ in succs {
            self.propagate(
                (m, de, succ, d3),
                Reason::Return {
                    call_node: n,
                    caller_pre: d_pre,
                    callee,
                    callee_entry,
                    callee_exit,
                    glue: glue.clone(),
                },
            );
        }
    }
}

impl<S> std::fmt::Debug for RhsResult<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RhsResult")
            .field("facts", &self.reasons.len())
            .field("states", &self.states.states.len())
            .field("contexts", &(self.ctx_parent.len() + 1))
            .finish()
    }
}

impl<S: Clone + Eq + std::hash::Hash> RhsResult<'_, S> {
    /// Number of path-edge facts discovered (a size/effort proxy reported
    /// by the experiment harness).
    pub fn n_facts(&self) -> usize {
        self.reasons.len()
    }

    /// Deterministic byte estimate of the retained fact/reason/state
    /// tables: entry counts × `size_of`, so identical runs charge
    /// identical amounts on every machine. Heap data *inside* client
    /// states is not visible from here, so this is a floor, not an exact
    /// measurement — the memory governor only needs charges to be
    /// deterministic and monotone in the work done.
    pub fn approx_bytes(&self) -> u64 {
        let fact_entry =
            std::mem::size_of::<Fact>().saturating_add(std::mem::size_of::<Reason>());
        let steps: usize = self
            .reasons
            .values()
            .map(|r| match r {
                Reason::Seed => 0,
                Reason::Flow { steps, .. } => steps.len(),
                Reason::Return { glue, .. } => glue.len(),
            })
            .sum();
        self.reasons
            .len()
            .saturating_mul(fact_entry)
            .saturating_add(steps.saturating_mul(std::mem::size_of::<TraceStep>()))
            .saturating_add(self.states.states.len().saturating_mul(std::mem::size_of::<S>()))
            .saturating_add(self.ctx_parent.len().saturating_mul(
                std::mem::size_of::<(MethodId, Sid)>()
                    + std::mem::size_of::<(MethodId, Sid, NodeId, Sid)>(),
            )) as u64
    }

    /// All abstract states arriving at `point` (over every context).
    pub fn states_at(&self, point: PointId) -> Vec<&S> {
        let info = &self.program.points[point];
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        for &(m, _, n, d) in self.reasons.keys() {
            if m == info.method && n == info.node && seen.insert(d) {
                out.push(self.states.get(d));
            }
        }
        out
    }

    /// Reconstructs a whole-program trace ending just before `point` with
    /// an arriving state satisfying `pred`, or `None` if no such fact was
    /// discovered.
    pub fn witness(&self, point: PointId, pred: &dyn Fn(&S) -> bool) -> Option<Vec<TraceStep>> {
        let info = &self.program.points[point];
        let fact = self
            .reasons
            .keys()
            .filter(|&&(m, _, n, d)| {
                m == info.method && n == info.node && pred(self.states.get(d))
            })
            .min_by_key(|&&(_, de, _, d)| (de, d))?;
        Some(self.full_trace(*fact))
    }

    /// The initial state id (for diagnostics).
    pub fn initial(&self) -> &S {
        self.states.get(self.d0)
    }

    /// Full trace from program start to `fact`: the caller chain down to
    /// `main`, then the local trace.
    fn full_trace(&self, fact: Fact) -> Vec<TraceStep> {
        let (m, de, _, _) = fact;
        let mut prefix = Vec::new();
        if m != self.program.main || de != self.d0 {
            // Follow the first registered caller; since a context's first
            // caller existed before the context did, this chain is acyclic.
            let (cm, cde, cnode, cpre) = self.ctx_parent[&(m, de)];
            prefix = self.full_trace((cm, cde, cnode, cpre));
            prefix.extend(self.enter_steps(cm, cnode, m));
        }
        prefix.extend(self.local_trace(fact));
        prefix
    }

    /// The call-site and binding steps for entering `callee` at the call
    /// node `cnode` of caller `cm`.
    fn enter_steps(&self, cm: MethodId, cnode: NodeId, callee: MethodId) -> Vec<TraceStep> {
        let Node::Call(c) = self.program.methods[cm].cfg.nodes[cnode].kind else {
            unreachable!("caller node must be a call");
        };
        let info = &self.program.calls[c];
        let mut steps = Vec::new();
        if let CallKind::Virtual { recv, method } = info.kind {
            steps.push(TraceStep { atom: Atom::Invoke { recv, method }, point: info.point });
        }
        for a in call_binding_atoms(self.program, info, callee) {
            steps.push(TraceStep { atom: a, point: info.point });
        }
        steps
    }

    /// Local trace within `fact`'s context, from the context entry.
    fn local_trace(&self, fact: Fact) -> Vec<TraceStep> {
        let (m, de, _, _) = fact;
        let entry = self.program.methods[m].cfg.entry;
        let mut rev_segments: Vec<Vec<TraceStep>> = Vec::new();
        let mut cur = fact;
        loop {
            let (cm, cde, n, d) = cur;
            debug_assert_eq!((cm, cde), (m, de));
            if n == entry && d == de {
                break;
            }
            match self.reasons.get(&cur).expect("fact without reason") {
                Reason::Seed => break,
                Reason::Flow { from_node, from_state, steps } => {
                    rev_segments.push(steps.clone());
                    cur = (m, de, *from_node, *from_state);
                }
                Reason::Return { call_node, caller_pre, callee, callee_entry, callee_exit, glue } => {
                    rev_segments.push(glue.clone());
                    let cexit = self.program.methods[*callee].cfg.exit;
                    rev_segments.push(self.local_trace((*callee, *callee_entry, cexit, *callee_exit)));
                    rev_segments.push(self.enter_steps(m, *call_node, *callee));
                    cur = (m, de, *call_node, *caller_pre);
                }
            }
        }
        rev_segments.reverse();
        rev_segments.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::{parse_program, VarId};
    use pda_analysis::PointsTo;
    use std::collections::BTreeSet;

    /// A toy analysis tracking which variables are definitely null.
    struct Nullness;

    impl ParametricAnalysis for Nullness {
        type Param = ();
        type State = BTreeSet<VarId>;
        fn transfer(&self, _p: &(), atom: &Atom, d: &Self::State) -> Self::State {
            let mut out = d.clone();
            match *atom {
                Atom::Null { dst } => {
                    out.insert(dst);
                }
                Atom::Copy { dst, src } => {
                    if out.contains(&src) {
                        out.insert(dst);
                    } else {
                        out.remove(&dst);
                    }
                }
                Atom::New { dst, .. } | Atom::Load { dst, .. } | Atom::GGet { dst, .. } | Atom::Havoc { dst } => {
                    out.remove(&dst);
                }
                _ => {}
            }
            out
        }
    }

    fn run_on(src: &str) -> (pda_lang::Program, PointsTo) {
        let p = parse_program(src).unwrap();
        let pa = PointsTo::analyze(&p);
        (p, pa)
    }

    fn states_at_query<'r>(
        res: &'r RhsResult<'_, BTreeSet<VarId>>,
        program: &pda_lang::Program,
        label: &str,
    ) -> Vec<&'r BTreeSet<VarId>> {
        let q = program.query_by_label(label).unwrap();
        res.states_at(program.queries[q].point)
    }

    #[test]
    fn straightline_flow() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn main() { var x, y; x = new C; y = x; query q: local y; }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let states = states_at_query(&res, &p, "q");
        assert_eq!(states.len(), 1);
        // x and y not null; $ret is null (entry init).
        let x = p.main_var("x").unwrap();
        let y = p.main_var("y").unwrap();
        assert!(!states[0].contains(&x) && !states[0].contains(&y));
    }

    #[test]
    fn branches_produce_both_states() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn main() {
                var x;
                if (*) { x = new C; } else { x = null; }
                query q: local x;
            }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let states = states_at_query(&res, &p, "q");
        let x = p.main_var("x").unwrap();
        let nullness: BTreeSet<bool> = states.iter().map(|s| s.contains(&x)).collect();
        assert_eq!(nullness, BTreeSet::from([false, true]));
    }

    #[test]
    fn flow_through_call_and_summary_reuse() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn id(a) { return a; }
            fn main() {
                var x, y, z;
                x = null;
                y = id(x);      // y null
                z = new C;
                z = id(z);      // z not null
                query q: local y;
            }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let states = states_at_query(&res, &p, "q");
        let y = p.main_var("y").unwrap();
        let z = p.main_var("z").unwrap();
        assert!(states.iter().all(|s| s.contains(&y)));
        assert!(states.iter().all(|s| !s.contains(&z)));
    }

    #[test]
    fn recursion_terminates() {
        let (p, pa) = run_on(
            r#"
            fn f(n) { if (*) { f(n); } }
            fn main() { var x; x = null; f(x); query q: local x; }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let states = states_at_query(&res, &p, "q");
        assert!(!states.is_empty());
        let x = p.main_var("x").unwrap();
        assert!(states.iter().all(|s| s.contains(&x)));
    }

    #[test]
    fn witness_replays_to_observed_state() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn mk() { var t; t = new C; return t; }
            fn main() {
                var x;
                x = null;
                while (*) { x = mk(); }
                query q: local x;
            }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let x = p.main_var("x").unwrap();
        let qpoint = p.queries[p.query_by_label("q").unwrap()].point;
        // Witness a state where x is NOT null (needs a loop iteration
        // through mk()).
        let tr = res
            .witness(qpoint, &|s: &BTreeSet<VarId>| !s.contains(&x))
            .expect("witness exists");
        // Replay the trace from the initial state; must end with x non-null.
        let a = Nullness;
        let mut d = BTreeSet::new();
        for step in &tr {
            d = a.transfer(&(), &step.atom, &d);
        }
        assert!(!d.contains(&x));
        // The trace goes through mk(): it contains a New and binding copies.
        assert!(tr.iter().any(|s| matches!(s.atom, Atom::New { .. })));
    }

    #[test]
    fn witness_none_for_impossible_state() {
        let (p, pa) = run_on(
            r#"
            fn main() { var x; x = null; query q: local x; }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let x = p.main_var("x").unwrap();
        let qpoint = p.queries[p.query_by_label("q").unwrap()].point;
        assert!(res.witness(qpoint, &|s: &BTreeSet<VarId>| !s.contains(&x)).is_none());
    }

    #[test]
    fn approx_bytes_is_positive_and_deterministic() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn main() { var x, y; x = new C; y = x; query q: local y; }
            "#,
        );
        let go = || {
            run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
                .unwrap()
        };
        let (a, b) = (go(), go());
        assert!(a.approx_bytes() > 0);
        assert_eq!(a.approx_bytes(), b.approx_bytes(), "charge must be run-invariant");
    }

    #[test]
    fn fact_budget_enforced() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn main() { var x, y; x = new C; y = x; query q: local y; }
            "#,
        );
        let limits = RhsLimits { max_facts: 2, ..RhsLimits::default() };
        let err = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), limits)
            .unwrap_err();
        let Interrupt::TooBig(too_big) = err else {
            panic!("expected TooBig, got {err:?}");
        };
        assert!(too_big.facts > 2);
    }

    #[test]
    fn expired_deadline_aborts_before_any_work() {
        let (p, pa) = run_on(
            r#"
            class C {}
            fn main() { var x, y; x = new C; y = x; query q: local y; }
            "#,
        );
        let limits = RhsLimits {
            deadline: pda_util::Deadline::after(std::time::Duration::ZERO),
            ..RhsLimits::default()
        };
        let err = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), limits)
            .unwrap_err();
        assert_eq!(err, Interrupt::DeadlineExceeded);
    }

    #[test]
    fn virtual_dispatch_enters_bodies_and_atomic_methods_havoc() {
        let (p, pa) = run_on(
            r#"
            class A { fn m(v) { return v; } }
            class F { fn get(); }
            fn main() {
                var a, f, r, x;
                a = new A;
                f = new F;
                x = null;
                r = a.m(x);     // body: r null
                query q1: local r;
                r = f.get();    // atomic: havoc, r not null
                query q2: local r;
            }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let r = p.main_var("r").unwrap();
        let s1 = states_at_query(&res, &p, "q1");
        assert!(s1.iter().all(|s| s.contains(&r)));
        let s2 = states_at_query(&res, &p, "q2");
        assert!(s2.iter().all(|s| !s.contains(&r)));
    }

    #[test]
    fn mutual_recursion_terminates_and_flows() {
        let (p, pa) = run_on(
            r#"
            fn even(n) { if (*) { odd(n); } }
            fn odd(n) { if (*) { even(n); } }
            fn main() { var x; x = null; even(x); query q: local x; }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let states = states_at_query(&res, &p, "q");
        assert!(!states.is_empty());
        let x = p.main_var("x").unwrap();
        assert!(states.iter().all(|s| s.contains(&x)));
    }

    #[test]
    fn multi_callee_dispatch_witnesses_one_target() {
        let (p, pa) = run_on(
            r#"
            class A { fn m(v) { return v; } }
            class B { fn m(v) { var t; t = null; return t; } }
            fn main() {
                var o, x, r;
                if (*) { o = new A; } else { o = new B; }
                x = new A;
                r = o.m(x);
                query q: local r;
            }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let r = p.main_var("r").unwrap();
        let qpoint = p.queries[p.query_by_label("q").unwrap()].point;
        // Both outcomes reachable: r null (via B) and r non-null (via A).
        let tr_null = res.witness(qpoint, &|s: &BTreeSet<VarId>| s.contains(&r)).unwrap();
        let tr_nonnull = res.witness(qpoint, &|s: &BTreeSet<VarId>| !s.contains(&r)).unwrap();
        for (tr, want_null) in [(tr_null, true), (tr_nonnull, false)] {
            let d = crate::traits::replay(&Nullness, &(), &tr, &BTreeSet::new());
            assert_eq!(d.contains(&r), want_null, "witness replay mismatch");
        }
    }

    #[test]
    fn states_at_unreached_point_is_empty() {
        let (p, pa) = run_on(
            r#"
            fn dead() { var y; y = null; query q: local y; }
            fn main() { var x; x = null; }
            "#,
        );
        let res = run(&p, &Nullness, &(), BTreeSet::new(), &|c| pa.callees(c).to_vec(), RhsLimits::default())
            .unwrap();
        let qpoint = p.queries[p.query_by_label("q").unwrap()].point;
        assert!(res.states_at(qpoint).is_empty());
        assert!(res.witness(qpoint, &|_s: &BTreeSet<VarId>| true).is_none());
    }
}

