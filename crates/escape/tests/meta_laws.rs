//! Property tests of the meta-analysis operators instantiated at the
//! thread-escape primitive alphabet: `simplify` preserves semantics,
//! `approx` under-approximates while retaining the current `(p, d)`, and
//! DNF conversion is semantics-preserving.

use pda_escape::{Cell, Env, EscPrim, Val};
use pda_lang::{FieldId, SiteId, VarId};
use pda_meta::{approx, simplify, BeamConfig, Formula};
use pda_util::BitSet;
use proptest::prelude::*;

const N_VARS: usize = 2;
const N_FIELDS: usize = 1;
const N_SITES: usize = 2;

fn arb_prim() -> impl Strategy<Value = EscPrim> {
    prop_oneof![
        (0..N_VARS as u32, 0..3u8).prop_map(|(v, o)| EscPrim::CellIs(
            Cell::Var(VarId(v)),
            Val::ALL[o as usize]
        )),
        (0..N_FIELDS as u32, 0..3u8).prop_map(|(f, o)| EscPrim::CellIs(
            Cell::Field(FieldId(f)),
            Val::ALL[o as usize]
        )),
        (0..N_SITES as u32, any::<bool>()).prop_map(|(h, b)| EscPrim::SiteIs(SiteId(h), b)),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula<EscPrim>> {
    let leaf = prop_oneof![
        arb_prim().prop_map(Formula::Prim),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            inner.prop_map(|f| Formula::Not(Box::new(f))),
        ]
    })
}

fn all_envs() -> Vec<Env> {
    let n = N_VARS + N_FIELDS;
    (0..3usize.pow(n as u32))
        .map(|mut code| {
            let mut d = Env::initial(N_VARS, N_FIELDS);
            for i in 0..n {
                let v = Val::ALL[code % 3];
                code /= 3;
                let cell = if i < N_VARS {
                    Cell::Var(VarId(i as u32))
                } else {
                    Cell::Field(FieldId((i - N_VARS) as u32))
                };
                d.set(cell, v);
            }
            d
        })
        .collect()
}

fn all_params() -> Vec<BitSet> {
    (0..1u32 << N_SITES)
        .map(|bits| BitSet::from_iter(N_SITES, (0..N_SITES).filter(|i| (bits >> i) & 1 == 1)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn to_dnf_and_simplify_preserve_semantics(f in arb_formula()) {
        let cfg = BeamConfig::exhaustive();
        let dnf = pda_meta::approx::to_dnf(&f, &cfg, &|_| true);
        let simp = simplify(dnf.clone());
        for p in all_params() {
            for d in all_envs() {
                prop_assert_eq!(f.holds(&p, &d), dnf.holds(&p, &d), "toDNF changed {}", f);
                prop_assert_eq!(dnf.holds(&p, &d), simp.holds(&p, &d), "simplify changed {}", f);
            }
        }
    }

    #[test]
    fn approx_underapproximates_and_keeps_membership(
        f in arb_formula(),
        k in 1usize..4,
        pbits in 0u32..4,
        denc in 0usize..27,
    ) {
        let cfg = BeamConfig::with_k(k);
        let p = BitSet::from_iter(N_SITES, (0..N_SITES).filter(|i| (pbits >> i) & 1 == 1));
        let d = all_envs()[denc].clone();
        let dnf = pda_meta::approx::to_dnf(&f, &BeamConfig::exhaustive(), &|_| true);
        let inside = dnf.holds(&p, &d);
        match approx(&p, &d, dnf.clone(), &cfg) {
            None => prop_assert!(!inside, "approx lost a member"),
            Some(out) => {
                prop_assert!(inside, "approx invented membership");
                prop_assert!(out.holds(&p, &d), "approx dropped the current (p, d)");
                prop_assert!(out.len() <= k.max(1), "beam width exceeded");
                // Under-approximation: σ(out) ⊆ σ(dnf).
                for p2 in all_params() {
                    for d2 in all_envs() {
                        if out.holds(&p2, &d2) {
                            prop_assert!(dnf.holds(&p2, &d2), "approx over-approximated {}", f);
                        }
                    }
                }
            }
        }
    }
}
