//! Randomized tests of the meta-analysis operators instantiated at the
//! thread-escape primitive alphabet: `simplify` preserves semantics,
//! `approx` under-approximates while retaining the current `(p, d)`, and
//! DNF conversion is semantics-preserving.
//!
//! The cases are drawn with the in-tree [`SplitMix64`] PRNG from fixed
//! seeds, so every run checks the same deterministic corpus.

use pda_escape::{Cell, Env, EscPrim, Val};
use pda_lang::{FieldId, SiteId, VarId};
use pda_meta::{approx, simplify, BeamConfig, Formula};
use pda_util::{BitSet, SplitMix64};

const N_VARS: usize = 2;
const N_FIELDS: usize = 1;
const N_SITES: usize = 2;

fn random_prim(rng: &mut SplitMix64) -> EscPrim {
    match rng.gen_range(0, 3) {
        0 => EscPrim::CellIs(
            Cell::Var(VarId(rng.gen_range(0, N_VARS) as u32)),
            Val::ALL[rng.gen_range(0, 3)],
        ),
        1 => EscPrim::CellIs(
            Cell::Field(FieldId(rng.gen_range(0, N_FIELDS) as u32)),
            Val::ALL[rng.gen_range(0, 3)],
        ),
        _ => EscPrim::SiteIs(SiteId(rng.gen_range(0, N_SITES) as u32), rng.gen_bool(0.5)),
    }
}

fn random_formula(rng: &mut SplitMix64, depth: u32) -> Formula<EscPrim> {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0, 5) {
            0 => Formula::True,
            1 => Formula::False,
            _ => Formula::Prim(random_prim(rng)),
        };
    }
    match rng.gen_range(0, 3) {
        0 => Formula::And(
            (0..rng.gen_range(1, 3))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        1 => Formula::Or(
            (0..rng.gen_range(1, 3))
                .map(|_| random_formula(rng, depth - 1))
                .collect(),
        ),
        _ => Formula::Not(Box::new(random_formula(rng, depth - 1))),
    }
}

fn all_envs() -> Vec<Env> {
    let n = N_VARS + N_FIELDS;
    (0..3usize.pow(n as u32))
        .map(|mut code| {
            let mut d = Env::initial(N_VARS, N_FIELDS);
            for i in 0..n {
                let v = Val::ALL[code % 3];
                code /= 3;
                let cell = if i < N_VARS {
                    Cell::Var(VarId(i as u32))
                } else {
                    Cell::Field(FieldId((i - N_VARS) as u32))
                };
                d.set(cell, v);
            }
            d
        })
        .collect()
}

fn all_params() -> Vec<BitSet> {
    (0..1u32 << N_SITES)
        .map(|bits| BitSet::from_iter(N_SITES, (0..N_SITES).filter(|i| (bits >> i) & 1 == 1)))
        .collect()
}

#[test]
fn to_dnf_and_simplify_preserve_semantics() {
    let mut rng = SplitMix64::new(0xd9f);
    for _ in 0..128 {
        let f = random_formula(&mut rng, 3);
        let cfg = BeamConfig::exhaustive();
        let dnf = pda_meta::approx::to_dnf(&f, &cfg, &|_| true);
        let simp = simplify(dnf.clone());
        for p in all_params() {
            for d in all_envs() {
                assert_eq!(f.holds(&p, &d), dnf.holds(&p, &d), "toDNF changed {f}");
                assert_eq!(dnf.holds(&p, &d), simp.holds(&p, &d), "simplify changed {f}");
            }
        }
    }
}

#[test]
fn approx_underapproximates_and_keeps_membership() {
    let mut rng = SplitMix64::new(0xa99);
    for _ in 0..128 {
        let f = random_formula(&mut rng, 3);
        let k = rng.gen_range(1, 4);
        let pbits = rng.gen_range(0, 4) as u32;
        let denc = rng.gen_range(0, 27);
        let cfg = BeamConfig::with_k(k);
        let p = BitSet::from_iter(N_SITES, (0..N_SITES).filter(|i| (pbits >> i) & 1 == 1));
        let d = all_envs()[denc].clone();
        let dnf = pda_meta::approx::to_dnf(&f, &BeamConfig::exhaustive(), &|_| true);
        let inside = dnf.holds(&p, &d);
        match approx(&p, &d, dnf.clone(), &cfg) {
            None => assert!(!inside, "approx lost a member"),
            Some(out) => {
                assert!(inside, "approx invented membership");
                assert!(out.holds(&p, &d), "approx dropped the current (p, d)");
                assert!(out.len() <= k.max(1), "beam width exceeded");
                // Under-approximation: σ(out) ⊆ σ(dnf).
                for p2 in all_params() {
                    for d2 in all_envs() {
                        if out.holds(&p2, &d2) {
                            assert!(dnf.holds(&p2, &d2), "approx over-approximated {f}");
                        }
                    }
                }
            }
        }
    }
}
