//! Case tables: each atomic command as a disjoint, total list of guarded
//! symbolic updates, from which both the forward transfer (Figure 5) and
//! the backward weakest preconditions (Figure 11) are derived.

use crate::domain::{Cell, Env, EscPrim, Val};
use pda_lang::Atom;
use pda_meta::Formula;
use pda_util::BitSet;

/// A symbolic right-hand side for one cell update.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Rhs {
    /// A constant value.
    Const(Val),
    /// Copy of another (pre-state) cell.
    Copy(Cell),
    /// The abstraction's summary for a site: `L` if `p(h) = L` else `E`.
    Site(pda_lang::SiteId),
}

/// The effect of one case.
#[derive(Debug, Clone)]
pub(crate) enum Effect {
    /// Point updates (reads happen in the pre-state).
    Assign(Vec<(Cell, Rhs)>),
    /// The `esc` operator: an `L` object may have escaped.
    Esc,
}

/// A guard: conjunction of `d(cell) ∈ value-set` tests (mask bits from
/// [`Val::mask`]). Repeated cells intersect.
pub(crate) type Guard = Vec<(Cell, u8)>;

/// One guarded case.
#[derive(Debug, Clone)]
pub(crate) struct Case {
    pub guard: Guard,
    pub effect: Effect,
}

const NE: u8 = 0b101; // N or E

fn guard_matches(guard: &Guard, d: &Env) -> bool {
    guard.iter().all(|&(c, mask)| d.get(c).mask() & mask != 0)
}

/// The case table for `atom`. Cases are pairwise disjoint and total
/// (checked by tests over all small environments).
pub(crate) fn cases(atom: &Atom) -> Vec<Case> {
    let id = || vec![Case { guard: Vec::new(), effect: Effect::Assign(Vec::new()) }];
    match *atom {
        Atom::New { dst, site } => vec![Case {
            guard: Vec::new(),
            effect: Effect::Assign(vec![(Cell::Var(dst), Rhs::Site(site))]),
        }],
        Atom::Copy { dst, src } => vec![Case {
            guard: Vec::new(),
            effect: Effect::Assign(vec![(Cell::Var(dst), Rhs::Copy(Cell::Var(src)))]),
        }],
        Atom::Null { dst } => vec![Case {
            guard: Vec::new(),
            effect: Effect::Assign(vec![(Cell::Var(dst), Rhs::Const(Val::N))]),
        }],
        // Reading a global, or the result of an unanalyzed call: the
        // value may refer to anything another thread can reach.
        Atom::GGet { dst, .. } | Atom::Havoc { dst } => vec![Case {
            guard: Vec::new(),
            effect: Effect::Assign(vec![(Cell::Var(dst), Rhs::Const(Val::E))]),
        }],
        // Publishing via a global or starting a thread on the object:
        // if it was L, everything L may now be shared.
        Atom::GSet { src, .. } | Atom::Spawn { src } => vec![
            Case { guard: vec![(Cell::Var(src), Val::L.mask())], effect: Effect::Esc },
            Case {
                guard: vec![(Cell::Var(src), NE)],
                effect: Effect::Assign(Vec::new()),
            },
        ],
        Atom::Load { dst, base, field } => vec![
            Case {
                guard: vec![(Cell::Var(base), Val::L.mask())],
                effect: Effect::Assign(vec![(Cell::Var(dst), Rhs::Copy(Cell::Field(field)))]),
            },
            Case {
                guard: vec![(Cell::Var(base), NE)],
                effect: Effect::Assign(vec![(Cell::Var(dst), Rhs::Const(Val::E))]),
            },
        ],
        Atom::Store { base, field, src } => {
            let b = Cell::Var(base);
            let s = Cell::Var(src);
            let f = Cell::Field(field);
            let l = Val::L.mask();
            let n = Val::N.mask();
            let e = Val::E.mask();
            vec![
                // Storing into an L object: join src into the collective
                // field summary.
                Case {
                    guard: vec![(b, l), (f, n), (s, l)],
                    effect: Effect::Assign(vec![(f, Rhs::Const(Val::L))]),
                },
                Case {
                    guard: vec![(b, l), (f, l), (s, n)],
                    effect: Effect::Assign(Vec::new()), // {L, N} joins to L
                },
                Case {
                    guard: vec![(b, l), (f, n), (s, e)],
                    effect: Effect::Assign(vec![(f, Rhs::Const(Val::E))]),
                },
                Case {
                    guard: vec![(b, l), (f, e), (s, n)],
                    effect: Effect::Assign(Vec::new()), // {E, N} joins to E
                },
                Case { guard: vec![(b, l), (f, n), (s, n)], effect: Effect::Assign(Vec::new()) },
                Case { guard: vec![(b, l), (f, l), (s, l)], effect: Effect::Assign(Vec::new()) },
                Case { guard: vec![(b, l), (f, e), (s, e)], effect: Effect::Assign(Vec::new()) },
                // L and E values through the same field cannot be
                // summarized: escape (Figure 5's {L, E} case).
                Case { guard: vec![(b, l), (f, l), (s, e)], effect: Effect::Esc },
                Case { guard: vec![(b, l), (f, e), (s, l)], effect: Effect::Esc },
                // Storing an L object into an escaped (or unknown) base
                // escapes it.
                Case { guard: vec![(b, NE), (s, l)], effect: Effect::Esc },
                Case { guard: vec![(b, NE), (s, NE)], effect: Effect::Assign(Vec::new()) },
            ]
        }
        Atom::Invoke { .. } | Atom::Nop => id(),
    }
}

/// Forward transfer: interpret the (unique) matching case.
pub(crate) fn apply(p: &BitSet, atom: &Atom, d: &Env) -> Env {
    let table = cases(atom);
    let case = table
        .iter()
        .find(|c| guard_matches(&c.guard, d))
        .expect("case table must be total");
    debug_assert_eq!(
        table.iter().filter(|c| guard_matches(&c.guard, d)).count(),
        1,
        "case table must be disjoint for {atom:?}"
    );
    match &case.effect {
        Effect::Esc => d.escape_all(),
        Effect::Assign(assigns) => {
            let mut out = d.clone();
            for &(cell, rhs) in assigns {
                let v = match rhs {
                    Rhs::Const(v) => v,
                    Rhs::Copy(c) => d.get(c),
                    Rhs::Site(h) => {
                        if p.contains(h.0 as usize) {
                            Val::L
                        } else {
                            Val::E
                        }
                    }
                };
                out.set(cell, v);
            }
            out
        }
    }
}

/// Weakest precondition of `CellIs(cell, val)` across `atom`, derived
/// from the same case table: the union over cases of
/// `guard ∧ (post-condition pulled back through the update)`.
pub(crate) fn wp_cell(atom: &Atom, cell: Cell, val: Val) -> Formula<EscPrim> {
    use Formula as F;
    let mut branches = Vec::new();
    for case in cases(atom) {
        let guard_f = F::and(
            case.guard
                .iter()
                .map(|&(c, mask)| {
                    F::or(
                        Val::ALL
                            .iter()
                            .filter(|v| v.mask() & mask != 0)
                            .map(|&v| F::prim(EscPrim::CellIs(c, v)))
                            .collect(),
                    )
                })
                .collect(),
        );
        let post = match &case.effect {
            Effect::Esc => match (cell, val) {
                (Cell::Var(_), Val::N) => F::prim(EscPrim::CellIs(cell, Val::N)),
                (Cell::Var(_), Val::E) => F::or(vec![
                    F::prim(EscPrim::CellIs(cell, Val::L)),
                    F::prim(EscPrim::CellIs(cell, Val::E)),
                ]),
                (Cell::Var(_), Val::L) => F::False,
                (Cell::Field(_), Val::N) => F::True,
                (Cell::Field(_), _) => F::False,
            },
            Effect::Assign(assigns) => match assigns.iter().find(|(c, _)| *c == cell) {
                None => F::prim(EscPrim::CellIs(cell, val)),
                Some(&(_, rhs)) => match rhs {
                    Rhs::Const(v) => {
                        if v == val {
                            F::True
                        } else {
                            F::False
                        }
                    }
                    Rhs::Copy(c2) => F::prim(EscPrim::CellIs(c2, val)),
                    Rhs::Site(h) => match val {
                        Val::L => F::prim(EscPrim::SiteIs(h, true)),
                        Val::E => F::prim(EscPrim::SiteIs(h, false)),
                        Val::N => F::False,
                    },
                },
            },
        };
        branches.push(F::and(vec![guard_f, post]));
    }
    F::or(branches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::{FieldId, SiteId, VarId};

    fn all_envs(n_vars: usize, n_fields: usize) -> Vec<Env> {
        let n = n_vars + n_fields;
        let mut out = Vec::new();
        for mut code in 0..3usize.pow(n as u32) {
            let mut d = Env::initial(n_vars, n_fields);
            for i in 0..n {
                let v = Val::ALL[code % 3];
                code /= 3;
                let cell = if i < n_vars {
                    Cell::Var(VarId(i as u32))
                } else {
                    Cell::Field(FieldId((i - n_vars) as u32))
                };
                d.set(cell, v);
            }
            out.push(d);
        }
        out
    }

    fn sample_atoms() -> Vec<Atom> {
        let v0 = VarId(0);
        let v1 = VarId(1);
        let f0 = FieldId(0);
        vec![
            Atom::New { dst: v0, site: SiteId(0) },
            Atom::New { dst: v1, site: SiteId(1) },
            Atom::Copy { dst: v0, src: v1 },
            Atom::Copy { dst: v1, src: v1 },
            Atom::Null { dst: v0 },
            Atom::GGet { dst: v1, global: pda_lang::GlobalId(0) },
            Atom::GSet { global: pda_lang::GlobalId(0), src: v0 },
            Atom::Spawn { src: v1 },
            Atom::Havoc { dst: v0 },
            Atom::Load { dst: v0, base: v1, field: f0 },
            Atom::Load { dst: v1, base: v1, field: f0 },
            Atom::Store { base: v0, field: f0, src: v1 },
            Atom::Store { base: v1, field: f0, src: v1 }, // base == src
            Atom::Invoke { recv: v0, method: pda_lang::NameId(0) },
            Atom::Nop,
        ]
    }

    /// Figure 5 requires a deterministic transfer: exactly one case of
    /// every table applies to every state.
    #[test]
    fn tables_are_disjoint_and_total() {
        for atom in sample_atoms() {
            let table = cases(&atom);
            for d in all_envs(2, 1) {
                let n = table.iter().filter(|c| guard_matches(&c.guard, &d)).count();
                assert_eq!(n, 1, "atom {atom:?} has {n} matching cases for {d:?}");
            }
        }
    }

    #[test]
    fn store_into_local_joins_field_summary() {
        let p = BitSet::new(2);
        let v0 = Cell::Var(VarId(0));
        let v1 = Cell::Var(VarId(1));
        let f0 = Cell::Field(FieldId(0));
        let mut d = Env::initial(2, 1);
        d.set(v0, Val::L);
        d.set(v1, Val::L);
        let out = apply(&p, &Atom::Store { base: VarId(0), field: FieldId(0), src: VarId(1) }, &d);
        assert_eq!(out.get(f0), Val::L); // {N, L} joins to L

        // Now store an E value through the same field: mixed {L, E} escapes.
        let mut d2 = out;
        d2.set(v1, Val::E);
        let out2 = apply(&p, &Atom::Store { base: VarId(0), field: FieldId(0), src: VarId(1) }, &d2);
        assert_eq!(out2.get(v0), Val::E); // esc flips locals
        assert_eq!(out2.get(f0), Val::N); // esc resets fields
    }

    #[test]
    fn store_into_escaped_base_escapes_source() {
        let p = BitSet::new(2);
        let mut d = Env::initial(2, 1);
        d.set(Cell::Var(VarId(0)), Val::E);
        d.set(Cell::Var(VarId(1)), Val::L);
        let out = apply(&p, &Atom::Store { base: VarId(0), field: FieldId(0), src: VarId(1) }, &d);
        assert_eq!(out.get(Cell::Var(VarId(1))), Val::E);
    }

    #[test]
    fn load_from_escaped_base_gives_e() {
        let p = BitSet::new(2);
        let mut d = Env::initial(2, 1);
        d.set(Cell::Var(VarId(1)), Val::E);
        d.set(Cell::Field(FieldId(0)), Val::L);
        let out = apply(&p, &Atom::Load { dst: VarId(0), base: VarId(1), field: FieldId(0) }, &d);
        assert_eq!(out.get(Cell::Var(VarId(0))), Val::E);
    }

    #[test]
    fn new_uses_parameter() {
        let d = Env::initial(1, 0);
        let a = Atom::New { dst: VarId(0), site: SiteId(0) };
        let p_l = BitSet::from_iter(1, [0]);
        let p_e = BitSet::new(1);
        assert_eq!(apply(&p_l, &a, &d).get(Cell::Var(VarId(0))), Val::L);
        assert_eq!(apply(&p_e, &a, &d).get(Cell::Var(VarId(0))), Val::E);
    }

    #[test]
    fn gset_of_local_escapes_everything() {
        let p = BitSet::new(1);
        let mut d = Env::initial(2, 1);
        d.set(Cell::Var(VarId(0)), Val::L);
        d.set(Cell::Var(VarId(1)), Val::L);
        d.set(Cell::Field(FieldId(0)), Val::L);
        let out = apply(&p, &Atom::GSet { global: pda_lang::GlobalId(0), src: VarId(0) }, &d);
        assert_eq!(out.get(Cell::Var(VarId(0))), Val::E);
        assert_eq!(out.get(Cell::Var(VarId(1))), Val::E);
        assert_eq!(out.get(Cell::Field(FieldId(0))), Val::N);
        // Publishing an already-escaped or null value is a no-op.
        let mut d2 = Env::initial(2, 1);
        d2.set(Cell::Var(VarId(0)), Val::E);
        d2.set(Cell::Var(VarId(1)), Val::L);
        let out2 = apply(&p, &Atom::GSet { global: pda_lang::GlobalId(0), src: VarId(0) }, &d2);
        assert_eq!(out2.get(Cell::Var(VarId(1))), Val::L);
    }

    /// Requirement (2), exhaustively: σ(wp_cell(a, c, o)) is the exact
    /// preimage of `{d | d(c) = o}` under the forward transfer, for all
    /// sampled atoms, cells, values, parameters, and environments.
    #[test]
    fn wp_is_exact_exhaustively() {
        use pda_meta::Primitive as _;
        let cells = [Cell::Var(VarId(0)), Cell::Var(VarId(1)), Cell::Field(FieldId(0))];
        for atom in sample_atoms() {
            for &cell in &cells {
                for &val in &Val::ALL {
                    let wp = wp_cell(&atom, cell, val);
                    for pbits in 0..4u32 {
                        let p = BitSet::from_iter(2, (0..2).filter(|i| (pbits >> i) & 1 == 1));
                        for d in all_envs(2, 1) {
                            let post = apply(&p, &atom, &d);
                            let want = EscPrim::CellIs(cell, val).holds(&p, &post);
                            let got = wp.holds(&p, &d);
                            assert_eq!(
                                want, got,
                                "wp mismatch: atom {atom:?}, {cell}.{val}, p={p}, d={d:?}, wp={wp}"
                            );
                        }
                    }
                }
            }
        }
    }
}
