//! The parametric **thread-escape analysis** client (the paper's Figures 5
//! and 11, after Naik et al.).
//!
//! A heap object is *thread-local* when it is reachable from at most one
//! thread. The analysis summarizes objects with two abstract locations:
//! `L` (definitely thread-local, or null) and `E` (possibly escaping, or
//! null), plus `N` for definitely-null values. The abstraction parameter
//! maps each allocation site to `L` or `E`; mapping more sites to `L` is
//! more precise but more expensive (the paper's cost preorder counts
//! `L`-sites). The abstract state is an environment over local variables
//! and (the fields of `L`-summarized objects collectively) object fields.
//!
//! The crucial transfer function is `esc(d)` — invoked when an `L` object
//! may escape (stored into a global, into an escaped object, or passed to
//! a spawned thread): every non-null local flips to `E` and all field
//! knowledge resets, the "dramatic information loss" the paper describes,
//! and precisely what makes the *choice* of `L`-sites matter.
//!
//! # Design note
//!
//! Rather than transcribing the paper's Figure 11 backward transfer
//! functions literally, both directions are generated from one
//! *case table* per atomic command (`cases`): a list of disjoint, total
//! guarded symbolic updates. The forward transfer interprets the table;
//! the weakest precondition is derived mechanically from the same table.
//! Exhaustive tests check the two against each other (requirement (2) of
//! the paper's framework) and the table's disjointness/totality.

#![warn(missing_docs)]

mod cases;
mod client;
mod domain;

pub use client::EscapeClient;
pub use domain::{Cell, Env, EscPrim, Val};
