//! The thread-escape [`TracerClient`] and its query generators.

use crate::cases;
use crate::domain::{Cell, Env, EscPrim, Val};
use pda_lang::{Atom, Node, PointId, Program, QueryId, QueryKind, VarId};
use pda_meta::Formula;
use pda_tracer::{Query, QueryLimits, TracerClient};
use pda_util::BitSet;

/// The thread-escape client: one instance answers every `local` query of
/// a program (the forward run is shared across queries, unlike the
/// per-site type-state client).
///
/// The abstraction parameter is a [`BitSet`] over allocation sites —
/// bit set means the site is summarized by `L` — with cost equal to the
/// number of `L` sites, the paper's preorder.
#[derive(Debug, Clone)]
pub struct EscapeClient {
    n_vars: usize,
    n_fields: usize,
    n_sites: usize,
}

impl EscapeClient {
    /// Creates the client for `program`.
    pub fn new(program: &Program) -> EscapeClient {
        EscapeClient {
            n_vars: program.vars.len(),
            n_fields: program.fields.len(),
            n_sites: program.sites.len(),
        }
    }

    /// Adapts to the extended variable universe of an inlined program
    /// (for the exact term engine). Parameters are site-based, so only
    /// the environment width changes.
    pub fn with_extended_vars(mut self, inlined: &pda_lang::InlinedProgram) -> Self {
        self.n_vars = inlined.n_vars;
        self
    }

    /// Builds the TRACER query for a source-level `query l: local x`:
    /// failure is `d(x) = E` at the point.
    ///
    /// # Panics
    ///
    /// Panics if the source query is not a `local` query.
    pub fn local_query(&self, program: &Program, q: QueryId) -> Query<EscPrim> {
        let decl = &program.queries[q];
        let QueryKind::Local { var } = decl.kind else {
            panic!("local_query called on a non-local query");
        };
        Query {
            point: decl.point,
            not_q: Formula::prim(EscPrim::CellIs(Cell::Var(var), Val::E)),
            source: Some(q),
            limits: QueryLimits::default(),
        }
    }

    /// A thread-escape query at an arbitrary point: prove the object
    /// `var` points to is thread-local there.
    pub fn access_query(&self, point: PointId, var: VarId) -> Query<EscPrim> {
        Query {
            point,
            not_q: Formula::prim(EscPrim::CellIs(Cell::Var(var), Val::E)),
            source: None,
            limits: QueryLimits::default(),
        }
    }

    /// Generates the paper's evaluation queries: one per instance-field
    /// access (`v = w.f` queries `w`; `w.f = v` queries `w`), restricted
    /// to the given methods (typically the reachable application code).
    pub fn accesses(
        program: &Program,
        methods: impl IntoIterator<Item = pda_lang::MethodId>,
    ) -> Vec<(PointId, VarId)> {
        let mut out = Vec::new();
        for m in methods {
            for (_, node) in program.methods[m].cfg.iter() {
                if let Node::Atom(
                    Atom::Load { base, .. } | Atom::Store { base, .. },
                    point,
                ) = &node.kind
                {
                    out.push((*point, *base));
                }
            }
        }
        out
    }
}

impl TracerClient for EscapeClient {
    type Param = BitSet;
    type State = Env;
    type Prim = EscPrim;

    fn transfer(&self, p: &BitSet, atom: &Atom, d: &Env) -> Env {
        cases::apply(p, atom, d)
    }

    fn wp_prim(&self, atom: &Atom, prim: &EscPrim) -> Formula<EscPrim> {
        match *prim {
            EscPrim::SiteIs(..) => Formula::prim(*prim), // parameters never change
            EscPrim::CellIs(cell, val) => match atom {
                // Identity-table atoms (one case, empty guard, no
                // assigns): `wp_cell` folds to exactly the prim itself,
                // so skip building the case table. Traces are
                // invoke-heavy, which makes this the dominant share of
                // all universe-closure wp calls.
                Atom::Invoke { .. } | Atom::Nop => Formula::prim(*prim),
                _ => cases::wp_cell(atom, cell, val),
            },
        }
    }

    fn n_atoms(&self) -> usize {
        self.n_sites
    }

    fn param_of_model(&self, assignment: &[bool]) -> BitSet {
        BitSet::from_iter(
            self.n_sites,
            assignment
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| i),
        )
    }

    fn initial_state(&self) -> Env {
        Env::initial(self.n_vars, self.n_fields)
    }
}

impl pda_tracer::CoarseAtoms for EscapeClient {
    /// Coarse refinement for the escape abstraction: every allocation
    /// site the counterexample mentions gets mapped to `L`.
    fn coarse_atoms(&self, atom: &Atom) -> Vec<usize> {
        match *atom {
            Atom::New { site, .. } => vec![site.0 as usize],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_analysis::PointsTo;
    use pda_tracer::{brute_force_optimum, solve_query, Outcome, TracerConfig};

    /// The example of Figure 6: `u = new h1; v = new h2; v.f = u; local(u)?`
    const FIG6: &str = r#"
        class Pair { field f; }
        fn main() {
            var u, v;
            u = new Pair;
            v = new Pair;
            v.f = u;
            query pc: local u;
        }
    "#;

    fn solve(src: &str, label: &str) -> (Program, pda_tracer::QueryResult<BitSet>) {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = EscapeClient::new(&program);
        let q = program.query_by_label(label).unwrap();
        let query = client.local_query(&program, q);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        (program, r)
    }

    #[test]
    fn figure6_cheapest_maps_both_sites_to_l() {
        let (_, r) = solve(FIG6, "pc");
        match r.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(cost, 2, "paper: cheapest is [h1↦L, h2↦L]");
                assert!(param.contains(0) && param.contains(1));
            }
            other => panic!("expected proof, got {other:?}"),
        }
        // Paper (Figure 6(b)): with k=1 under-approximation this takes
        // iterations p=[E,E], p=[L,E], p=[L,L]; our default k=5 may learn
        // faster but never more than 3 forward runs.
        assert!(r.iterations <= 3);
    }

    #[test]
    fn figure6_agrees_with_brute_force() {
        let program = pda_lang::parse_program(FIG6).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = EscapeClient::new(&program);
        let q = program.query_by_label("pc").unwrap();
        let query = client.local_query(&program, q);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let truth = brute_force_optimum(
            &program,
            &callees,
            &client,
            &query,
            16,
            pda_dataflow::RhsLimits::default(),
        )
        .expect("provable");
        assert_eq!(truth.1, 2);
    }

    #[test]
    fn global_publication_is_impossible_to_prove() {
        let (_, r) = solve(
            r#"
            global g;
            class C {}
            fn main() {
                var x;
                x = new C;
                g = x;
                query q: local x;
            }
            "#,
            "q",
        );
        assert_eq!(r.outcome, Outcome::Impossible);
    }

    #[test]
    fn spawn_escapes_receiver() {
        let (_, r) = solve(
            r#"
            class C {}
            fn main() {
                var x;
                x = new C;
                spawn x;
                query q: local x;
            }
            "#,
            "q",
        );
        assert_eq!(r.outcome, Outcome::Impossible);
    }

    #[test]
    fn unrelated_sites_stay_out_of_the_abstraction() {
        let (program, r) = solve(
            r#"
            global g;
            class C { field f; }
            fn main() {
                var x, y;
                y = new C;   // h0: published, irrelevant to the query
                g = y;
                x = new C;   // h1: the queried object
                query q: local x;
            }
            "#,
            "q",
        );
        match r.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(cost, 1, "only the queried site need be L");
                assert!(param.contains(1));
                assert!(!param.contains(0));
            }
            other => panic!("expected proof, got {other:?}"),
        }
        let _ = program;
    }

    #[test]
    fn flow_through_helper_call() {
        let (_, r) = solve(
            r#"
            class C { field f; }
            fn stash(container, item) { container.f = item; }
            fn main() {
                var box1, item;
                box1 = new C;
                item = new C;
                stash(box1, item);
                query q: local item;
            }
            "#,
            "q",
        );
        match r.outcome {
            // Both the container and the item must be L: storing an L item
            // into an E container escapes it.
            Outcome::Proven { cost, .. } => assert_eq!(cost, 2),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn accesses_generator_finds_loads_and_stores() {
        let program = pda_lang::parse_program(
            r#"
            class C { field f; }
            fn main() {
                var x, y;
                x = new C;
                x.f = x;
                y = x.f;
            }
            "#,
        )
        .unwrap();
        let accs = EscapeClient::accesses(&program, [program.main]);
        assert_eq!(accs.len(), 2);
        let x = program.main_var("x").unwrap();
        assert!(accs.iter().all(|&(_, v)| v == x));
    }
}
