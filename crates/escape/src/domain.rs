//! The thread-escape abstract domain: values, environments, primitives.

use pda_lang::{FieldId, SiteId, VarId};
use pda_meta::Primitive;
use pda_util::BitSet;
use std::fmt;

/// An abstract value: definitely null, local-or-null, escaping-or-null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Val {
    /// Definitely null.
    N = 0,
    /// Points to a thread-local object (or null).
    L = 1,
    /// Points to a possibly-escaping object (or null).
    E = 2,
}

impl Val {
    /// All three values, for enumeration in tests and tables.
    pub const ALL: [Val; 3] = [Val::N, Val::L, Val::E];

    /// Bitmask singleton used in guard value-sets.
    pub(crate) fn mask(self) -> u8 {
        1 << (self as u8)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::N => write!(f, "N"),
            Val::L => write!(f, "L"),
            Val::E => write!(f, "E"),
        }
    }
}

/// A tracked storage cell: a local variable or an object field
/// (field-based over `L`-summarized objects, as in Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cell {
    /// A local variable.
    Var(VarId),
    /// An object field.
    Field(FieldId),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Var(v) => write!(f, "v{v}"),
            Cell::Field(x) => write!(f, "f{x}"),
        }
    }
}

/// The abstract state `d : (Locals ∪ Fields) → {L, E, N}`.
///
/// Stored densely: variables first, then fields. The environment's shape
/// (`n_vars`) is fixed per client instance.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Env {
    n_vars: usize,
    cells: Vec<Val>,
}

impl Env {
    /// The all-`N` environment (program entry: locals null, fields of
    /// future `L`-objects null).
    pub fn initial(n_vars: usize, n_fields: usize) -> Env {
        Env { n_vars, cells: vec![Val::N; n_vars + n_fields] }
    }

    fn index(&self, c: Cell) -> usize {
        match c {
            Cell::Var(v) => v.0 as usize,
            Cell::Field(f) => self.n_vars + f.0 as usize,
        }
    }

    /// Reads a cell.
    pub fn get(&self, c: Cell) -> Val {
        self.cells[self.index(c)]
    }

    /// Writes a cell (builder-style, by value).
    pub fn set(&mut self, c: Cell, v: Val) {
        let i = self.index(c);
        self.cells[i] = v;
    }

    /// The `esc` operator of Figure 5: every non-null local flips to `E`;
    /// all field knowledge resets to `N` (field tracking restarts for
    /// objects allocated after the escape).
    pub fn escape_all(&self) -> Env {
        let mut out = self.clone();
        for i in 0..out.cells.len() {
            if i < self.n_vars {
                if out.cells[i] != Val::N {
                    out.cells[i] = Val::E;
                }
            } else {
                out.cells[i] = Val::N;
            }
        }
        out
    }

    /// Number of variable cells.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of field cells.
    pub fn n_fields(&self) -> usize {
        self.cells.len() - self.n_vars
    }

    /// Iterates `(cell, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Cell, Val)> + '_ {
        (0..self.cells.len()).map(|i| {
            let cell = if i < self.n_vars {
                Cell::Var(VarId(i as u32))
            } else {
                Cell::Field(FieldId((i - self.n_vars) as u32))
            };
            (cell, self.cells[i])
        })
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (c, v)) in self.iter().enumerate() {
            if v == Val::N {
                continue; // keep dumps readable: N is the default
            }
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}↦{v}")?;
        }
        write!(f, "]")
    }
}

/// Primitive formulas of the thread-escape meta-domain (the paper's
/// `h.o`, `v.o`, `f.o`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EscPrim {
    /// `d(cell) = val`.
    CellIs(Cell, Val),
    /// `p(h) = L` (`true`) or `p(h) = E` (`false`).
    SiteIs(SiteId, bool),
}

impl fmt::Display for EscPrim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscPrim::CellIs(c, v) => write!(f, "{c}.{v}"),
            EscPrim::SiteIs(h, true) => write!(f, "h{h}.L"),
            EscPrim::SiteIs(h, false) => write!(f, "h{h}.E"),
        }
    }
}

impl Primitive for EscPrim {
    type Param = BitSet;
    type State = Env;

    fn holds(&self, p: &BitSet, d: &Env) -> bool {
        match *self {
            EscPrim::CellIs(c, v) => d.get(c) == v,
            EscPrim::SiteIs(h, is_l) => p.contains(h.0 as usize) == is_l,
        }
    }

    fn eval_state(&self, d: &Env) -> Option<bool> {
        match *self {
            EscPrim::CellIs(c, v) => Some(d.get(c) == v),
            EscPrim::SiteIs(..) => None,
        }
    }

    fn param_atom(&self) -> Option<(usize, bool)> {
        match *self {
            EscPrim::CellIs(..) => None,
            EscPrim::SiteIs(h, is_l) => Some((h.0 as usize, is_l)),
        }
    }

    fn contradicts(&self, other: &Self) -> bool {
        match (*self, *other) {
            (EscPrim::CellIs(c1, v1), EscPrim::CellIs(c2, v2)) => c1 == c2 && v1 != v2,
            (EscPrim::SiteIs(h1, b1), EscPrim::SiteIs(h2, b2)) => h1 == h2 && b1 != b2,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_get_set_roundtrip() {
        let mut d = Env::initial(2, 1);
        assert_eq!(d.get(Cell::Var(VarId(1))), Val::N);
        d.set(Cell::Var(VarId(1)), Val::L);
        d.set(Cell::Field(FieldId(0)), Val::E);
        assert_eq!(d.get(Cell::Var(VarId(1))), Val::L);
        assert_eq!(d.get(Cell::Field(FieldId(0))), Val::E);
        assert_eq!(d.get(Cell::Var(VarId(0))), Val::N);
    }

    #[test]
    fn escape_all_matches_figure5() {
        let mut d = Env::initial(3, 2);
        d.set(Cell::Var(VarId(0)), Val::L);
        d.set(Cell::Var(VarId(1)), Val::E);
        d.set(Cell::Field(FieldId(0)), Val::L);
        d.set(Cell::Field(FieldId(1)), Val::E);
        let e = d.escape_all();
        assert_eq!(e.get(Cell::Var(VarId(0))), Val::E); // L → E
        assert_eq!(e.get(Cell::Var(VarId(1))), Val::E); // E → E
        assert_eq!(e.get(Cell::Var(VarId(2))), Val::N); // N stays N
        assert_eq!(e.get(Cell::Field(FieldId(0))), Val::N); // fields reset
        assert_eq!(e.get(Cell::Field(FieldId(1))), Val::N);
    }

    #[test]
    fn prim_semantics() {
        let p = BitSet::from_iter(2, [0]);
        let mut d = Env::initial(1, 0);
        d.set(Cell::Var(VarId(0)), Val::E);
        assert!(EscPrim::CellIs(Cell::Var(VarId(0)), Val::E).holds(&p, &d));
        assert!(!EscPrim::CellIs(Cell::Var(VarId(0)), Val::L).holds(&p, &d));
        assert!(EscPrim::SiteIs(SiteId(0), true).holds(&p, &d));
        assert!(EscPrim::SiteIs(SiteId(1), false).holds(&p, &d));
        assert_eq!(EscPrim::SiteIs(SiteId(0), true).eval_state(&d), None);
        assert_eq!(EscPrim::SiteIs(SiteId(0), true).param_atom(), Some((0, true)));
        assert_eq!(EscPrim::SiteIs(SiteId(1), false).param_atom(), Some((1, false)));
    }

    #[test]
    fn contradictions() {
        let c = Cell::Var(VarId(0));
        assert!(EscPrim::CellIs(c, Val::N).contradicts(&EscPrim::CellIs(c, Val::E)));
        assert!(!EscPrim::CellIs(c, Val::N).contradicts(&EscPrim::CellIs(Cell::Var(VarId(1)), Val::E)));
        assert!(EscPrim::SiteIs(SiteId(0), true).contradicts(&EscPrim::SiteIs(SiteId(0), false)));
    }

    /// The interned meta-kernel evaluates `param_atom`/`eval_state` once
    /// per primitive at intern time and precomputes `implies`/`contradicts`
    /// into per-trace matrices — all four must therefore be pure, and
    /// `contradicts` must be symmetric and sound (never claimed for a
    /// jointly satisfiable pair). Checked exhaustively over a small
    /// universe: 2 vars, 1 field, 2 sites.
    #[test]
    fn intern_contract_holds_exhaustively() {
        let mut prims = vec![];
        for c in [Cell::Var(VarId(0)), Cell::Var(VarId(1)), Cell::Field(FieldId(0))] {
            for v in Val::ALL {
                prims.push(EscPrim::CellIs(c, v));
            }
        }
        for h in [SiteId(0), SiteId(1)] {
            for b in [true, false] {
                prims.push(EscPrim::SiteIs(h, b));
            }
        }
        let envs: Vec<Env> = (0..27u32)
            .map(|code| {
                let mut d = Env::initial(2, 1);
                d.set(Cell::Var(VarId(0)), Val::ALL[(code % 3) as usize]);
                d.set(Cell::Var(VarId(1)), Val::ALL[(code / 3 % 3) as usize]);
                d.set(Cell::Field(FieldId(0)), Val::ALL[(code / 9) as usize]);
                d
            })
            .collect();
        let params: Vec<BitSet> =
            (0..4u32).map(|bits| BitSet::from_iter(2, (0..2).filter(|i| (bits >> i) & 1 == 1))).collect();
        for a in &prims {
            assert_eq!(a.param_atom(), a.param_atom());
            for d in &envs {
                assert_eq!(a.eval_state(d), a.eval_state(d));
            }
            for b in &prims {
                assert_eq!(a.contradicts(b), a.contradicts(b));
                assert_eq!(a.contradicts(b), b.contradicts(a), "{a} vs {b}");
                assert_eq!(a.implies(b), a.implies(b));
                if a.contradicts(b) {
                    for p in &params {
                        for d in &envs {
                            assert!(
                                !(a.holds(p, d) && b.holds(p, d)),
                                "{a} and {b} both hold under p={p}, d={d:?}"
                            );
                        }
                    }
                }
                if a.implies(b) {
                    for p in &params {
                        for d in &envs {
                            assert!(!a.holds(p, d) || b.holds(p, d), "{a} ⇒ {b} broken");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn debug_env_is_compact() {
        let mut d = Env::initial(2, 0);
        d.set(Cell::Var(VarId(1)), Val::L);
        let s = format!("{d:?}");
        assert!(s.contains("v1↦L"));
        assert!(!s.contains("v0"));
    }
}
