//! Regenerates **Table 2**: scalability — CEGAR iteration counts
//! (min/max/avg, separately for proven and impossible queries) for both
//! analyses, plus the thread-escape running-time summaries.

use pda_bench::{config_from_env, fmt_summary, load_suite_verbose, print_batch_stats, print_table};
use pda_suite::{run_escape, run_typestate, Resolution};

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for b in &benches {
        let ts = run_typestate(b, &cfg);
        let esc = run_escape(b, &cfg);
        let (tp0, tp1, tp2) = fmt_summary(ts.iterations(Resolution::Proven));
        let (ti0, ti1, ti2) = fmt_summary(ts.iterations(Resolution::Impossible));
        let (ep0, ep1, ep2) = fmt_summary(esc.iterations(Resolution::Proven));
        let (ei0, ei1, ei2) = fmt_summary(esc.iterations(Resolution::Impossible));
        let (sp0, sp1, sp2) = fmt_summary(esc.times_secs(Resolution::Proven));
        let (si0, si1, si2) = fmt_summary(esc.times_secs(Resolution::Impossible));
        rows.push(vec![
            b.name.clone(),
            format!("{tp0}/{tp1}/{tp2}"),
            format!("{ti0}/{ti1}/{ti2}"),
            format!("{ep0}/{ep1}/{ep2}"),
            format!("{ei0}/{ei1}/{ei2}"),
            format!("{sp0}s/{sp1}s/{sp2}s"),
            format!("{si0}s/{si1}s/{si2}s"),
        ]);
        runs.push(ts);
        runs.push(esc);
    }
    println!("\nTable 2: iterations (min/max/avg) and thread-escape running times\n");
    print_table(
        &[
            "benchmark",
            "ts-iters proven",
            "ts-iters imposs",
            "esc-iters proven",
            "esc-iters imposs",
            "esc-time proven",
            "esc-time imposs",
        ],
        &rows,
    );
    print_batch_stats(&runs);
}
