//! Regenerates **Figure 12**: precision of the technique — per benchmark
//! and per client analysis, how many queries are proven with a cheapest
//! abstraction, shown impossible to prove, or left unresolved by the
//! budget.

use pda_bench::{config_from_env, load_suite_verbose, print_table};
use pda_suite::{run_escape, run_typestate};

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    let mut totals = [0usize; 3];
    for b in &benches {
        for run in [run_typestate(b, &cfg), run_escape(b, &cfg)] {
            let (p, i, u) = run.precision();
            let n = run.outcomes.len().max(1);
            totals[0] += p;
            totals[1] += i;
            totals[2] += u;
            rows.push(vec![
                b.name.clone(),
                run.analysis.to_string(),
                format!("{}", run.outcomes.len()),
                format!("{p} ({:.0}%)", 100.0 * p as f64 / n as f64),
                format!("{i} ({:.0}%)", 100.0 * i as f64 / n as f64),
                format!("{u} ({:.0}%)", 100.0 * u as f64 / n as f64),
            ]);
        }
    }
    println!("\nFigure 12: precision (proven / impossible / unresolved)\n");
    print_table(
        &["benchmark", "analysis", "queries", "proven", "impossible", "unresolved"],
        &rows,
    );
    let total: usize = totals.iter().sum();
    println!(
        "\nresolved: {:.1}% of {total} queries (paper: 92.5% on average)",
        100.0 * (totals[0] + totals[1]) as f64 / total.max(1) as f64
    );
}
