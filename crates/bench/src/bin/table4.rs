//! Regenerates **Table 4**: cheapest-abstraction reuse — how many proven
//! queries share the same cheapest abstraction (group counts and
//! min/max/avg group sizes).

use pda_bench::{config_from_env, fmt_summary, load_suite_verbose, print_batch_stats, print_table};
use pda_suite::{run_escape, run_typestate};
use pda_util::Summary;

fn group_cells(groups: &[usize]) -> Vec<String> {
    let s: Summary = groups.iter().map(|&g| g as f64).collect();
    let (lo, hi, avg) = fmt_summary(s);
    vec![format!("{}", groups.len()), lo, hi, avg]
}

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for b in &benches {
        let ts = run_typestate(b, &cfg);
        let esc = run_escape(b, &cfg);
        let mut row = vec![b.name.clone()];
        row.extend(group_cells(&ts.reuse_groups()));
        row.extend(group_cells(&esc.reuse_groups()));
        rows.push(row);
        runs.push(ts);
        runs.push(esc);
    }
    println!("\nTable 4: cheapest-abstraction reuse among proven queries\n");
    print_table(
        &[
            "benchmark",
            "ts #groups",
            "ts min",
            "ts max",
            "ts avg",
            "esc #groups",
            "esc min",
            "esc max",
            "esc avg",
        ],
        &rows,
    );
    println!("\npaper shape: cheapest abstractions differ across queries (many small groups)");
    print_batch_stats(&runs);
}
