//! Regenerates **Figure 14**: the distribution of cheapest-abstraction
//! sizes for thread-escape queries on the three largest benchmarks —
//! most queries need only one or two `L`-mapped sites.

use pda_bench::{config_from_env, load_suite_verbose};
use pda_suite::run_escape;

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    println!("\nFigure 14: histogram of cheapest-abstraction sizes (thread-escape)\n");
    for b in benches.iter().rev().take(3).rev() {
        let run = run_escape(b, &cfg);
        let hist = run.size_histogram();
        println!("{}:", b.name);
        let max = hist.values().copied().max().unwrap_or(1);
        for (size, count) in &hist {
            let bar = "#".repeat(count * 40 / max.max(1));
            println!("  |p| = {size:>3}: {count:>4} {bar}");
        }
        if hist.is_empty() {
            println!("  (no proven queries)");
        }
        println!();
    }
}
