//! Regenerates **Figure 13**: the effect of the under-approximation beam
//! width `k ∈ {1, 5, 10}` on the thread-escape analysis's running time,
//! over the four smallest benchmarks.
//!
//! The paper's finding: `k = 1` prunes little per iteration (more
//! iterations), `k = 10` tracks large formulas (slow backward runs, more
//! memory); `k = 5` is the sweet spot. The same tradeoff shows up here as
//! total time and iteration counts.

use pda_bench::{config_from_env, load_suite_verbose, print_table};
use pda_suite::run_escape;

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    // The four mid-to-large benchmarks: big enough that the beam tradeoff
    // is visible (the paper uses its four smallest because k=1/k=10 ran
    // out of memory on the rest; our scale is shifted accordingly).
    for b in benches.iter().skip(3).take(4) {
        let mut cells = vec![b.name.clone()];
        for k in [1, 5, 10] {
            let mut kcfg = cfg.clone();
            kcfg.k = k;
            let run = run_escape(b, &kcfg);
            let (p, i, u) = run.precision();
            cells.push(format!(
                "{:.2}s ({} runs, {p}/{i}/{u})",
                run.wall_micros as f64 / 1e6,
                run.forward_runs
            ));
        }
        rows.push(cells);
    }
    println!("\nFigure 13: thread-escape wall time by beam width k\n");
    print_table(&["benchmark", "k=1", "k=5", "k=10"], &rows);
    println!("\ncells: total time (forward runs, proven/impossible/unresolved)");
}
