//! Regenerates **Table 3**: cheapest-abstraction sizes for proven queries
//! — the number of must-alias-tracked variables (type-state) resp.
//! `L`-mapped sites (thread-escape).

use pda_bench::{config_from_env, fmt_summary, load_suite_verbose, print_batch_stats, print_table};
use pda_suite::{run_escape, run_typestate};

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for b in &benches {
        let ts = run_typestate(b, &cfg);
        let esc = run_escape(b, &cfg);
        let (t0, t1, t2) = fmt_summary(ts.cheapest_sizes());
        let (e0, e1, e2) = fmt_summary(esc.cheapest_sizes());
        rows.push(vec![
            b.name.clone(),
            t0,
            t1,
            t2,
            e0,
            e1,
            e2,
        ]);
        runs.push(ts);
        runs.push(esc);
    }
    println!("\nTable 3: cheapest-abstraction size for proven queries (min/max/avg)\n");
    print_table(
        &["benchmark", "ts min", "ts max", "ts avg", "esc min", "esc max", "esc avg"],
        &rows,
    );
    println!("\npaper shape: escape needs 1-2 L-sites on average; type-state grows with benchmark size");
    print_batch_stats(&runs);
}
