//! **Extension experiment**: the type-state client in declared-automaton
//! mode, at benchmark scale.
//!
//! The paper's evaluation uses a fictitious stress property; its worked
//! example (Figure 1) uses a real `File` protocol. This experiment runs
//! the real-automaton machinery on every benchmark's generated
//! acquire/release resource protocol: provable uses need must-alias
//! tracking through the aliasing the generator plants; buggy uses
//! (double acquire, double release) are shown impossible.

use pda_bench::{config_from_env, fmt_summary, load_suite_verbose, print_table};
use pda_suite::run_typestate_automaton;

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    for b in &benches {
        let run = run_typestate_automaton(b, &cfg);
        let (p, i, u) = run.precision();
        let (c0, c1, c2) = fmt_summary(run.cheapest_sizes());
        rows.push(vec![
            b.name.clone(),
            format!("{}", run.outcomes.len()),
            format!("{p}"),
            format!("{i}"),
            format!("{u}"),
            format!("{c0}/{c1}/{c2}"),
            format!("{:.1}s", run.wall_micros as f64 / 1e6),
        ]);
    }
    println!("\nExtension: type-state with the declared acquire/release automaton\n");
    print_table(
        &["benchmark", "queries", "proven", "impossible", "unresolved", "|p| min/max/avg", "time"],
        &rows,
    );
}
