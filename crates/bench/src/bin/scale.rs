//! Jobs-scaling bench: how the batch scheduler's wall time, aggregate
//! meta-phase attribution, and lock contention behave as the requested
//! worker count grows — the measurement behind the "make parallel
//! actually win" work.
//!
//! Loads the same seeded suite benchmark as the `batch` bin (hedc with
//! the default suite) and solves its thread-escape batch at
//! `jobs ∈ {1, 2, 4, 8, 16}` with the interned kernel, plus `jobs = 8`
//! crossed with `--meta-jobs ∈ {2, 4}` (in-query data parallelism in the
//! backward kernel). For every point it records:
//!
//! * `wall_micros` — whole-batch wall time;
//! * `meta_micros` — aggregate backward/meta attribution summed over
//!   queries. Historically this *inflated* at high job counts because
//!   oversubscribed workers time-shared the core and every wall-clock
//!   span stretched; the scheduler now clamps spawned threads to
//!   available parallelism, so this must stay flat;
//! * `contention_micros` — metered lock waits (forward-cache shards,
//!   admission turnstile, warm meta store);
//! * `cache_hits` / `cache_misses` — forward runs shared vs executed;
//! * `outcomes_identical` — per-query outcome key equality against the
//!   `jobs = 1` sequential reference (must be `true` everywhere).
//!
//! Output: one line per grid point, a `scale:` summary line for the CI
//! scaling smoke, and a machine-readable `BENCH_scale.json` (path
//! override: `PDA_BENCH_OUT`).
//!
//! Environment: `PDA_MAX_QUERIES` caps the batch (default 32, floor 16);
//! `PDA_JOBS_GRID` overrides the jobs grid (comma-separated);
//! `PDA_VIABLE_ENGINE` selects the viable-set constraint engine
//! (`dpll`, the default, or `bdd`; outcomes are bit-identical);
//! `PDA_BENCH_OUT` overrides the output path.

use pda_escape::EscapeClient;
use pda_suite::Benchmark;
use pda_tracer::{
    solve_queries_batch, BatchConfig, BatchStats, MetaKernel, Outcome, QueryResult, ViableEngine,
};
use pda_util::BitSet;

fn outcome_key(r: &QueryResult<BitSet>) -> String {
    let verdict = match &r.outcome {
        Outcome::Proven { param, cost } => format!("proven |p|={cost} {param}"),
        Outcome::Impossible => "impossible".into(),
        Outcome::Unresolved(u) => format!("unresolved {u:?}"),
    };
    format!("{verdict} after {} iterations", r.iterations)
}

struct Point {
    jobs: usize,
    meta_jobs: usize,
    wall_micros: u128,
    meta_micros: u64,
    contention_micros: u64,
    cache_hits: u64,
    cache_misses: u64,
    workers: usize,
    outcomes_identical: bool,
}

fn point_json(p: &Point) -> String {
    format!(
        "{{\"jobs\":{},\"meta_jobs\":{},\"wall_micros\":{},\"meta_micros\":{},\
         \"contention_micros\":{},\"cache_hits\":{},\"cache_misses\":{},\"workers\":{},\
         \"outcomes_identical\":{}}}",
        p.jobs,
        p.meta_jobs,
        p.wall_micros,
        p.meta_micros,
        p.contention_micros,
        p.cache_hits,
        p.cache_misses,
        p.workers,
        p.outcomes_identical
    )
}

fn main() {
    let max_queries: usize = std::env::var("PDA_MAX_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
        .max(16);
    let jobs_grid: Vec<usize> = std::env::var("PDA_JOBS_GRID")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|g: &Vec<usize>| !g.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8, 16]);

    let (seed, bench, accesses) = pda_suite::suite()
        .into_iter()
        .map(|cfg| (cfg.seed, Benchmark::load(cfg)))
        .find_map(|(seed, b)| {
            let accesses = EscapeClient::accesses(&b.program, b.app_methods());
            (accesses.len() >= 16).then_some((seed, b, accesses))
        })
        .expect("some suite benchmark has >=16 escape queries");
    let client = EscapeClient::new(&bench.program);
    let queries: Vec<_> = accesses
        .iter()
        .take(max_queries)
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    let callees = bench.callees();

    println!(
        "benchmark {} (seed {seed}) — {} thread-escape queries, scaling grid {:?}\n",
        bench.name,
        queries.len(),
        jobs_grid
    );

    let viable_engine = std::env::var("PDA_VIABLE_ENGINE")
        .ok()
        .and_then(|v| ViableEngine::parse(&v).ok())
        .unwrap_or_default();
    let run = |jobs: usize, meta_jobs: usize| -> (Vec<QueryResult<BitSet>>, BatchStats) {
        let cfg = BatchConfig {
            jobs,
            tracer: pda_tracer::TracerConfig {
                kernel: MetaKernel::Interned,
                meta_jobs,
                viable_engine,
                ..pda_tracer::TracerConfig::default()
            },
            ..BatchConfig::default()
        };
        solve_queries_batch(&bench.program, &callees, &client, &queries, &cfg)
    };

    let repeats: usize = std::env::var("PDA_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);

    // Min-of-`repeats` per grid point: wall time on a time-shared box is
    // one-sided noise (the minimum is the least-disturbed run), and
    // applying the same rule to every point — baseline included — keeps
    // the comparison fair. Outcome identity is asserted on the reported
    // (fastest) run; determinism across repeats is the test suite's job.
    let min_of = |jobs: usize, meta_jobs: usize| -> (Vec<QueryResult<BitSet>>, BatchStats) {
        let mut best = run(jobs, meta_jobs);
        for _ in 1..repeats {
            let next = run(jobs, meta_jobs);
            if next.1.wall_micros < best.1.wall_micros {
                best = next;
            }
        }
        best
    };

    // The sequential reference every grid point is compared against.
    let (baseline, base_stats) = min_of(1, 1);
    let base_keys: Vec<String> = baseline.iter().map(outcome_key).collect();

    let grid: Vec<(usize, usize)> = jobs_grid
        .iter()
        .map(|&j| (j, 1))
        .chain([(8, 2), (8, 4)])
        .collect();

    let mut points: Vec<Point> = Vec::new();
    for &(jobs, meta_jobs) in &grid {
        let (results, stats) = if (jobs, meta_jobs) == (1, 1) {
            (baseline.clone(), base_stats.clone())
        } else {
            min_of(jobs, meta_jobs)
        };
        let identical =
            results.iter().map(outcome_key).zip(&base_keys).all(|(a, b)| a == *b);
        let p = Point {
            jobs,
            meta_jobs,
            wall_micros: stats.wall_micros,
            meta_micros: stats.meta.micros,
            contention_micros: stats.contention_micros,
            cache_hits: stats.cache.hits,
            cache_misses: stats.cache.misses,
            workers: stats.worker_meta.len(),
            outcomes_identical: identical,
        };
        println!(
            "jobs={jobs:<2} meta_jobs={meta_jobs}  wall {:>9.1} ms  meta {:>9.1} ms  \
             contention {:>7} µs  cache {}/{}  workers={}  identical={identical}",
            p.wall_micros as f64 / 1e3,
            p.meta_micros as f64 / 1e3,
            p.contention_micros,
            p.cache_hits,
            p.cache_hits + p.cache_misses,
            p.workers,
        );
        assert!(identical, "jobs={jobs} meta_jobs={meta_jobs} diverged from the sequential run");
        points.push(p);
    }

    let at = |jobs: usize, meta_jobs: usize| {
        points
            .iter()
            .find(|p| p.jobs == jobs && p.meta_jobs == meta_jobs)
            .expect("grid point present")
    };
    let j1 = at(1, 1);
    let j8 = at(8, 1);
    let speedup = j1.wall_micros as f64 / j8.wall_micros.max(1) as f64;
    let meta_ratio = j8.meta_micros as f64 / j1.meta_micros.max(1) as f64;
    let all_identical = points.iter().all(|p| p.outcomes_identical);
    println!(
        "\nscale: jobs8_speedup={speedup:.3} meta_ratio_j8_vs_j1={meta_ratio:.3} \
         outcomes_identical={all_identical}"
    );

    let out_path = std::env::var("PDA_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".into());
    let json = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"seed\": {seed},\n  \"queries\": {},\n  \
         \"points\": [\n    {}\n  ],\n  \
         \"jobs8_speedup\": {speedup:.3},\n  \"meta_ratio_j8_vs_j1\": {meta_ratio:.3},\n  \
         \"outcomes_identical\": {all_identical}\n}}\n",
        bench.name,
        queries.len(),
        points.iter().map(point_json).collect::<Vec<_>>().join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
    println!("wrote {out_path}");
}
