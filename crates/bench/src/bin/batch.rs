//! Batch-scheduler driver: wall-clock comparison of the sequential
//! per-query TRACER loop (`--jobs 1`) against the parallel batch
//! scheduler with its shared forward-run cache.
//!
//! Loads the first suite benchmark, takes its thread-escape query batch
//! (at least 16 queries), and runs it both ways, printing per-run wall
//! time, throughput, and cache statistics, then checks that every
//! per-query outcome (verdict, cost, iteration count) is identical.
//!
//! Environment: `PDA_JOBS` sets the parallel worker count (default 8);
//! `PDA_MAX_QUERIES` caps the batch size (default 32, floor 16);
//! `PDA_DEADLINE_MS` sets a per-query wall-clock deadline — under a
//! deadline, queries may legitimately resolve as `DeadlineExceeded` and
//! the seq/par equality and cache-hit checks are skipped (wall-clock
//! aborts are schedule-dependent by nature); the run still exercises the
//! whole resilient batch path and reports the resilience counters.

use pda_escape::EscapeClient;
use pda_suite::Benchmark;
use pda_tracer::{solve_queries_batch, BatchConfig, Outcome, QueryResult};
use pda_util::BitSet;

fn outcome_key(r: &QueryResult<BitSet>) -> String {
    let verdict = match &r.outcome {
        Outcome::Proven { param, cost } => format!("proven |p|={cost} {param}"),
        Outcome::Impossible => "impossible".into(),
        Outcome::Unresolved(u) => format!("unresolved {u:?}"),
    };
    format!("{verdict} after {} iterations", r.iterations)
}

fn main() {
    let jobs: usize = std::env::var("PDA_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(2);
    let max_queries: usize = std::env::var("PDA_MAX_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
        .max(16);
    let deadline_ms: Option<u64> =
        std::env::var("PDA_DEADLINE_MS").ok().and_then(|v| v.parse().ok());

    // Smallest suite benchmark whose thread-escape batch has >=16 queries.
    let (bench, accesses) = pda_suite::suite()
        .into_iter()
        .map(Benchmark::load)
        .find_map(|b| {
            let accesses = EscapeClient::accesses(&b.program, b.app_methods());
            (accesses.len() >= 16).then_some((b, accesses))
        })
        .expect("some suite benchmark has >=16 escape queries");
    let client = EscapeClient::new(&bench.program);
    let queries: Vec<_> = accesses
        .iter()
        .take(max_queries)
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    let callees = bench.callees();

    println!("benchmark {} — {} thread-escape queries\n", bench.name, queries.len());

    let tracer = pda_tracer::TracerConfig {
        timeout: deadline_ms.map(std::time::Duration::from_millis),
        ..pda_tracer::TracerConfig::default()
    };
    let seq_cfg = BatchConfig { jobs: 1, tracer: tracer.clone(), ..BatchConfig::default() };
    let (seq, seq_stats) =
        solve_queries_batch(&bench.program, &callees, &client, &queries, &seq_cfg);
    println!("jobs=1  wall {:>9.1} ms   {}", seq_stats.wall_micros as f64 / 1e3, seq_stats);

    let par_cfg = BatchConfig { jobs, tracer, ..BatchConfig::default() };
    let (par, par_stats) =
        solve_queries_batch(&bench.program, &callees, &client, &queries, &par_cfg);
    println!("jobs={jobs}  wall {:>9.1} ms   {}", par_stats.wall_micros as f64 / 1e3, par_stats);

    let speedup = seq_stats.wall_micros as f64 / par_stats.wall_micros.max(1) as f64;
    println!("\nspeedup (jobs={jobs} vs jobs=1): {speedup:.2}x");
    println!(
        "forward runs: {} sequential vs {} with the shared cache ({} saved, hit rate {:.1}%)",
        seq.iter().map(|r| r.iterations).sum::<usize>(),
        par_stats.cache.misses,
        par_stats.cache.hits,
        par_stats.cache.hit_rate() * 100.0
    );

    println!(
        "resilience: deadline_exceeded={} engine_faults={} escalations={}",
        seq_stats.deadline_exceeded + par_stats.deadline_exceeded,
        seq_stats.engine_faults + par_stats.engine_faults,
        seq_stats.escalations + par_stats.escalations,
    );

    if deadline_ms.is_some() {
        // Wall-clock aborts depend on machine speed and scheduling, so
        // per-query equality across job counts is not a meaningful check
        // here; completing the whole batch without a crash is.
        println!("deadline mode: skipping seq/par equality and cache-hit checks");
        return;
    }

    let identical = seq
        .iter()
        .zip(&par)
        .all(|(a, b)| outcome_key(a) == outcome_key(b));
    println!("per-query outcomes identical: {identical}");
    assert!(identical, "batch scheduler diverged from the sequential driver");
    assert!(par_stats.cache.hits > 0, "expected nonzero cache hits");
}
