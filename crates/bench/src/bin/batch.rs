//! Batch-scheduler driver: wall-clock comparison of the tree vs interned
//! meta-kernels on the sequential path, plus the parallel batch scheduler
//! with its shared forward-run cache.
//!
//! Loads the first suite benchmark with at least 16 thread-escape queries
//! (hedc with the default suite), and runs its query batch three ways:
//!
//! 1. `--jobs 1` with the **tree** meta-kernel (the reference semantics);
//! 2. `--jobs 1` with the **interned** meta-kernel (the production hot
//!    path) — every per-query outcome must be bit-identical to run 1, and
//!    the backward/meta phase is expected to be ≥ 1.5x faster;
//! 3. `--jobs N` with the interned kernel and the shared forward cache.
//!
//! Unless running in deadline mode, the run is summarized into a
//! machine-readable `BENCH_batch.json` (path override:
//! `PDA_BENCH_OUT`) so later PRs have a perf trajectory to compare
//! against, and per-query `outcome N: ...` lines are printed for the CI
//! perf smoke to diff against the checked-in expected summary.
//!
//! Environment: `PDA_JOBS` sets the parallel worker count (default 8);
//! `PDA_META_JOBS` sets the in-query meta-kernel data parallelism for
//! every phase (default 1; outcomes and traces are bit-identical at any
//! value); `PDA_MAX_QUERIES` caps the batch size (default 32, floor 16);
//! `PDA_MEM_BUDGET` sets a per-query memory budget in estimated bytes
//! (`k`/`m`/`g` suffixes accepted) — the governor degrades deterministically
//! under pressure, so outcome lines stay diffable; `PDA_POOL_BUDGET` sets
//! the shared batch pool for the parallel phase (admission control);
//! `PDA_DEADLINE_MS` sets a per-query wall-clock deadline — under a
//! deadline, queries may legitimately resolve as `DeadlineExceeded` and
//! the equality/cache/JSON steps are skipped (wall-clock aborts are
//! schedule-dependent by nature); the run still exercises the whole
//! resilient batch path and reports the resilience counters.
//! `PDA_FAULT_PLAN` arms the deterministic fault-injection plane for the
//! whole run (same grammar as `--fault-plan`; see `pda_util::faultplane`),
//! and `PDA_RETRY_FAULTS=N` gives every phase a deterministic retry
//! ladder so injected transient faults are absorbed and the outcome
//! lines stay diffable under chaos.
//! `PDA_TRACE=prefix` additionally streams the structured JSONL event
//! trace of the interned runs to `<prefix>_j1.jsonl` / `<prefix>_jN.jsonl`
//! and self-validates it: every line must parse, the two files must be
//! byte-identical (the trace is job-count invariant), and the event
//! counts must match the run's own counters (skipped in deadline mode).
//!
//! A final viable-engine phase (skipped in deadline mode) re-runs the
//! sequential interned batch under both constraint engines — DPLL
//! branch-and-bound and the resident ROBDD — asserts byte-identical
//! per-query outcomes, and reports the solver-phase wall split
//! (min-of-`PDA_REPEATS` runs per engine, default 3) in the summary and
//! `BENCH_batch.json`.

use pda_escape::EscapeClient;
use pda_suite::Benchmark;
use pda_tracer::{
    solve_queries_batch, solve_queries_batch_traced, BatchConfig, BatchStats, MetaKernel,
    MetaStats, Outcome, QueryResult, RetryPolicy, ViableEngine,
};
use pda_util::{BitSet, Counter, Event, FileSink, TraceSink};

fn outcome_key(r: &QueryResult<BitSet>) -> String {
    let verdict = match &r.outcome {
        Outcome::Proven { param, cost } => format!("proven |p|={cost} {param}"),
        Outcome::Impossible => "impossible".into(),
        Outcome::Unresolved(u) => format!("unresolved {u:?}"),
    };
    format!("{verdict} after {} iterations", r.iterations)
}

fn meta_json(m: &MetaStats) -> String {
    format!(
        "{{\"cubes_built\":{},\"subsumption_checks\":{},\"subsumption_fast_rejects\":{},\
         \"wp_hits\":{},\"wp_misses\":{},\"approx_drops\":{},\"micros\":{}}}",
        m.cubes_built,
        m.subsumption_checks,
        m.subsumption_fast_rejects,
        m.wp_hits,
        m.wp_misses,
        m.approx_drops,
        m.micros
    )
}

fn workers_json(stats: &BatchStats) -> String {
    let entries: Vec<String> = stats
        .worker_meta
        .iter()
        .map(|w| {
            format!(
                "{{\"queries\":{},\"meta_micros\":{},\"busy_micros\":{},\
                 \"lock_wait_micros\":{}}}",
                w.queries, w.meta_micros, w.busy_micros, w.lock_wait_micros
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

fn run_json(results: &[QueryResult<BitSet>], stats: &BatchStats) -> String {
    format!(
        "{{\"wall_micros\":{},\"iterations\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"deadline_exceeded\":{},\"engine_faults\":{},\"contention_micros\":{},\
         \"meta\":{},\"workers\":{}}}",
        stats.wall_micros,
        results.iter().map(|r| r.iterations).sum::<usize>(),
        stats.cache.hits,
        stats.cache.misses,
        stats.deadline_exceeded,
        stats.engine_faults,
        stats.contention_micros,
        meta_json(&stats.meta),
        workers_json(stats)
    )
}

fn main() {
    // Arm the deterministic fault plane before any phase runs, so a
    // chaos smoke can inject panics/stalls/IO errors at exact hit
    // counts and still diff the outcome lines.
    match pda_util::faultplane::install_from_env() {
        Ok(false) => {}
        Ok(true) => println!("fault plane armed from PDA_FAULT_PLAN"),
        Err(e) => {
            eprintln!("PDA_FAULT_PLAN: {e}");
            std::process::exit(2);
        }
    }
    let retry: Option<RetryPolicy> = std::env::var("PDA_RETRY_FAULTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .map(RetryPolicy::deterministic);
    let jobs: usize = std::env::var("PDA_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
        .max(2);
    let max_queries: usize = std::env::var("PDA_MAX_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
        .max(16);
    let deadline_ms: Option<u64> =
        std::env::var("PDA_DEADLINE_MS").ok().and_then(|v| v.parse().ok());

    // Smallest suite benchmark whose thread-escape batch has >=16 queries.
    // The generator is fully seeded, so the workload is fixed across runs
    // and machines.
    let (seed, bench, accesses) = pda_suite::suite()
        .into_iter()
        .map(|cfg| (cfg.seed, Benchmark::load(cfg)))
        .find_map(|(seed, b)| {
            let accesses = EscapeClient::accesses(&b.program, b.app_methods());
            (accesses.len() >= 16).then_some((seed, b, accesses))
        })
        .expect("some suite benchmark has >=16 escape queries");
    let client = EscapeClient::new(&bench.program);
    let queries: Vec<_> = accesses
        .iter()
        .take(max_queries)
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    let callees = bench.callees();

    println!(
        "benchmark {} (seed {seed}) — {} thread-escape queries\n",
        bench.name,
        queries.len()
    );

    let mem_budget =
        std::env::var("PDA_MEM_BUDGET").ok().and_then(|v| pda_util::parse_bytes(&v));
    let pool_budget =
        std::env::var("PDA_POOL_BUDGET").ok().and_then(|v| pda_util::parse_bytes(&v));
    let meta_jobs: usize = std::env::var("PDA_META_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    // `PDA_VIABLE_ENGINE` selects the constraint engine for the main
    // phases (outcomes are bit-identical either way); the final
    // engine-split phase always runs both explicitly.
    let viable_engine = std::env::var("PDA_VIABLE_ENGINE")
        .ok()
        .and_then(|v| ViableEngine::parse(&v).ok())
        .unwrap_or_default();
    let tracer = |kernel: MetaKernel| pda_tracer::TracerConfig {
        timeout: deadline_ms.map(std::time::Duration::from_millis),
        kernel,
        mem_budget,
        meta_jobs,
        viable_engine,
        ..pda_tracer::TracerConfig::default()
    };

    // Phase 1: sequential, tree kernel (the oracle).
    let tree_cfg = BatchConfig {
        jobs: 1,
        tracer: tracer(MetaKernel::Tree),
        retry: retry.clone(),
        ..BatchConfig::default()
    };
    let (tree, tree_stats) =
        solve_queries_batch(&bench.program, &callees, &client, &queries, &tree_cfg);
    println!(
        "jobs=1 kernel=tree      wall {:>9.1} ms   {}",
        tree_stats.wall_micros as f64 / 1e3,
        tree_stats
    );

    // Structured-trace sinks for the interned runs. The trace carries no
    // wall-clock data, so tracing does not perturb the timed phases
    // beyond buffer pushes; with `PDA_TRACE` unset both sinks are `None`
    // and the event paths compile to untraced no-ops.
    let trace_prefix = std::env::var("PDA_TRACE").ok().filter(|_| deadline_ms.is_none());
    let mk_sink = |suffix: &str| {
        trace_prefix.as_ref().map(|p| {
            FileSink::create(std::path::Path::new(&format!("{p}_{suffix}.jsonl")))
                .expect("create trace file")
        })
    };
    let (seq_sink, par_sink) = (mk_sink("j1"), mk_sink("jN"));

    // Phase 2: sequential, interned kernel — the same work, packed.
    let int_cfg = BatchConfig {
        jobs: 1,
        tracer: tracer(MetaKernel::Interned),
        retry: retry.clone(),
        ..BatchConfig::default()
    };
    let (seq, seq_stats) = solve_queries_batch_traced(
        &bench.program,
        &callees,
        &client,
        &queries,
        &int_cfg,
        seq_sink.as_ref().map(|s| s as &dyn TraceSink),
    );
    println!(
        "jobs=1 kernel=interned  wall {:>9.1} ms   {}",
        seq_stats.wall_micros as f64 / 1e3,
        seq_stats
    );

    // Phase 3: parallel, interned kernel, shared forward cache.
    let par_cfg = BatchConfig {
        jobs,
        tracer: tracer(MetaKernel::Interned),
        pool_budget,
        retry: retry.clone(),
        ..BatchConfig::default()
    };
    let (par, par_stats) = solve_queries_batch_traced(
        &bench.program,
        &callees,
        &client,
        &queries,
        &par_cfg,
        par_sink.as_ref().map(|s| s as &dyn TraceSink),
    );
    println!(
        "jobs={jobs} kernel=interned  wall {:>9.1} ms   {}",
        par_stats.wall_micros as f64 / 1e3,
        par_stats
    );

    let meta_speedup = tree_stats.meta.micros as f64 / seq_stats.meta.micros.max(1) as f64;
    let par_speedup = seq_stats.wall_micros as f64 / par_stats.wall_micros.max(1) as f64;
    println!(
        "\nbackward/meta phase: {:.1} ms tree vs {:.1} ms interned — {meta_speedup:.2}x",
        tree_stats.meta.micros as f64 / 1e3,
        seq_stats.meta.micros as f64 / 1e3
    );
    println!("parallel speedup (jobs={jobs} vs jobs=1): {par_speedup:.2}x");
    println!(
        "forward runs: {} sequential vs {} with the shared cache ({} saved, hit rate {:.1}%)",
        seq.iter().map(|r| r.iterations).sum::<usize>(),
        par_stats.cache.misses,
        par_stats.cache.hits,
        par_stats.cache.hit_rate() * 100.0
    );

    println!(
        "resilience: deadline_exceeded={} engine_faults={} escalations={} degradations={} shed={} \
         retries={} faults_injected={} io_faults={}",
        tree_stats.deadline_exceeded + seq_stats.deadline_exceeded + par_stats.deadline_exceeded,
        tree_stats.engine_faults + seq_stats.engine_faults + par_stats.engine_faults,
        tree_stats.escalations + seq_stats.escalations + par_stats.escalations,
        tree_stats.degradations + seq_stats.degradations + par_stats.degradations,
        tree_stats.shed + seq_stats.shed + par_stats.shed,
        tree_stats.retries + seq_stats.retries + par_stats.retries,
        tree_stats.faults_injected + seq_stats.faults_injected + par_stats.faults_injected,
        tree_stats.io_faults + seq_stats.io_faults + par_stats.io_faults,
    );

    if deadline_ms.is_some() {
        // Wall-clock aborts depend on machine speed and scheduling, so
        // per-query equality across kernels/job counts is not a meaningful
        // check here; completing the whole batch without a crash is.
        println!("deadline mode: skipping equality, cache-hit, and JSON steps");
        return;
    }

    // The stable per-query summary the CI perf smoke diffs against its
    // checked-in copy.
    for (i, r) in seq.iter().enumerate() {
        println!("outcome {i}: {}", outcome_key(r));
    }

    let kernels_identical = tree
        .iter()
        .zip(&seq)
        .all(|(a, b)| outcome_key(a) == outcome_key(b));
    println!("tree/interned outcomes identical: {kernels_identical}");
    assert!(kernels_identical, "interned kernel diverged from the tree oracle");
    let par_identical = seq
        .iter()
        .zip(&par)
        .all(|(a, b)| outcome_key(a) == outcome_key(b));
    println!("per-query outcomes identical across job counts: {par_identical}");
    assert!(par_identical, "batch scheduler diverged from the sequential driver");
    assert!(par_stats.cache.hits > 0, "expected nonzero cache hits");

    // Self-validate the structured trace: strict parse, job-count
    // invariance, and event counts consistent with the run's counters.
    if let Some(prefix) = &trace_prefix {
        drop(seq_sink);
        drop(par_sink);
        let j1 = std::fs::read_to_string(format!("{prefix}_j1.jsonl")).expect("read j1 trace");
        let jn = std::fs::read_to_string(format!("{prefix}_jN.jsonl")).expect("read jN trace");
        let events = pda_util::obs::parse_trace(&j1).expect("every trace line parses");
        assert_eq!(j1, jn, "trace must be byte-identical across job counts");
        let iter_starts =
            events.iter().filter(|e| matches!(e, Event::IterationStart { .. })).count();
        let resolved =
            events.iter().filter(|e| matches!(e, Event::QueryResolved { .. })).count();
        assert_eq!(
            iter_starts,
            seq.iter().map(|r| r.iterations).sum::<usize>(),
            "one iteration_start per CEGAR iteration"
        );
        assert_eq!(resolved, queries.len(), "one query_resolved per query");
        println!(
            "trace: {} events, {iter_starts} iterations, {resolved} queries, \
             job-count invariant -> {prefix}_j1.jsonl",
            events.len()
        );
    }

    // Viable-engine split: the same sequential interned batch under both
    // constraint engines. Outcomes must be byte-identical (the ROBDD's
    // min-cost extraction shares DPLL's canonical tie-break); the
    // solver-phase wall is taken as the min over `PDA_REPEATS` runs per
    // engine, because a single solver phase is microseconds-scale and
    // scheduling noise on a shared box is one-sided.
    let repeats: usize = std::env::var("PDA_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let engine_run = |engine: ViableEngine| -> (Vec<QueryResult<BitSet>>, u64) {
        let cfg = BatchConfig {
            jobs: 1,
            tracer: pda_tracer::TracerConfig {
                viable_engine: engine,
                ..tracer(MetaKernel::Interned)
            },
            retry: retry.clone(),
            ..BatchConfig::default()
        };
        let (mut results, stats) =
            solve_queries_batch(&bench.program, &callees, &client, &queries, &cfg);
        let mut solver_micros = stats.obs.get(Counter::SolverMicros);
        for _ in 1..repeats {
            let (next, next_stats) =
                solve_queries_batch(&bench.program, &callees, &client, &queries, &cfg);
            let micros = next_stats.obs.get(Counter::SolverMicros);
            if micros < solver_micros {
                solver_micros = micros;
                results = next;
            }
        }
        (results, solver_micros)
    };
    let (dpll, dpll_solver_micros) = engine_run(ViableEngine::Dpll);
    let (bdd, bdd_solver_micros) = engine_run(ViableEngine::Bdd);
    let engines_identical = dpll.len() == bdd.len()
        && dpll.iter().zip(&bdd).all(|(a, b)| outcome_key(a) == outcome_key(b))
        && seq.iter().zip(&dpll).all(|(a, b)| outcome_key(a) == outcome_key(b));
    println!(
        "solver phase (min of {repeats}): {dpll_solver_micros} µs dpll vs \
         {bdd_solver_micros} µs bdd",
    );
    println!("viable-engine outcomes identical: {engines_identical}");
    assert!(engines_identical, "BDD viable engine diverged from the DPLL oracle");

    let out_path = std::env::var("PDA_BENCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".into());
    let json = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"seed\": {seed},\n  \"queries\": {},\n  \"jobs\": {jobs},\n  \
         \"tree\": {},\n  \"interned\": {},\n  \"parallel\": {},\n  \
         \"meta_speedup\": {meta_speedup:.3},\n  \"parallel_speedup\": {par_speedup:.3},\n  \
         \"viable\": {{\"dpll_solver_micros\": {dpll_solver_micros}, \
         \"bdd_solver_micros\": {bdd_solver_micros}, \"outcomes_identical\": {engines_identical}}},\n  \
         \"outcomes_identical\": {}\n}}\n",
        bench.name,
        queries.len(),
        run_json(&tree, &tree_stats),
        run_json(&seq, &seq_stats),
        run_json(&par, &par_stats),
        kernels_identical && par_identical,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
    println!("\nwrote {out_path}");
}
