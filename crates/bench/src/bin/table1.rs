//! Regenerates **Table 1**: benchmark statistics — classes and methods
//! (application / total), source size, and the `log2` of the abstraction
//! family searched by each analysis.

use pda_bench::{load_suite_verbose, print_table};
use pda_suite::benchmark_stats;

fn main() {
    let benches = load_suite_verbose();
    let rows: Vec<Vec<String>> = benches
        .iter()
        .map(|b| {
            let s = benchmark_stats(b);
            vec![
                s.name.clone(),
                format!("{}", s.classes.0),
                format!("{}", s.classes.1),
                format!("{}", s.methods.0),
                format!("{}", s.methods.1),
                format!("{}", s.loc),
                format!("{}", s.log2_typestate),
                format!("{}", s.log2_escape),
            ]
        })
        .collect();
    println!("\nTable 1: benchmark statistics (0-CFA-reachable code)\n");
    print_table(
        &[
            "benchmark",
            "classes(app)",
            "classes(tot)",
            "methods(app)",
            "methods(tot)",
            "loc",
            "log2|P| ts",
            "log2|P| esc",
        ],
        &rows,
    );
}
