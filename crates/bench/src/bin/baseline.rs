//! **Baseline comparison** (Related Work, Section 7): TRACER's
//! optimum-abstraction search vs. classic coarse refinement, which
//! enables every parameter atom the counterexample mentions.
//!
//! The paper's claim to validate: coarse refinement "can refine much more
//! than necessary" — it converges in few iterations but lands on far
//! more expensive abstractions, and it can never prove impossibility.

use pda_bench::{config_from_env, load_suite_verbose, print_table};
use pda_escape::EscapeClient;
use pda_suite::ExperimentConfig;
use pda_tracer::{solve_query, solve_query_coarse, Outcome, TracerConfig};
use pda_util::Summary;

fn main() {
    let cfg = config_from_env();
    let benches = load_suite_verbose();
    let mut rows = Vec::new();
    for b in &benches {
        let client = EscapeClient::new(&b.program);
        let accesses = EscapeClient::accesses(&b.program, b.app_methods());
        let n = cfg.max_queries.min(accesses.len()).min(16);
        let callees = b.callees();
        let tracer_cfg = tracer_config(&cfg);

        let mut opt_cost = Summary::new();
        let mut coarse_cost = Summary::new();
        let mut opt_iters = Summary::new();
        let mut coarse_iters = Summary::new();
        let mut impossible = 0usize;
        let mut coarse_gaveup = 0usize;
        for &(point, var) in accesses.iter().take(n) {
            let query = client.access_query(point, var);
            let opt = solve_query(&b.program, &callees, &client, &query, &tracer_cfg);
            let coarse = solve_query_coarse(&b.program, &callees, &client, &query, &tracer_cfg);
            match opt.outcome {
                Outcome::Proven { cost, .. } => {
                    opt_cost.add(cost as f64);
                    opt_iters.add(opt.iterations as f64);
                }
                Outcome::Impossible => impossible += 1,
                Outcome::Unresolved(_) => {}
            }
            match coarse.outcome {
                Outcome::Proven { cost, .. } => {
                    coarse_cost.add(cost as f64);
                    coarse_iters.add(coarse.iterations as f64);
                }
                _ => coarse_gaveup += 1,
            }
        }
        rows.push(vec![
            b.name.clone(),
            format!("{n}"),
            fmt_avg(opt_cost),
            fmt_avg(coarse_cost),
            fmt_avg(opt_iters),
            fmt_avg(coarse_iters),
            format!("{impossible}"),
            format!("{coarse_gaveup}"),
        ]);
    }
    println!("\nBaseline: TRACER (optimum) vs coarse refinement (thread-escape)\n");
    print_table(
        &[
            "benchmark",
            "queries",
            "opt |p| avg",
            "coarse |p| avg",
            "opt iters",
            "coarse iters",
            "opt impossible",
            "coarse gave up",
        ],
        &rows,
    );
    println!("\nexpected shape: coarse |p| >> optimum |p|; coarse cannot prove impossibility");
}

fn tracer_config(cfg: &ExperimentConfig) -> TracerConfig {
    TracerConfig {
        beam: pda_meta::BeamConfig::with_k(cfg.k),
        max_iters: cfg.max_iters,
        rhs_limits: pda_dataflow::RhsLimits { max_facts: cfg.max_facts, ..Default::default() },
        ..TracerConfig::default()
    }
}

fn fmt_avg(s: Summary) -> String {
    match s.mean() {
        Some(m) => format!("{m:.1}"),
        None => "-".into(),
    }
}
