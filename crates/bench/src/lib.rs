//! Shared plumbing for the experiment binaries (one per paper
//! table/figure) and the micro-benchmarks.
//!
//! Each binary regenerates one table or figure of the PLDI'13 evaluation:
//!
//! | target   | paper artifact                                     |
//! |----------|----------------------------------------------------|
//! | `table1` | benchmark statistics                               |
//! | `table2` | iterations + running-time summaries                |
//! | `table3` | cheapest-abstraction sizes for proven queries      |
//! | `table4` | cheapest-abstraction reuse groups                  |
//! | `fig12`  | precision buckets (proven/impossible/unresolved)   |
//! | `fig13`  | effect of the beam width `k` on running time       |
//! | `fig14`  | distribution of cheapest-abstraction sizes        |
//!
//! Scale knobs come from the environment so CI can run a quick pass:
//! `PDA_MAX_QUERIES` (default 40), `PDA_MAX_ITERS` (default 40),
//! `PDA_JOBS` (default 1 = the sequential grouped driver; `> 1` routes
//! queries through the parallel batch scheduler and its shared
//! forward-run cache), `PDA_DEADLINE_MS` (per-query wall-clock budget,
//! default unlimited), and `PDA_ESCALATE` (fact-budget escalation retries
//! on forward-run `TooBig`, default 0).

use pda_suite::{AnalysisRun, Benchmark, ExperimentConfig};

/// Builds the experiment configuration, honoring the `PDA_MAX_QUERIES`,
/// `PDA_MAX_ITERS`, `PDA_JOBS`, `PDA_DEADLINE_MS`, and `PDA_ESCALATE`
/// environment overrides.
pub fn config_from_env() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    if let Some(q) = env_usize("PDA_MAX_QUERIES") {
        cfg.max_queries = q;
    }
    if let Some(i) = env_usize("PDA_MAX_ITERS") {
        cfg.max_iters = i;
    }
    if let Some(j) = env_usize("PDA_JOBS") {
        cfg.jobs = j.max(1);
    }
    if let Some(ms) = env_usize("PDA_DEADLINE_MS") {
        cfg.timeout = Some(std::time::Duration::from_millis(ms as u64));
    }
    if let Some(n) = env_usize("PDA_ESCALATE") {
        cfg.escalation =
            pda_tracer::Escalation { retries: n as u32, ..pda_tracer::Escalation::standard() };
    }
    cfg
}

/// Builds the unified [`pda_util::ObsRegistry`] footer registry over all
/// analysis runs of an invocation: worker count, throughput, forward-run
/// cache effectiveness, and the meta-kernel counters. The cache columns
/// are only nonzero under `PDA_JOBS > 1` (the sequential driver shares
/// forward runs via query groups, not the cache).
pub fn batch_obs(runs: &[AnalysisRun]) -> pda_util::ObsRegistry {
    use pda_util::Counter;
    let mut cache = pda_util::CacheStats::default();
    let mut meta = pda_meta::MetaStats::default();
    for r in runs {
        cache.merge(r.cache);
        meta.merge(&r.meta);
    }
    let mut obs = pda_util::ObsRegistry::default();
    obs.set(Counter::Jobs, runs.iter().map(|r| r.jobs).max().unwrap_or(1) as u64);
    obs.set(Counter::Queries, runs.iter().map(|r| r.outcomes.len()).sum::<usize>() as u64);
    obs.set(Counter::WallMicros, runs.iter().map(|r| r.wall_micros).sum::<u128>() as u64);
    obs.set(Counter::ForwardRuns, runs.iter().map(|r| r.forward_runs).sum::<usize>() as u64);
    obs.set(Counter::CacheHits, cache.hits);
    obs.set(Counter::CacheMisses, cache.misses);
    meta.add_to_obs(&mut obs);
    obs
}

/// Prints the batch-execution footer shared by the experiment binaries —
/// the same [`pda_util::ObsRegistry::render`] format as the CLI's and the
/// batch driver's footer.
pub fn print_batch_stats(runs: &[AnalysisRun]) {
    println!("\nbatch: {}", batch_obs(runs).render());
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Loads the full suite, printing progress to stderr.
pub fn load_suite_verbose() -> Vec<Benchmark> {
    pda_suite::suite()
        .into_iter()
        .map(|cfg| {
            eprintln!("loading {} ...", cfg.name);
            Benchmark::load(cfg)
        })
        .collect()
}

/// Formats one row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a fixed-width table with a header rule.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", row(&head, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

/// Times `iters` runs of `f` after one warmup run and prints the mean
/// per-iteration wall time — the offline, dependency-free stand-in for a
/// benchmark harness like Criterion. Returns the mean in microseconds so
/// drivers can compare configurations.
pub fn bench_case<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "bench_case needs at least one iteration");
    std::hint::black_box(f());
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mean_us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("{name:<44} {iters:>4} iters   avg {mean_us:>12.1} µs");
    mean_us
}

/// Renders a [`pda_util::Summary`] as the paper's `min max avg` triple.
pub fn fmt_summary(s: pda_util::Summary) -> (String, String, String) {
    match (s.min(), s.max(), s.mean()) {
        (Some(lo), Some(hi), Some(avg)) => {
            (format!("{lo:.0}"), format!("{hi:.0}"), format!("{avg:.1}"))
        }
        _ => ("-".into(), "-".into(), "-".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_defaults() {
        let cfg = config_from_env();
        assert!(cfg.max_queries > 0);
        assert!(cfg.max_iters > 0);
    }

    #[test]
    fn table_formatting_aligns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
