//! Shared plumbing for the experiment binaries (one per paper
//! table/figure) and the Criterion micro-benchmarks.
//!
//! Each binary regenerates one table or figure of the PLDI'13 evaluation:
//!
//! | target   | paper artifact                                     |
//! |----------|----------------------------------------------------|
//! | `table1` | benchmark statistics                               |
//! | `table2` | iterations + running-time summaries                |
//! | `table3` | cheapest-abstraction sizes for proven queries      |
//! | `table4` | cheapest-abstraction reuse groups                  |
//! | `fig12`  | precision buckets (proven/impossible/unresolved)   |
//! | `fig13`  | effect of the beam width `k` on running time       |
//! | `fig14`  | distribution of cheapest-abstraction sizes        |
//!
//! Scale knobs come from the environment so CI can run a quick pass:
//! `PDA_MAX_QUERIES` (default 40), `PDA_MAX_ITERS` (default 40).

use pda_suite::{Benchmark, ExperimentConfig};

/// Builds the experiment configuration, honoring the `PDA_MAX_QUERIES`
/// and `PDA_MAX_ITERS` environment overrides.
pub fn config_from_env() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::default();
    if let Some(q) = env_usize("PDA_MAX_QUERIES") {
        cfg.max_queries = q;
    }
    if let Some(i) = env_usize("PDA_MAX_ITERS") {
        cfg.max_iters = i;
    }
    cfg
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Loads the full suite, printing progress to stderr.
pub fn load_suite_verbose() -> Vec<Benchmark> {
    pda_suite::suite()
        .into_iter()
        .map(|cfg| {
            eprintln!("loading {} ...", cfg.name);
            Benchmark::load(cfg)
        })
        .collect()
}

/// Formats one row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a fixed-width table with a header rule.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", row(&head, &widths));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for r in rows {
        println!("{}", row(r, &widths));
    }
}

/// Renders a [`pda_util::Summary`] as the paper's `min max avg` triple.
pub fn fmt_summary(s: pda_util::Summary) -> (String, String, String) {
    match (s.min(), s.max(), s.mean()) {
        (Some(lo), Some(hi), Some(avg)) => {
            (format!("{lo:.0}"), format!("{hi:.0}"), format!("{avg:.1}"))
        }
        _ => ("-".into(), "-".into(), "-".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_config_defaults() {
        let cfg = config_from_env();
        assert!(cfg.max_queries > 0);
        assert!(cfg.max_iters > 0);
    }

    #[test]
    fn table_formatting_aligns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
