//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the beam width `k` (Section 4.1 / Figure 13) and the query-group
//! optimization (Section 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pda_suite::Benchmark;
use pda_tracer::{solve_queries, solve_query, TracerConfig};
use std::hint::black_box;

fn fixture() -> (Benchmark, Vec<pda_tracer::Query<pda_escape::EscPrim>>, pda_escape::EscapeClient)
{
    let bench = Benchmark::load(pda_suite::suite().remove(0));
    let client = pda_escape::EscapeClient::new(&bench.program);
    let accesses = pda_escape::EscapeClient::accesses(&bench.program, bench.app_methods());
    let queries: Vec<_> = accesses
        .iter()
        .take(6)
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    (bench, queries, client)
}

/// Beam-width ablation: resolve the same queries with k = 1, 5, 10, and
/// an effectively exhaustive beam (the paper's Figure 6(a) mode).
fn bench_beam_width(c: &mut Criterion) {
    let (bench, queries, client) = fixture();
    let callees = bench.callees();
    let mut group = c.benchmark_group("ablation/beam-width");
    for k in [1usize, 5, 10, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let config = TracerConfig {
                beam: pda_meta::BeamConfig::with_k(k),
                ..TracerConfig::default()
            };
            b.iter(|| {
                black_box(solve_queries(
                    &bench.program,
                    &callees,
                    &client,
                    &queries,
                    &config,
                ))
            })
        });
    }
    group.finish();
}

/// Query-group ablation: shared (grouped) forward runs vs. solving each
/// query independently.
fn bench_grouping(c: &mut Criterion) {
    let (bench, queries, client) = fixture();
    let callees = bench.callees();
    let config = TracerConfig::default();
    let mut group = c.benchmark_group("ablation/query-groups");
    group.bench_function("grouped", |b| {
        b.iter(|| {
            black_box(solve_queries(
                &bench.program,
                &callees,
                &client,
                &queries,
                &config,
            ))
        })
    });
    group.bench_function("individual", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| solve_query(&bench.program, &callees, &client, q, &config))
                .map(|r| black_box(r.iterations))
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_beam_width, bench_grouping
}
criterion_main!(ablation);
