//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the beam width `k` (Section 4.1 / Figure 13) and the query-group
//! optimization (Section 6).
//!
//! Uses the in-tree [`pda_bench::bench_case`] timing harness (no external
//! benchmark framework, so the workspace builds offline). Run with
//! `cargo bench -p pda-bench --bench ablation`.

use pda_bench::bench_case;
use pda_suite::Benchmark;
use pda_tracer::{solve_queries, solve_query, TracerConfig};
use std::hint::black_box;

fn fixture() -> (Benchmark, Vec<pda_tracer::Query<pda_escape::EscPrim>>, pda_escape::EscapeClient)
{
    let bench = Benchmark::load(pda_suite::suite().remove(0));
    let client = pda_escape::EscapeClient::new(&bench.program);
    let accesses = pda_escape::EscapeClient::accesses(&bench.program, bench.app_methods());
    let queries: Vec<_> = accesses
        .iter()
        .take(6)
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    (bench, queries, client)
}

/// Beam-width ablation: resolve the same queries with k = 1, 5, 10, and
/// an effectively exhaustive beam (the paper's Figure 6(a) mode).
fn bench_beam_width() {
    let (bench, queries, client) = fixture();
    let callees = bench.callees();
    for k in [1usize, 5, 10, 1024] {
        let config = TracerConfig {
            beam: pda_meta::BeamConfig::with_k(k),
            ..TracerConfig::default()
        };
        bench_case(&format!("ablation/beam-width/{k}"), 10, || {
            black_box(solve_queries(
                &bench.program,
                &callees,
                &client,
                &queries,
                &config,
            ))
        });
    }
}

/// Query-group ablation: shared (grouped) forward runs vs. solving each
/// query independently.
fn bench_grouping() {
    let (bench, queries, client) = fixture();
    let callees = bench.callees();
    let config = TracerConfig::default();
    bench_case("ablation/query-groups/grouped", 10, || {
        black_box(solve_queries(
            &bench.program,
            &callees,
            &client,
            &queries,
            &config,
        ))
    });
    bench_case("ablation/query-groups/individual", 10, || {
        queries
            .iter()
            .map(|q| solve_query(&bench.program, &callees, &client, q, &config))
            .map(|r| black_box(r.iterations))
            .sum::<usize>()
    });
}

fn main() {
    bench_beam_width();
    bench_grouping();
}
