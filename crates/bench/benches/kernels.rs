//! Criterion micro-benchmarks for the kernels the paper's scalability
//! story rests on: DNF normalization/simplification, backward weakest
//! preconditions, forward tabulation, and minimum-cost model search.

use criterion::{criterion_group, criterion_main, Criterion};
use pda_meta::{analyze_trace, simplify, BeamConfig, Formula};
use pda_solver::{MinCostSolver, PFormula};
use pda_suite::Benchmark;
use pda_tracer::{AsAnalysis, AsMeta, TracerClient};
use std::hint::black_box;

fn bench_dnf(c: &mut Criterion) {
    use pda_escape::{Cell, EscPrim, Val};
    use pda_lang::{FieldId, VarId};
    // A store-shaped wp formula conjunction, the worst DNF producer.
    let lit = |v: u32, val: Val| Formula::prim(EscPrim::CellIs(Cell::Var(VarId(v)), val));
    let flit = |f: u32, val: Val| Formula::prim(EscPrim::CellIs(Cell::Field(FieldId(f)), val));
    let parts: Vec<Formula<EscPrim>> = (0..6)
        .map(|i| {
            Formula::or(vec![
                Formula::and(vec![lit(i, Val::L), flit(0, Val::N)]),
                Formula::and(vec![lit(i, Val::E), flit(0, Val::L)]),
                Formula::not(lit(i, Val::N)),
            ])
        })
        .collect();
    let f = Formula::and(parts);
    let cfg = BeamConfig::default();
    c.bench_function("dnf/convert+simplify", |b| {
        b.iter(|| {
            let dnf = pda_meta::approx::to_dnf(black_box(&f), &cfg, &|_| true);
            black_box(simplify(dnf))
        })
    });
}

fn bench_solver(c: &mut Criterion) {
    // Accumulated-constraint shape: k rounds of ¬(cube over 30 atoms).
    let n = 30;
    let mut solver = MinCostSolver::with_unit_costs(n);
    for round in 0..12 {
        let cube = PFormula::and(
            (0..5)
                .map(|j| PFormula::lit((round * 5 + j * 3) % n, j % 2 == 0))
                .collect(),
        );
        solver.require(PFormula::not(cube));
    }
    c.bench_function("solver/min-cost-model", |b| {
        b.iter(|| black_box(&solver).solve().unwrap())
    });
}

fn bench_forward_and_backward(c: &mut Criterion) {
    let bench = Benchmark::load(pda_suite::suite().remove(0));
    let client = pda_escape::EscapeClient::new(&bench.program);
    let callees = bench.callees();
    let p_all_e = client.param_of_model(&vec![false; client.n_atoms()]);
    c.bench_function("forward/rhs-escape-tsp", |b| {
        b.iter(|| {
            pda_dataflow::rhs::run(
                &bench.program,
                &AsAnalysis(&client),
                black_box(&p_all_e),
                client.initial_state(),
                &callees,
                pda_dataflow::RhsLimits::default(),
            )
            .unwrap()
            .n_facts()
        })
    });

    // A counterexample trace for the first failing access query.
    let accesses = pda_escape::EscapeClient::accesses(&bench.program, bench.app_methods());
    let run = pda_dataflow::rhs::run(
        &bench.program,
        &AsAnalysis(&client),
        &p_all_e,
        client.initial_state(),
        &callees,
        pda_dataflow::RhsLimits::default(),
    )
    .unwrap();
    let (trace, query) = accesses
        .iter()
        .find_map(|&(point, var)| {
            let q = client.access_query(point, var);
            let failing = |d: &pda_escape::Env| q.not_q.holds(&p_all_e, d);
            run.witness(point, &failing).map(|t| (t, q))
        })
        .expect("some query fails under all-E");
    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();
    let d0 = client.initial_state();
    let cfg = BeamConfig::default();
    c.bench_function("backward/meta-analysis-trace", |b| {
        b.iter(|| {
            analyze_trace(
                &AsMeta(&client),
                black_box(&p_all_e),
                &d0,
                &atoms,
                &query.not_q,
                &cfg,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_dnf, bench_solver, bench_forward_and_backward
}
criterion_main!(kernels);
