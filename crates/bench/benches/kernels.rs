//! Micro-benchmarks for the kernels the paper's scalability story rests
//! on: DNF normalization/simplification, backward weakest preconditions,
//! forward tabulation, and minimum-cost model search.
//!
//! Uses the in-tree [`pda_bench::bench_case`] timing harness (no external
//! benchmark framework, so the workspace builds offline). Run with
//! `cargo bench -p pda-bench --bench kernels`.

use pda_bench::bench_case;
use pda_meta::{analyze_trace, simplify, BeamConfig, Formula};
use pda_solver::{MinCostSolver, PFormula};
use pda_suite::Benchmark;
use pda_tracer::{AsAnalysis, AsMeta, TracerClient};
use std::hint::black_box;

fn bench_dnf() {
    use pda_escape::{Cell, EscPrim, Val};
    use pda_lang::{FieldId, VarId};
    // A store-shaped wp formula conjunction, the worst DNF producer.
    let lit = |v: u32, val: Val| Formula::prim(EscPrim::CellIs(Cell::Var(VarId(v)), val));
    let flit = |f: u32, val: Val| Formula::prim(EscPrim::CellIs(Cell::Field(FieldId(f)), val));
    let parts: Vec<Formula<EscPrim>> = (0..6)
        .map(|i| {
            Formula::or(vec![
                Formula::and(vec![lit(i, Val::L), flit(0, Val::N)]),
                Formula::and(vec![lit(i, Val::E), flit(0, Val::L)]),
                Formula::not(lit(i, Val::N)),
            ])
        })
        .collect();
    let f = Formula::and(parts);
    let cfg = BeamConfig::default();
    bench_case("dnf/convert+simplify", 20, || {
        let dnf = pda_meta::approx::to_dnf(black_box(&f), &cfg, &|_| true);
        simplify(dnf)
    });
}

fn bench_solver() {
    // Accumulated-constraint shape: k rounds of ¬(cube over 30 atoms).
    let n = 30;
    let mut solver = MinCostSolver::with_unit_costs(n);
    for round in 0..12 {
        let cube = PFormula::and(
            (0..5)
                .map(|j| PFormula::lit((round * 5 + j * 3) % n, j % 2 == 0))
                .collect(),
        );
        solver.require(PFormula::not(cube));
    }
    bench_case("solver/min-cost-model", 20, || {
        black_box(&solver).solve().unwrap()
    });
}

fn bench_forward_and_backward() {
    let bench = Benchmark::load(pda_suite::suite().remove(0));
    let client = pda_escape::EscapeClient::new(&bench.program);
    let callees = bench.callees();
    let p_all_e = client.param_of_model(&vec![false; client.n_atoms()]);
    bench_case("forward/rhs-escape-tsp", 20, || {
        pda_dataflow::rhs::run(
            &bench.program,
            &AsAnalysis(&client),
            black_box(&p_all_e),
            client.initial_state(),
            &callees,
            pda_dataflow::RhsLimits::default(),
        )
        .unwrap()
        .n_facts()
    });

    // A counterexample trace for the first failing access query.
    let accesses = pda_escape::EscapeClient::accesses(&bench.program, bench.app_methods());
    let run = pda_dataflow::rhs::run(
        &bench.program,
        &AsAnalysis(&client),
        &p_all_e,
        client.initial_state(),
        &callees,
        pda_dataflow::RhsLimits::default(),
    )
    .unwrap();
    let (trace, query) = accesses
        .iter()
        .find_map(|&(point, var)| {
            let q = client.access_query(point, var);
            let failing = |d: &pda_escape::Env| q.not_q.holds(&p_all_e, d);
            run.witness(point, &failing).map(|t| (t, q))
        })
        .expect("some query fails under all-E");
    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();
    let d0 = client.initial_state();
    let cfg = BeamConfig::default();
    bench_case("backward/meta-analysis-trace", 20, || {
        analyze_trace(
            &AsMeta(&client),
            black_box(&p_all_e),
            &d0,
            &atoms,
            &query.not_q,
            &cfg,
        )
        .unwrap()
    });
}

fn main() {
    bench_dnf();
    bench_solver();
    bench_forward_and_backward();
}
