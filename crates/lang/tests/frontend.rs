//! Frontend integration tests: whole-pipeline behaviors that span the
//! lexer, parser, resolver, CFG builder, inliner, and validator.

use pda_lang::term::{inline, resolve_by_name};
use pda_lang::{parse_program, validate, Atom, Node};

#[test]
fn kitchen_sink_program_is_well_formed() {
    let p = parse_program(
        r#"
        global cache, log;
        class Node { field next, data; fn visit(x) { this.data = x; return x; } }
        class Leaf { fn visit(x) { return x; } }
        typestate Node {
            init fresh;
            fresh -> visit -> seen;
            seen -> visit -> seen;
        }
        fn build(n) {
            var head, cur;
            head = new Node;
            cur = head;
            while (*) {
                var tmp;
                tmp = new Node;
                cur.next = tmp;
                cur = tmp;
            }
            return head;
        }
        fn main() {
            var root, it, x;
            x = null;
            root = build(x);
            it = root;
            while (*) {
                it.visit(x);
                it = it.next;
            }
            if (*) { cache = root; }
            query qroot: local root;
            query qstate: state root in { fresh seen };
        }
        "#,
    )
    .unwrap();
    assert_eq!(validate::check(&p), Vec::new());
    assert_eq!(p.queries.len(), 2);
    assert_eq!(p.typestates.len(), 1);
    // `var tmp;` inside the loop body still resolves (function scoping).
    assert!(p
        .methods
        .iter()
        .flat_map(|m| &m.vars)
        .any(|&v| p.var_name(v) == "tmp"));
}

#[test]
fn nested_declarations_are_function_scoped() {
    // Declaring in one branch, using in another, is allowed (function
    // scope, like the JVM's locals) — the resolver initializes to null.
    let p = parse_program(
        r#"
        fn main() {
            var a;
            if (*) { var b; b = null; } else { b = a; }
            a = b;
        }
        "#,
    );
    assert!(p.is_ok(), "{p:?}");
}

#[test]
fn duplicate_declaration_in_same_function_rejected() {
    let err = parse_program("fn main() { var a; if (*) { var a; } }").unwrap_err();
    assert!(err.to_string().contains("duplicate variable"));
}

#[test]
fn inliner_handles_diamond_call_graphs() {
    // f calls g twice and h once; h also calls g. Each call site clones.
    let p = parse_program(
        r#"
        fn g(x) { var t; t = x; return t; }
        fn h(x) { var r; r = g(x); return r; }
        fn main() {
            var a, b, c;
            a = null;
            b = g(a);
            c = g(b);
            c = h(c);
        }
        "#,
    )
    .unwrap();
    let resolver = resolve_by_name(&p);
    let inl = inline(&p, &resolver).unwrap();
    // g has 3 expansions (2 direct + 1 via h), h has 1.
    // g's locals: x, t, $ret (3); h's: x, r, $ret (3).
    assert_eq!(inl.n_vars, p.vars.len() + 3 * 3 + 3);
}

#[test]
fn deep_nesting_parses_and_lowers() {
    let mut src = String::from("fn main() { var x; ");
    for _ in 0..30 {
        src.push_str("if (*) { while (*) { ");
    }
    src.push_str("x = null;");
    for _ in 0..30 {
        src.push_str(" } } ");
    }
    src.push('}');
    let p = parse_program(&src).unwrap();
    assert!(validate::check(&p).is_empty());
    let cfg = &p.methods[p.main].cfg;
    // One loop-head join node per `while`, plus entry/exit/inits/atom;
    // `if` diamonds merge frontiers without dedicated nodes.
    assert!(cfg.len() > 30, "got {}", cfg.len());
}

#[test]
fn every_atom_shape_reachable_in_cfg() {
    let p = parse_program(
        r#"
        global g;
        class C { field f; fn m(); }
        fn callee(a) { return a; }
        fn main() {
            var x, y;
            x = new C;     // New
            y = x;         // Copy
            y = null;      // Null
            y = x.f;       // Load
            x.f = y;       // Store
            g = x;         // GSet
            y = g;         // GGet
            x.m();         // Invoke (+ Havoc-free)
            y = x.m();     // Invoke + Havoc (bodyless with dst)
            spawn x;       // Spawn
            callee(x);     // Call node
        }
        "#,
    )
    .unwrap();
    let mut shapes = std::collections::HashSet::new();
    for (_, node) in p.methods[p.main].cfg.iter() {
        if let Node::Atom(a, _) = &node.kind {
            shapes.insert(std::mem::discriminant(a));
        }
    }
    // New, Copy, Null, Load, Store, GSet, GGet, Spawn, Nop(absent) — the
    // Invoke/Havoc atoms are synthesized by the engines at Call nodes, so
    // 8 shapes appear in the CFG itself.
    assert!(shapes.len() >= 8, "found {} shapes", shapes.len());
    let _ = Atom::Nop;
}

#[test]
fn line_numbers_track_source() {
    let p = parse_program("fn main() {\n var x;\n x = null;\n query q: local x;\n}").unwrap();
    let q = p.query_by_label("q").unwrap();
    assert_eq!(p.points[p.queries[q].point].line, 4);
}

#[test]
fn site_labels_and_method_names_render() {
    let p = parse_program("class Widget {} fn main() { var x; x = new Widget; }").unwrap();
    assert_eq!(p.site_label(pda_lang::SiteId(0)), "Widget#0");
    assert_eq!(p.method_name(p.main), "main");
}
