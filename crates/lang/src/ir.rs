//! The resolved intermediate representation.
//!
//! A [`Program`] is an arena of interned entities. Method bodies exist in
//! two equivalent forms: a structured [`RStmt`] tree (mirroring the paper's
//! regular command language `a | s;s' | s+s' | s*`) and a [`Cfg`] derived
//! from it (consumed by the RHS tabulation engine).

use crate::cfg::{Cfg, NodeId};
use pda_util::{define_idx, IdxVec};
use std::collections::HashMap;

define_idx!(
    /// Index of an interned name (identifier).
    NameId
);
define_idx!(
    /// Index of a class declaration.
    ClassId
);
define_idx!(
    /// Index of an instance field. Fields are identified by name alone
    /// (field-based heap abstraction, as in the paper's Figure 5).
    FieldId
);
define_idx!(
    /// Index of a global (static) variable.
    GlobalId
);
define_idx!(
    /// Index of a local variable. Variables are program-wide unique; the
    /// type-state abstraction parameter is a set of `VarId`s.
    VarId
);
define_idx!(
    /// Index of a method or free function.
    MethodId
);
define_idx!(
    /// Index of an object allocation site (`h` in the paper). The
    /// thread-escape abstraction parameter maps `SiteId → {L, E}`.
    SiteId
);
define_idx!(
    /// Index of a program point. Every atom and call occurrence has one;
    /// queries name the point they are posed at.
    PointId
);
define_idx!(
    /// Index of a call site occurrence.
    CallId
);
define_idx!(
    /// Index of a query.
    QueryId
);

/// A synthetic program point used by CFG construction for join nodes that
/// have no source location. Never registered in [`Program::points`].
pub const SYNTHETIC_POINT: PointId = PointId(u32::MAX);

/// An interner mapping identifier strings to dense [`NameId`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    names: IdxVec<NameId, String>,
    map: HashMap<String, NameId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its id (stable across repeated calls).
    pub fn intern(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.names.push(s.to_string());
        self.map.insert(s.to_string(), id);
        id
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<NameId> {
        self.map.get(s).copied()
    }

    /// The string for `id`.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id]
    }
}

/// The atomic commands of the analyzed language.
///
/// This is the shared alphabet between the forward analyses (Figures 4
/// and 5 of the paper) and the backward meta-analysis (Figures 10 and 11):
/// every transfer function in the workspace is a function of an `Atom`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `dst = new h` — allocate at site `site`.
    New {
        /// Destination variable.
        dst: VarId,
        /// Allocation site.
        site: SiteId,
    },
    /// `dst = src` — local-to-local copy.
    Copy {
        /// Destination variable.
        dst: VarId,
        /// Source variable.
        src: VarId,
    },
    /// `dst = null`.
    Null {
        /// Destination variable.
        dst: VarId,
    },
    /// `dst = base.field` — heap load.
    Load {
        /// Destination variable.
        dst: VarId,
        /// Base object variable.
        base: VarId,
        /// Field name.
        field: FieldId,
    },
    /// `base.field = src` — heap store.
    Store {
        /// Base object variable.
        base: VarId,
        /// Field name.
        field: FieldId,
        /// Source variable.
        src: VarId,
    },
    /// `global = src` — write a static variable (publishes `src`).
    GSet {
        /// The global variable.
        global: GlobalId,
        /// Source variable.
        src: VarId,
    },
    /// `dst = global` — read a static variable.
    GGet {
        /// Destination variable.
        dst: VarId,
        /// The global variable.
        global: GlobalId,
    },
    /// The type-state transition point of a virtual call `recv.m(...)`.
    ///
    /// Interprocedural parameter/return flow is expressed separately with
    /// `Copy` atoms by the engines; this atom carries only what the
    /// type-state transfer function needs.
    Invoke {
        /// Receiver variable.
        recv: VarId,
        /// Method name.
        method: NameId,
    },
    /// `spawn src` — start a thread on the object `src` points to.
    Spawn {
        /// Source variable.
        src: VarId,
    },
    /// `dst` receives an unknown value (result of a bodyless call).
    Havoc {
        /// Destination variable.
        dst: VarId,
    },
    /// No effect; used for query points and branch joins.
    Nop,
}

/// A structured (regular) command tree, one per method body.
///
/// `Seq`/`Choice`/`Star` mirror the `s ; s'`, `s + s'`, and `s*`
/// constructors of the paper's Section 3.1. Calls are kept structured so
/// the inliner and the CFG builder can expand them differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RStmt {
    /// An atomic command at a program point.
    Atom(Atom, PointId),
    /// A call occurrence (virtual or static).
    Call(CallId),
    /// Sequential composition.
    Seq(Vec<RStmt>),
    /// Nondeterministic choice.
    Choice(Box<RStmt>, Box<RStmt>),
    /// Iteration (loop).
    Star(Box<RStmt>),
}

impl RStmt {
    /// An empty statement.
    pub fn skip() -> RStmt {
        RStmt::Seq(Vec::new())
    }
}

/// How a call site selects its callee(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// A direct call to a free function.
    Static(MethodId),
    /// A virtual call `recv.m(...)`, resolved through the 0-CFA call
    /// graph (in `pda-analysis`).
    Virtual {
        /// Receiver variable.
        recv: VarId,
        /// Method name to dispatch on.
        method: NameId,
    },
}

/// One call occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallInfo {
    /// Dispatch kind.
    pub kind: CallKind,
    /// Argument variables (excluding the receiver).
    pub args: Vec<VarId>,
    /// Variable receiving the result, if any.
    pub dst: Option<VarId>,
    /// The call's program point.
    pub point: PointId,
    /// The method containing this call.
    pub caller: MethodId,
}

/// A class: a name plus its declared fields and methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassInfo {
    /// Class name.
    pub name: NameId,
    /// Declared fields.
    pub fields: Vec<FieldId>,
    /// Methods, keyed by name for dispatch.
    pub methods: HashMap<NameId, MethodId>,
}

/// A method or free function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodInfo {
    /// Name.
    pub name: NameId,
    /// Owning class, or `None` for free functions.
    pub class: Option<ClassId>,
    /// Parameters; for class methods, `params[0]` is `this`.
    pub params: Vec<VarId>,
    /// The synthesized return-value variable (methods with a body only).
    pub ret: Option<VarId>,
    /// All locals (including parameters and `ret`).
    pub vars: Vec<VarId>,
    /// Structured body, or `None` for atomic (bodyless) methods.
    pub body: Option<RStmt>,
    /// Control-flow graph derived from `body` (empty for atomic methods).
    pub cfg: Cfg,
}

/// A variable: its name and owning method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Source name.
    pub name: NameId,
    /// The method the variable belongs to.
    pub method: MethodId,
}

/// An allocation site: `new class` at `point` inside `method`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// Allocated class.
    pub class: ClassId,
    /// The site's program point.
    pub point: PointId,
    /// Containing method.
    pub method: MethodId,
}

/// Where a program point lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointInfo {
    /// Containing method.
    pub method: MethodId,
    /// The CFG node realizing this point (filled in by CFG construction).
    pub node: NodeId,
    /// Source line.
    pub line: u32,
}

/// The two query flavors, resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// Thread-escape: prove the object `var` points to is thread-local.
    Local {
        /// The accessed variable.
        var: VarId,
    },
    /// Type-state: prove the object `var` points to is in an allowed state.
    State {
        /// The receiver variable.
        var: VarId,
        /// Allowed automaton state names.
        allowed: Vec<NameId>,
    },
}

/// A resolved query at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDecl {
    /// Source label (unique).
    pub label: String,
    /// The point the query is posed at.
    pub point: PointId,
    /// What to prove.
    pub kind: QueryKind,
}

/// A resolved type-state automaton declaration.
///
/// Interpreted by the `pda-typestate` crate; stored here because it is part
/// of the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypestateDecl {
    /// The class whose objects the automaton tracks.
    pub class: ClassId,
    /// Initial state name.
    pub init: NameId,
    /// Transitions `(from, method, to)`; `to` may be the reserved name
    /// `error`.
    pub transitions: Vec<(NameId, NameId, NameId)>,
    /// The reserved `error` name, interned for convenience.
    pub error_name: NameId,
}

/// A whole resolved program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Interned identifier names.
    pub names: Interner,
    /// Classes.
    pub classes: IdxVec<ClassId, ClassInfo>,
    /// Instance fields (shared by name across classes).
    pub fields: IdxVec<FieldId, NameId>,
    /// Global (static) variables.
    pub globals: IdxVec<GlobalId, NameId>,
    /// Local variables of all methods.
    pub vars: IdxVec<VarId, VarInfo>,
    /// Methods and free functions.
    pub methods: IdxVec<MethodId, MethodInfo>,
    /// Allocation sites.
    pub sites: IdxVec<SiteId, SiteInfo>,
    /// Call occurrences.
    pub calls: IdxVec<CallId, CallInfo>,
    /// Program points.
    pub points: IdxVec<PointId, PointInfo>,
    /// Queries.
    pub queries: IdxVec<QueryId, QueryDecl>,
    /// Type-state automata declarations.
    pub typestates: Vec<TypestateDecl>,
    /// The entry method (`main`).
    pub main: MethodId,
}

impl Program {
    /// The name of variable `v` as written in source.
    pub fn var_name(&self, v: VarId) -> &str {
        self.names.resolve(self.vars[v].name)
    }

    /// The name of method `m`.
    pub fn method_name(&self, m: MethodId) -> &str {
        self.names.resolve(self.methods[m].name)
    }

    /// The name of the class allocated at site `h`, plus its index — e.g.
    /// `"File#3"`; used in diagnostics and experiment output.
    pub fn site_label(&self, h: SiteId) -> String {
        let class = self.sites[h].class;
        format!("{}#{}", self.names.resolve(self.classes[class].name), h)
    }

    /// Looks up a query by its source label.
    pub fn query_by_label(&self, label: &str) -> Option<QueryId> {
        self.queries
            .iter_enumerated()
            .find(|(_, q)| q.label == label)
            .map(|(id, _)| id)
    }

    /// Looks up a local variable of `main` by name (test convenience).
    pub fn main_var(&self, name: &str) -> Option<VarId> {
        let n = self.names.get(name)?;
        self.methods[self.main]
            .vars
            .iter()
            .copied()
            .find(|&v| self.vars[v].name == n)
    }

    /// Total number of local variables (the type-state parameter universe).
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Total number of allocation sites (the escape parameter universe).
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }
}
