//! **Jaylite**: a mini-Java frontend for the `optimum-pda` workspace.
//!
//! The PLDI'13 paper this workspace reproduces ("Finding Optimum
//! Abstractions in Parametric Dataflow Analysis") evaluates on Java bytecode
//! analyzed inside the Chord framework. Neither is available here, so this
//! crate provides the substitute substrate: a small imperative
//! class-based language whose lowered programs consist of *exactly* the
//! atomic commands the paper's Figures 4 and 5 give transfer functions for
//! (`v = new h`, `v = w`, `v = null`, `v = w.f`, `v.f = w`, `g = v`,
//! `v = g`, `x.m()`), plus `spawn v` for thread creation.
//!
//! # Pipeline
//!
//! ```text
//! source text --lexer--> tokens --parser--> AST --resolver--> Program
//!                                                   (IR: atoms, CFGs, terms)
//! ```
//!
//! * [`lexer`] / [`parser`] produce an [`ast::SourceProgram`].
//! * [`resolve`] turns it into a [`Program`]: interned entities
//!   (classes, fields, globals, variables, methods, allocation sites,
//!   program points, queries) plus per-method control-flow in two
//!   equivalent forms — a structured [`RStmt`] tree and a [`Cfg`].
//! * [`term`] flattens a whole program into the regular-term language of
//!   the paper's Section 3 (`a | s;s' | s+s' | s*`) by inlining calls,
//!   which is what the exact reference engine in `pda-dataflow` consumes.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     class File {}
//!     fn main() {
//!         var x, y;
//!         x = new File;
//!         y = x;
//!         query q1: local x;
//!     }
//! "#;
//! let program = pda_lang::parse_program(src).unwrap();
//! assert_eq!(program.queries.len(), 1);
//! assert_eq!(program.sites.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod term;
pub mod validate;

pub use cfg::{Cfg, CfgNode, Node, NodeId};
pub use ir::{
    Atom, CallId, CallInfo, CallKind, ClassId, ClassInfo, FieldId, GlobalId, MethodId, MethodInfo,
    NameId, PointId, Program, QueryDecl, QueryId, QueryKind, RStmt, SiteId, TypestateDecl, VarId,
};
pub use term::{InlineError, InlinedProgram, TermArena, TermId, TermNode};

/// Parses and resolves Jaylite source into a [`Program`].
///
/// This is the one-call entry point used by examples and tests.
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first lexical, syntactic, or
/// resolution problem encountered.
pub fn parse_program(src: &str) -> Result<Program, FrontendError> {
    let tokens = lexer::lex(src).map_err(FrontendError::Lex)?;
    let ast = parser::parse(&tokens).map_err(FrontendError::Parse)?;
    resolve::resolve(&ast).map_err(FrontendError::Resolve)
}

/// Any error produced while turning source text into IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Lexical error (unexpected character, etc.).
    Lex(lexer::LexError),
    /// Syntax error.
    Parse(parser::ParseError),
    /// Name-resolution or well-formedness error.
    Resolve(resolve::ResolveError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Lex(e) => write!(f, "lex error: {e}"),
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Resolve(e) => write!(f, "resolve error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}
