//! Per-method control-flow graphs, derived from structured [`RStmt`] trees.

use crate::ir::{Atom, CallId, PointId, RStmt, SYNTHETIC_POINT};
use pda_util::{define_idx, IdxVec};

define_idx!(
    /// Index of a CFG node within one method.
    NodeId
);

/// What a CFG node does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Method entry.
    Entry,
    /// Method exit.
    Exit,
    /// An atomic command.
    Atom(Atom, PointId),
    /// A call occurrence.
    Call(CallId),
}

/// A CFG node plus its successor edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgNode {
    /// The node payload.
    pub kind: Node,
    /// Successor nodes.
    pub succs: Vec<NodeId>,
}

/// A method control-flow graph.
///
/// Built structurally from the method's [`RStmt`] body, so it contains no
/// unreachable nodes except possibly `Exit` (for non-returning bodies).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cfg {
    /// All nodes; `entry` and `exit` index into this.
    pub nodes: IdxVec<NodeId, CfgNode>,
    /// The entry node.
    pub entry: NodeId,
    /// The exit node.
    pub exit: NodeId,
}

impl Cfg {
    /// Builds a CFG from a structured body.
    ///
    /// `Choice` becomes a diamond, `Star` becomes a loop with a skip edge;
    /// the node set is exactly the atoms/calls of the body plus
    /// `Entry`/`Exit`.
    pub fn from_rstmt(body: &RStmt) -> Cfg {
        let mut cfg = Cfg::default();
        cfg.entry = cfg.nodes.push(CfgNode { kind: Node::Entry, succs: Vec::new() });
        cfg.exit = cfg.nodes.push(CfgNode { kind: Node::Exit, succs: Vec::new() });
        let frontier = cfg.lower(body, vec![cfg.entry]);
        for n in frontier {
            cfg.add_edge(n, cfg.exit);
        }
        cfg
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn add_node(&mut self, kind: Node, preds: &[NodeId]) -> NodeId {
        let n = self.nodes.push(CfgNode { kind, succs: Vec::new() });
        for &p in preds {
            self.add_edge(p, n);
        }
        n
    }

    /// Lowers `stmt` given the current frontier (nodes whose control falls
    /// into `stmt`), returning the new frontier.
    fn lower(&mut self, stmt: &RStmt, frontier: Vec<NodeId>) -> Vec<NodeId> {
        match stmt {
            RStmt::Atom(a, p) => vec![self.add_node(Node::Atom(*a, *p), &frontier)],
            RStmt::Call(c) => vec![self.add_node(Node::Call(*c), &frontier)],
            RStmt::Seq(ss) => {
                let mut f = frontier;
                for s in ss {
                    f = self.lower(s, f);
                }
                f
            }
            RStmt::Choice(a, b) => {
                let mut fa = self.lower(a, frontier.clone());
                let fb = self.lower(b, frontier);
                fa.extend(fb);
                fa
            }
            RStmt::Star(body) => {
                // A join node so the loop has a single head to come back to.
                let head = self.add_node(Node::Atom(Atom::Nop, SYNTHETIC_POINT), &frontier);
                let back = self.lower(body, vec![head]);
                for n in back {
                    self.add_edge(n, head);
                }
                vec![head]
            }
        }
    }

    /// Nodes in arbitrary (index) order with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &CfgNode)> {
        self.nodes.iter_enumerated()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the CFG holds no nodes (bodyless method).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::VarId;
    use pda_util::Idx;

    fn atom(n: u32) -> RStmt {
        RStmt::Atom(Atom::Null { dst: VarId(n) }, PointId(n))
    }

    fn reachable_exit(cfg: &Cfg) -> bool {
        let mut seen = vec![false; cfg.len()];
        let mut stack = vec![cfg.entry];
        while let Some(n) = stack.pop() {
            if seen[n.index()] {
                continue;
            }
            seen[n.index()] = true;
            stack.extend(cfg.nodes[n].succs.iter().copied());
        }
        seen[cfg.exit.index()]
    }

    #[test]
    fn straight_line() {
        let cfg = Cfg::from_rstmt(&RStmt::Seq(vec![atom(0), atom(1)]));
        assert_eq!(cfg.len(), 4); // entry, exit, two atoms
        assert!(reachable_exit(&cfg));
    }

    #[test]
    fn choice_is_diamond() {
        let cfg = Cfg::from_rstmt(&RStmt::Choice(Box::new(atom(0)), Box::new(atom(1))));
        assert!(reachable_exit(&cfg));
        // Entry has two successors.
        assert_eq!(cfg.nodes[cfg.entry].succs.len(), 2);
    }

    #[test]
    fn empty_choice_branch_flows_through() {
        let cfg = Cfg::from_rstmt(&RStmt::Choice(Box::new(atom(0)), Box::new(RStmt::skip())));
        // Entry reaches exit directly through the empty branch.
        assert!(cfg.nodes[cfg.entry].succs.contains(&cfg.exit));
    }

    #[test]
    fn star_has_back_edge() {
        let cfg = Cfg::from_rstmt(&RStmt::Star(Box::new(atom(0))));
        assert!(reachable_exit(&cfg));
        // Some node loops back to the loop head.
        let head = cfg.nodes[cfg.entry].succs[0];
        let back = cfg
            .iter()
            .any(|(id, n)| id != cfg.entry && n.succs.contains(&head));
        assert!(back);
    }

    #[test]
    fn empty_body_connects_entry_to_exit() {
        let cfg = Cfg::from_rstmt(&RStmt::skip());
        assert_eq!(cfg.nodes[cfg.entry].succs, vec![cfg.exit]);
    }
}
