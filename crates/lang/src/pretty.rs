//! Human-readable rendering of IR entities, used by examples, diagnostics,
//! and the experiment harness.

use crate::cfg::Node;
use crate::ir::{Atom, MethodId, Program};

/// Renders an atomic command in source-like syntax.
///
/// # Examples
///
/// ```
/// let p = pda_lang::parse_program("class C {} fn main() { var x; x = new C; }").unwrap();
/// let cfg = &p.methods[p.main].cfg;
/// let rendered: Vec<String> = cfg
///     .iter()
///     .filter_map(|(_, n)| match &n.kind {
///         pda_lang::Node::Atom(a, _) => Some(pda_lang::pretty::atom(&p, a)),
///         _ => None,
///     })
///     .collect();
/// assert!(rendered.contains(&"x = new C#0".to_string()));
/// ```
pub fn atom(p: &Program, a: &Atom) -> String {
    let v = |v| p.var_name(v).to_string();
    match *a {
        Atom::New { dst, site } => format!("{} = new {}", v(dst), p.site_label(site)),
        Atom::Copy { dst, src } => format!("{} = {}", v(dst), v(src)),
        Atom::Null { dst } => format!("{} = null", v(dst)),
        Atom::Load { dst, base, field } => {
            format!("{} = {}.{}", v(dst), v(base), p.names.resolve(p.fields[field]))
        }
        Atom::Store { base, field, src } => {
            format!("{}.{} = {}", v(base), p.names.resolve(p.fields[field]), v(src))
        }
        Atom::GSet { global, src } => {
            format!("{} = {}", p.names.resolve(p.globals[global]), v(src))
        }
        Atom::GGet { dst, global } => {
            format!("{} = {}", v(dst), p.names.resolve(p.globals[global]))
        }
        Atom::Invoke { recv, method } => {
            format!("{}.{}()", v(recv), p.names.resolve(method))
        }
        Atom::Spawn { src } => format!("spawn {}", v(src)),
        Atom::Havoc { dst } => format!("{} = havoc", v(dst)),
        Atom::Nop => "nop".to_string(),
    }
}

/// Renders a method's CFG, one node per line, for debugging.
pub fn method_cfg(p: &Program, m: MethodId) -> String {
    let info = &p.methods[m];
    let mut out = format!("fn {}:\n", p.method_name(m));
    for (id, node) in info.cfg.iter() {
        let body = match &node.kind {
            Node::Entry => "entry".to_string(),
            Node::Exit => "exit".to_string(),
            Node::Atom(a, _) => atom(p, a),
            Node::Call(c) => {
                let call = &p.calls[*c];
                let args: Vec<&str> = call.args.iter().map(|&a| p.var_name(a)).collect();
                let dst = call
                    .dst
                    .map(|d| format!("{} = ", p.var_name(d)))
                    .unwrap_or_default();
                match &call.kind {
                    crate::ir::CallKind::Static(target) => {
                        format!("{dst}{}({})", p.method_name(*target), args.join(", "))
                    }
                    crate::ir::CallKind::Virtual { recv, method } => format!(
                        "{dst}{}.{}({})",
                        p.var_name(*recv),
                        p.names.resolve(*method),
                        args.join(", ")
                    ),
                }
            }
        };
        let succs: Vec<String> = node.succs.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!("  n{id}: {body} -> [{}]\n", succs.join(", ")));
    }
    out
}

/// Renders a trace (a flattened run) one atom per line.
pub fn trace(p: &Program, atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(|a| atom(p, a))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn renders_all_atom_forms() {
        let p = parse_program(
            r#"
            global g;
            class C { field f; fn m(); }
            fn main() {
                var x, y;
                x = new C;
                y = x;
                y = null;
                y = x.f;
                x.f = y;
                g = x;
                y = g;
                x.m();
                spawn x;
            }
            "#,
        )
        .unwrap();
        let dump = method_cfg(&p, p.main);
        for needle in [
            "x = new C#0",
            "y = x",
            "y = null",
            "y = x.f",
            "x.f = y",
            "g = x",
            "= g",
            "x.m()",
            "spawn x",
        ] {
            assert!(dump.contains(needle), "missing `{needle}` in:\n{dump}");
        }
    }

    #[test]
    fn trace_joins_lines() {
        let p = parse_program("fn main() { var x; x = null; }").unwrap();
        let x = p.main_var("x").unwrap();
        let s = trace(&p, &[Atom::Null { dst: x }, Atom::Nop]);
        assert_eq!(s, "x = null\nnop");
    }
}
