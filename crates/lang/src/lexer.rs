//! Hand-written lexer for Jaylite source text.

use std::fmt;

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line, used in diagnostics.
    pub line: u32,
}

/// Token kinds.
///
/// Keywords are distinguished from identifiers during lexing so the parser
/// stays simple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier (or keyword-like word that is not reserved).
    Ident(String),
    /// `class`
    KwClass,
    /// `field`
    KwField,
    /// `fn`
    KwFn,
    /// `global`
    KwGlobal,
    /// `var`
    KwVar,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `return`
    KwReturn,
    /// `new`
    KwNew,
    /// `null`
    KwNull,
    /// `spawn`
    KwSpawn,
    /// `query`
    KwQuery,
    /// `local`
    KwLocal,
    /// `state`
    KwState,
    /// `in`
    KwIn,
    /// `typestate`
    KwTypestate,
    /// `init`
    KwInit,
    /// `this`
    KwThis,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::KwClass => write!(f, "`class`"),
            Tok::KwField => write!(f, "`field`"),
            Tok::KwFn => write!(f, "`fn`"),
            Tok::KwGlobal => write!(f, "`global`"),
            Tok::KwVar => write!(f, "`var`"),
            Tok::KwIf => write!(f, "`if`"),
            Tok::KwElse => write!(f, "`else`"),
            Tok::KwWhile => write!(f, "`while`"),
            Tok::KwReturn => write!(f, "`return`"),
            Tok::KwNew => write!(f, "`new`"),
            Tok::KwNull => write!(f, "`null`"),
            Tok::KwSpawn => write!(f, "`spawn`"),
            Tok::KwQuery => write!(f, "`query`"),
            Tok::KwLocal => write!(f, "`local`"),
            Tok::KwState => write!(f, "`state`"),
            Tok::KwIn => write!(f, "`in`"),
            Tok::KwTypestate => write!(f, "`typestate`"),
            Tok::KwInit => write!(f, "`init`"),
            Tok::KwThis => write!(f, "`this`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub ch: char,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` on line {}", self.ch, self.line)
    }
}

impl std::error::Error for LexError {}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "class" => Tok::KwClass,
        "field" => Tok::KwField,
        "fn" => Tok::KwFn,
        "global" => Tok::KwGlobal,
        "var" => Tok::KwVar,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "return" => Tok::KwReturn,
        "new" => Tok::KwNew,
        "null" => Tok::KwNull,
        "spawn" => Tok::KwSpawn,
        "query" => Tok::KwQuery,
        "local" => Tok::KwLocal,
        "state" => Tok::KwState,
        "in" => Tok::KwIn,
        "typestate" => Tok::KwTypestate,
        "init" => Tok::KwInit,
        "this" => Tok::KwThis,
        _ => return None,
    })
}

/// Lexes Jaylite source into a token stream ending with [`Tok::Eof`].
///
/// Line comments start with `//`. Identifiers match
/// `[A-Za-z_][A-Za-z0-9_]*`; digits are allowed inside identifiers (the
/// benchmark generator names entities `v17`, `h3`, ...).
///
/// # Errors
///
/// Returns [`LexError`] on the first character that cannot begin a token.
///
/// # Examples
///
/// ```
/// let toks = pda_lang::lexer::lex("x = new File;").unwrap();
/// assert_eq!(toks.len(), 6); // x = new File ; EOF
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token { kind: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: Tok::RParen, line });
                i += 1;
            }
            '{' => {
                tokens.push(Token { kind: Tok::LBrace, line });
                i += 1;
            }
            '}' => {
                tokens.push(Token { kind: Tok::RBrace, line });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: Tok::Semi, line });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: Tok::Comma, line });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: Tok::Dot, line });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: Tok::Eq, line });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: Tok::Star, line });
                i += 1;
            }
            ':' => {
                tokens.push(Token { kind: Tok::Colon, line });
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&'>') => {
                tokens.push(Token { kind: Tok::Arrow, line });
                i += 2;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let kind = keyword(&word).unwrap_or(Tok::Ident(word));
                tokens.push(Token { kind, line });
            }
            other => return Err(LexError { ch: other, line }),
        }
    }
    tokens.push(Token { kind: Tok::Eof, line });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("x = y.f;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Ident("y".into()),
                Tok::Dot,
                Tok::Ident("f".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_arrow() {
        assert_eq!(
            kinds("typestate File { init closed; closed -> open -> opened; }"),
            vec![
                Tok::KwTypestate,
                Tok::Ident("File".into()),
                Tok::LBrace,
                Tok::KwInit,
                Tok::Ident("closed".into()),
                Tok::Semi,
                Tok::Ident("closed".into()),
                Tok::Arrow,
                Tok::Ident("open".into()),
                Tok::Arrow,
                Tok::Ident("opened".into()),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// hello\nx;").unwrap();
        assert_eq!(toks[0].kind, Tok::Ident("x".into()));
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("x = 3 + 4;").unwrap_err();
        assert_eq!(err.ch, '3');
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn identifiers_can_contain_digits_after_letter() {
        assert_eq!(
            kinds("v17"),
            vec![Tok::Ident("v17".into()), Tok::Eof]
        );
    }
}
