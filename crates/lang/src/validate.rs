//! IR well-formedness validation.
//!
//! The engines and clients assume structural invariants of a resolved
//! [`Program`] (variables belong to their method, points map back to their
//! CFG nodes, calls are arity-correct, CFGs are connected). The resolver
//! establishes them; this module checks them, guarding against regressions
//! and validating generated benchmarks in the suite's tests.

use crate::cfg::Node;
use crate::ir::{Atom, CallKind, MethodId, Program, VarId, SYNTHETIC_POINT};
use pda_util::Idx;
use std::fmt;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An atom in method `method` mentions a variable owned by another
    /// method (binding glue excepted — it never appears in CFGs).
    ForeignVariable {
        /// The method containing the atom.
        method: MethodId,
        /// The foreign variable.
        var: VarId,
    },
    /// A program point's recorded node does not hold that point.
    PointNodeMismatch {
        /// The broken point.
        point: crate::ir::PointId,
    },
    /// A call passes the wrong number of arguments for a static target.
    CallArity {
        /// The broken call.
        call: crate::ir::CallId,
    },
    /// A CFG node is unreachable from the method entry.
    UnreachableNode {
        /// The method.
        method: MethodId,
        /// The unreachable node.
        node: crate::cfg::NodeId,
    },
    /// A method with a body lacks a return variable or vice versa.
    RetShape {
        /// The method.
        method: MethodId,
    },
    /// A query references a point of a different method than its variable.
    QueryScope {
        /// The broken query.
        query: crate::ir::QueryId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ForeignVariable { method, var } => {
                write!(f, "method {method} mentions foreign variable v{var}")
            }
            Violation::PointNodeMismatch { point } => {
                write!(f, "point {point} maps to a node that does not carry it")
            }
            Violation::CallArity { call } => write!(f, "call {call} has wrong arity"),
            Violation::UnreachableNode { method, node } => {
                write!(f, "node n{node} of method {method} is unreachable")
            }
            Violation::RetShape { method } => {
                write!(f, "method {method} has inconsistent body/ret shape")
            }
            Violation::QueryScope { query } => {
                write!(f, "query {query} names a variable outside its point's method")
            }
        }
    }
}

fn atom_vars(a: &Atom) -> Vec<VarId> {
    match *a {
        Atom::New { dst, .. } | Atom::Null { dst } | Atom::GGet { dst, .. } | Atom::Havoc { dst } => {
            vec![dst]
        }
        Atom::Copy { dst, src } => vec![dst, src],
        Atom::Load { dst, base, .. } => vec![dst, base],
        Atom::Store { base, src, .. } => vec![base, src],
        Atom::GSet { src, .. } | Atom::Spawn { src } => vec![src],
        Atom::Invoke { recv, .. } => vec![recv],
        Atom::Nop => vec![],
    }
}

/// Checks all invariants, returning every violation found (empty for a
/// well-formed program).
///
/// # Examples
///
/// ```
/// let p = pda_lang::parse_program("fn main() { var x; x = null; }").unwrap();
/// assert!(pda_lang::validate::check(&p).is_empty());
/// ```
pub fn check(program: &Program) -> Vec<Violation> {
    let mut out = Vec::new();
    for (mid, m) in program.methods.iter_enumerated() {
        // Body/ret consistency.
        if m.body.is_some() != m.ret.is_some() {
            out.push(Violation::RetShape { method: mid });
        }
        if m.body.is_none() {
            continue;
        }
        // Reachability within the CFG.
        let mut seen = vec![false; m.cfg.len()];
        let mut stack = vec![m.cfg.entry];
        seen[m.cfg.entry.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in &m.cfg.nodes[n].succs {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        for (nid, node) in m.cfg.iter() {
            if !seen[nid.index()] && nid != m.cfg.exit {
                out.push(Violation::UnreachableNode { method: mid, node: nid });
            }
            match &node.kind {
                Node::Atom(a, point) => {
                    for v in atom_vars(a) {
                        if program.vars[v].method != mid {
                            out.push(Violation::ForeignVariable { method: mid, var: v });
                        }
                    }
                    if *point != SYNTHETIC_POINT {
                        let pi = &program.points[*point];
                        if pi.method != mid || pi.node != nid {
                            out.push(Violation::PointNodeMismatch { point: *point });
                        }
                    }
                }
                Node::Call(c) => {
                    let call = &program.calls[*c];
                    if call.caller != mid {
                        out.push(Violation::PointNodeMismatch { point: call.point });
                    }
                    if let CallKind::Static(target) = call.kind {
                        if program.methods[target].params.len() != call.args.len() {
                            out.push(Violation::CallArity { call: *c });
                        }
                    }
                }
                Node::Entry | Node::Exit => {}
            }
        }
    }
    for (qid, q) in program.queries.iter_enumerated() {
        let pm = program.points[q.point].method;
        let var = match q.kind {
            crate::ir::QueryKind::Local { var } => var,
            crate::ir::QueryKind::State { var, .. } => var,
        };
        if program.vars[var].method != pm {
            out.push(Violation::QueryScope { query: qid });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn resolver_output_is_well_formed() {
        let p = parse_program(
            r#"
            global g;
            class C { field f; fn m(a) { this.f = a; return a; } }
            fn helper(x) { var t; t = x; return t; }
            fn main() {
                var a, b, r;
                a = new C;
                b = helper(a);
                r = a.m(b);
                g = r;
                while (*) { if (*) { b = a; } else { b = null; } }
                query q: local b;
            }
            "#,
        )
        .unwrap();
        assert_eq!(check(&p), Vec::new());
    }

    #[test]
    fn detects_foreign_variable() {
        let mut p = parse_program("fn f() { var y; y = null; } fn main() { var x; x = null; f(); }").unwrap();
        // Corrupt: move a variable's ownership.
        let x = p.main_var("x").unwrap();
        p.vars[x].method = pda_util::Idx::from_usize(0);
        let violations = check(&p);
        assert!(
            violations.iter().any(|v| matches!(v, Violation::ForeignVariable { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_point_corruption() {
        let mut p = parse_program("fn main() { var x; x = null; }").unwrap();
        // Corrupt a point's node.
        let some_point = p
            .points
            .iter_enumerated()
            .map(|(id, _)| id)
            .next()
            .unwrap();
        p.points[some_point].node = crate::cfg::NodeId(1); // exit node
        assert!(check(&p)
            .iter()
            .any(|v| matches!(v, Violation::PointNodeMismatch { .. })));
    }

    #[test]
    fn violations_display() {
        let v = Violation::RetShape { method: MethodId(3) };
        assert!(v.to_string().contains("method 3"));
    }
}
