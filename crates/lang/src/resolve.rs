//! Name resolution and lowering from AST to IR.
//!
//! Besides resolving names, lowering normalizes the program so that *every*
//! effect is one of the paper's atomic commands:
//!
//! * Globals may appear anywhere in source (`g = h.f`, `x.m(g)`, ...);
//!   lowering inserts fresh temporaries and explicit `GGet`/`GSet` atoms so
//!   that all other atoms mention locals only.
//! * Every non-parameter local (including temporaries and the synthesized
//!   return variable) is initialized to `null` at method entry, which keeps
//!   the whole-program variable namespace sound across calls.
//! * `return` is restricted to tail position of a method body and lowers to
//!   a copy into the method's return variable.

use crate::ast::{self, Block, QueryAst, SourceProgram, Stmt, VarRef};
use crate::cfg::{Cfg, Node};
use crate::ir::*;
use std::collections::HashMap;
use std::fmt;

/// A name-resolution or well-formedness error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// Two declarations share a name that must be unique.
    Duplicate {
        /// The kind of entity involved.
        what: &'static str,
        /// The offending name.
        name: String,
        /// Source line (1-based).
        line: u32,
    },
    /// A name was used but never declared.
    Unknown {
        /// The kind of entity involved.
        what: &'static str,
        /// The offending name.
        name: String,
        /// Source line (1-based).
        line: u32,
    },
    /// `this` used outside a class method.
    ThisOutsideMethod {
        /// Source line (1-based).
        line: u32,
    },
    /// `return` somewhere other than the last statement of a method body.
    NonTailReturn {
        /// Source line (1-based).
        line: u32,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// The offending name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        got: usize,
        /// Source line (1-based).
        line: u32,
    },
    /// No `fn main()` was declared.
    NoMain,
    /// A query names a global; queries must be about locals.
    QueryOnGlobal {
        /// Query label.
        label: String,
        /// Source line (1-based).
        line: u32,
    },
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::Duplicate { what, name, line } => {
                write!(f, "duplicate {what} `{name}` on line {line}")
            }
            ResolveError::Unknown { what, name, line } => {
                write!(f, "unknown {what} `{name}` on line {line}")
            }
            ResolveError::ThisOutsideMethod { line } => {
                write!(f, "`this` outside a class method on line {line}")
            }
            ResolveError::NonTailReturn { line } => {
                write!(f, "`return` must be the last statement of a method body (line {line})")
            }
            ResolveError::ArityMismatch { name, expected, got, line } => {
                write!(f, "call to `{name}` on line {line} passes {got} arguments, expected {expected}")
            }
            ResolveError::NoMain => write!(f, "program has no `fn main()`"),
            ResolveError::QueryOnGlobal { label, line } => {
                write!(f, "query `{label}` on line {line} names a global; queries must be on locals")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

type RResult<T> = Result<T, ResolveError>;

struct Resolver {
    prog: Program,
    global_by_name: HashMap<NameId, GlobalId>,
    class_by_name: HashMap<NameId, ClassId>,
    field_by_name: HashMap<NameId, FieldId>,
    func_by_name: HashMap<NameId, MethodId>,
}

/// Per-method lowering state.
struct MethodCx {
    method: MethodId,
    scope: HashMap<NameId, VarId>,
    /// Locals needing `null` initialization at entry (non-parameters).
    inits: Vec<VarId>,
    n_temps: u32,
}

impl Resolver {
    fn intern(&mut self, s: &str) -> NameId {
        self.prog.names.intern(s)
    }

    fn new_point(&mut self, method: MethodId, line: u32) -> PointId {
        self.prog.points.push(PointInfo { method, node: crate::cfg::NodeId(0), line })
    }

    fn new_var(&mut self, name: NameId, method: MethodId) -> VarId {
        let v = self.prog.vars.push(VarInfo { name, method });
        self.prog.methods[method].vars.push(v);
        v
    }

    // ---- pass 1: declarations -------------------------------------------

    fn declare(&mut self, src: &SourceProgram) -> RResult<()> {
        for g in &src.globals {
            let n = self.intern(g);
            if self.global_by_name.contains_key(&n) {
                return Err(ResolveError::Duplicate { what: "global", name: g.clone(), line: 0 });
            }
            let id = self.prog.globals.push(n);
            self.global_by_name.insert(n, id);
        }
        for c in &src.classes {
            let n = self.intern(&c.name);
            if self.class_by_name.contains_key(&n) {
                return Err(ResolveError::Duplicate { what: "class", name: c.name.clone(), line: c.line });
            }
            let id = self.prog.classes.push(ClassInfo { name: n, fields: Vec::new(), methods: HashMap::new() });
            self.class_by_name.insert(n, id);
        }
        // Fields: a global, field-based namespace (paper's Figure 5).
        for c in &src.classes {
            let cid = self.class_by_name[&self.prog.names.get(&c.name).unwrap()];
            for fname in &c.fields {
                let n = self.intern(fname);
                let fid = *self.field_by_name.entry(n).or_insert_with(|| self.prog.fields.push(n));
                if self.prog.classes[cid].fields.contains(&fid) {
                    return Err(ResolveError::Duplicate { what: "field", name: fname.clone(), line: c.line });
                }
                self.prog.classes[cid].fields.push(fid);
            }
        }
        // Method and function signatures.
        for c in &src.classes {
            let cid = self.class_by_name[&self.prog.names.get(&c.name).unwrap()];
            for m in &c.methods {
                let n = self.intern(&m.name);
                if self.prog.classes[cid].methods.contains_key(&n) {
                    return Err(ResolveError::Duplicate { what: "method", name: m.name.clone(), line: m.line });
                }
                let mid = self.declare_func(m, Some(cid))?;
                self.prog.classes[cid].methods.insert(n, mid);
            }
        }
        for func in &src.funcs {
            let n = self.intern(&func.name);
            if self.func_by_name.contains_key(&n) {
                return Err(ResolveError::Duplicate { what: "function", name: func.name.clone(), line: func.line });
            }
            let mid = self.declare_func(func, None)?;
            self.func_by_name.insert(n, mid);
        }
        // Type-state automata.
        let error_name = self.intern("error");
        for ts in &src.typestates {
            let cn = self.intern(&ts.class);
            let class = *self.class_by_name.get(&cn).ok_or_else(|| ResolveError::Unknown {
                what: "class",
                name: ts.class.clone(),
                line: ts.line,
            })?;
            let init = self.intern(&ts.init);
            let transitions = ts
                .transitions
                .iter()
                .map(|(a, m, b)| {
                    (self.intern(a), self.intern(m), self.intern(b))
                })
                .collect();
            self.prog.typestates.push(TypestateDecl { class, init, transitions, error_name });
        }
        Ok(())
    }

    fn declare_func(&mut self, f: &ast::FuncDecl, class: Option<ClassId>) -> RResult<MethodId> {
        let name = self.intern(&f.name);
        let mid = self.prog.methods.push(MethodInfo {
            name,
            class,
            params: Vec::new(),
            ret: None,
            vars: Vec::new(),
            body: None,
            cfg: Cfg::default(),
        });
        let mut params = Vec::new();
        if class.is_some() {
            let this = self.intern("this");
            params.push(self.new_var(this, mid));
        }
        for p in &f.params {
            let pn = self.intern(p);
            let v = self.new_var(pn, mid);
            if params.iter().any(|&q| self.prog.vars[q].name == pn) {
                return Err(ResolveError::Duplicate { what: "parameter", name: p.clone(), line: f.line });
            }
            params.push(v);
        }
        if f.body.is_some() {
            let rn = self.intern(&format!("$ret_{}", f.name));
            let r = self.new_var(rn, mid);
            self.prog.methods[mid].ret = Some(r);
        }
        self.prog.methods[mid].params = params;
        Ok(mid)
    }

    // ---- pass 2: bodies --------------------------------------------------

    fn lower_bodies(&mut self, src: &SourceProgram) -> RResult<()> {
        let mut jobs: Vec<(MethodId, &ast::FuncDecl)> = Vec::new();
        for c in &src.classes {
            let cid = self.class_by_name[&self.prog.names.get(&c.name).unwrap()];
            for m in &c.methods {
                let n = self.prog.names.get(&m.name).unwrap();
                jobs.push((self.prog.classes[cid].methods[&n], m));
            }
        }
        for func in &src.funcs {
            let n = self.prog.names.get(&func.name).unwrap();
            jobs.push((self.func_by_name[&n], func));
        }
        for (mid, decl) in jobs {
            if let Some(body) = &decl.body {
                let lowered = self.lower_method(mid, body, decl.line)?;
                self.prog.methods[mid].cfg = Cfg::from_rstmt(&lowered);
                self.prog.methods[mid].body = Some(lowered);
                self.fill_points(mid);
            }
        }
        Ok(())
    }

    /// Records which CFG node realizes each program point.
    fn fill_points(&mut self, mid: MethodId) {
        let mut updates = Vec::new();
        for (nid, node) in self.prog.methods[mid].cfg.iter() {
            match node.kind {
                Node::Atom(_, p) if p != SYNTHETIC_POINT => updates.push((p, nid)),
                Node::Call(c) => updates.push((self.prog.calls[c].point, nid)),
                _ => {}
            }
        }
        for (p, nid) in updates {
            self.prog.points[p].node = nid;
        }
    }

    fn lower_method(&mut self, mid: MethodId, body: &Block, _line: u32) -> RResult<RStmt> {
        let mut cx = MethodCx {
            method: mid,
            scope: HashMap::new(),
            inits: Vec::new(),
            n_temps: 0,
        };
        for &p in &self.prog.methods[mid].params {
            cx.scope.insert(self.prog.vars[p].name, p);
        }
        if let Some(r) = self.prog.methods[mid].ret {
            cx.inits.push(r);
        }
        let mut stmts = Vec::new();
        let n = body.stmts.len();
        for (i, s) in body.stmts.iter().enumerate() {
            if let Stmt::Return { var, line } = s {
                if i + 1 != n {
                    return Err(ResolveError::NonTailReturn { line: *line });
                }
                let ret = self.prog.methods[mid].ret.expect("body implies ret var");
                match var {
                    Some(v) => {
                        let (mut pre, src) = self.read(&mut cx, v, *line)?;
                        stmts.append(&mut pre);
                        let p = self.new_point(mid, *line);
                        stmts.push(RStmt::Atom(Atom::Copy { dst: ret, src }, p));
                    }
                    None => {
                        let p = self.new_point(mid, *line);
                        stmts.push(RStmt::Atom(Atom::Null { dst: ret }, p));
                    }
                }
            } else {
                stmts.push(self.lower_stmt(&mut cx, s, false)?);
            }
        }
        // Initialize all non-parameter locals (incl. temporaries and the
        // return variable) to null at entry; temps were collected during
        // lowering, so this runs last and is prepended.
        let mut init_atoms = Vec::new();
        for v in std::mem::take(&mut cx.inits) {
            let p = self.new_point(mid, 0);
            init_atoms.push(RStmt::Atom(Atom::Null { dst: v }, p));
        }
        init_atoms.extend(stmts);
        Ok(RStmt::Seq(init_atoms))
    }

    fn lower_block(&mut self, cx: &mut MethodCx, block: &Block) -> RResult<RStmt> {
        let mut stmts = Vec::new();
        for s in &block.stmts {
            stmts.push(self.lower_stmt(cx, s, true)?);
        }
        Ok(RStmt::Seq(stmts))
    }

    fn fresh_temp(&mut self, cx: &mut MethodCx) -> VarId {
        let name = self.intern(&format!("$t{}", cx.n_temps));
        cx.n_temps += 1;
        let v = self.new_var(name, cx.method);
        cx.inits.push(v);
        v
    }

    /// Resolves a read occurrence to a local variable, emitting a `GGet`
    /// into a fresh temporary for globals.
    fn read(&mut self, cx: &mut MethodCx, r: &VarRef, line: u32) -> RResult<(Vec<RStmt>, VarId)> {
        match r {
            VarRef::This => {
                let has_class = self.prog.methods[cx.method].class.is_some();
                if !has_class {
                    return Err(ResolveError::ThisOutsideMethod { line });
                }
                Ok((Vec::new(), self.prog.methods[cx.method].params[0]))
            }
            VarRef::Named(name) => {
                let n = self.intern(name);
                if let Some(&v) = cx.scope.get(&n) {
                    return Ok((Vec::new(), v));
                }
                if let Some(&g) = self.global_by_name.get(&n) {
                    let t = self.fresh_temp(cx);
                    let p = self.new_point(cx.method, line);
                    return Ok((vec![RStmt::Atom(Atom::GGet { dst: t, global: g }, p)], t));
                }
                Err(ResolveError::Unknown { what: "variable", name: name.clone(), line })
            }
        }
    }

    /// Resolves a write destination: either a local, or (for globals) a
    /// fresh temporary plus a trailing `GSet`.
    fn write(
        &mut self,
        cx: &mut MethodCx,
        r: &VarRef,
        line: u32,
    ) -> RResult<(VarId, Vec<RStmt>)> {
        match r {
            VarRef::This => {
                let has_class = self.prog.methods[cx.method].class.is_some();
                if !has_class {
                    return Err(ResolveError::ThisOutsideMethod { line });
                }
                Ok((self.prog.methods[cx.method].params[0], Vec::new()))
            }
            VarRef::Named(name) => {
                let n = self.intern(name);
                if let Some(&v) = cx.scope.get(&n) {
                    return Ok((v, Vec::new()));
                }
                if let Some(&g) = self.global_by_name.get(&n) {
                    let t = self.fresh_temp(cx);
                    let p = self.new_point(cx.method, line);
                    return Ok((t, vec![RStmt::Atom(Atom::GSet { global: g, src: t }, p)]));
                }
                Err(ResolveError::Unknown { what: "variable", name: name.clone(), line })
            }
        }
    }

    fn field(&mut self, name: &str, line: u32) -> RResult<FieldId> {
        let n = self.intern(name);
        self.field_by_name
            .get(&n)
            .copied()
            .ok_or_else(|| ResolveError::Unknown { what: "field", name: name.to_string(), line })
    }

    fn lower_stmt(&mut self, cx: &mut MethodCx, s: &Stmt, _in_block: bool) -> RResult<RStmt> {
        let mid = cx.method;
        match s {
            Stmt::VarDecl { names, line } => {
                for name in names {
                    let n = self.intern(name);
                    if cx.scope.contains_key(&n) {
                        return Err(ResolveError::Duplicate { what: "variable", name: name.clone(), line: *line });
                    }
                    let v = self.new_var(n, mid);
                    cx.scope.insert(n, v);
                    cx.inits.push(v);
                }
                Ok(RStmt::skip())
            }
            Stmt::New { dst, class, line } => {
                let cn = self.intern(class);
                let cid = *self.class_by_name.get(&cn).ok_or_else(|| ResolveError::Unknown {
                    what: "class",
                    name: class.clone(),
                    line: *line,
                })?;
                let (d, post) = self.write(cx, dst, *line)?;
                let p = self.new_point(mid, *line);
                let site = self.prog.sites.push(SiteInfo { class: cid, point: p, method: mid });
                let mut out = vec![RStmt::Atom(Atom::New { dst: d, site }, p)];
                out.extend(post);
                Ok(RStmt::Seq(out))
            }
            Stmt::Copy { dst, src, line } => {
                let mut out = Vec::new();
                match src {
                    None => {
                        let (d, post) = self.write(cx, dst, *line)?;
                        let p = self.new_point(mid, *line);
                        out.push(RStmt::Atom(Atom::Null { dst: d }, p));
                        out.extend(post);
                    }
                    Some(srcref) => {
                        // Special-case `g = x` and `x = g` to avoid temps.
                        let (mut pre, sv) = self.read(cx, srcref, *line)?;
                        out.append(&mut pre);
                        match dst {
                            VarRef::Named(dname)
                                if !cx.scope.contains_key(&self.prog.names.intern(dname))
                                    && self.global_by_name.contains_key(&self.prog.names.intern(dname)) =>
                            {
                                let g = self.global_by_name[&self.prog.names.intern(dname)];
                                let p = self.new_point(mid, *line);
                                out.push(RStmt::Atom(Atom::GSet { global: g, src: sv }, p));
                            }
                            _ => {
                                let (d, post) = self.write(cx, dst, *line)?;
                                let p = self.new_point(mid, *line);
                                out.push(RStmt::Atom(Atom::Copy { dst: d, src: sv }, p));
                                out.extend(post);
                            }
                        }
                    }
                }
                Ok(RStmt::Seq(out))
            }
            Stmt::Load { dst, base, field, line } => {
                let f = self.field(field, *line)?;
                let (mut pre, b) = self.read(cx, base, *line)?;
                let (d, post) = self.write(cx, dst, *line)?;
                let p = self.new_point(mid, *line);
                pre.push(RStmt::Atom(Atom::Load { dst: d, base: b, field: f }, p));
                pre.extend(post);
                Ok(RStmt::Seq(pre))
            }
            Stmt::Store { base, field, src, line } => {
                let f = self.field(field, *line)?;
                let (mut pre, b) = self.read(cx, base, *line)?;
                let (mut pre2, sv) = self.read(cx, src, *line)?;
                pre.append(&mut pre2);
                let p = self.new_point(mid, *line);
                pre.push(RStmt::Atom(Atom::Store { base: b, field: f, src: sv }, p));
                Ok(RStmt::Seq(pre))
            }
            Stmt::Spawn { var, line } => {
                let (mut pre, v) = self.read(cx, var, *line)?;
                let p = self.new_point(mid, *line);
                pre.push(RStmt::Atom(Atom::Spawn { src: v }, p));
                Ok(RStmt::Seq(pre))
            }
            Stmt::VCall { dst, recv, method, args, line } => {
                let (mut pre, rv) = self.read(cx, recv, *line)?;
                let mut avs = Vec::new();
                for a in args {
                    let (mut apre, av) = self.read(cx, a, *line)?;
                    pre.append(&mut apre);
                    avs.push(av);
                }
                let (dv, post) = match dst {
                    Some(d) => {
                        let (dv, post) = self.write(cx, d, *line)?;
                        (Some(dv), post)
                    }
                    None => (None, Vec::new()),
                };
                let mname = self.intern(method);
                let p = self.new_point(mid, *line);
                let call = self.prog.calls.push(CallInfo {
                    kind: CallKind::Virtual { recv: rv, method: mname },
                    args: avs,
                    dst: dv,
                    point: p,
                    caller: mid,
                });
                pre.push(RStmt::Call(call));
                pre.extend(post);
                Ok(RStmt::Seq(pre))
            }
            Stmt::SCall { dst, func, args, line } => {
                let fname = self.intern(func);
                let target = *self.func_by_name.get(&fname).ok_or_else(|| ResolveError::Unknown {
                    what: "function",
                    name: func.clone(),
                    line: *line,
                })?;
                let expected = self.prog.methods[target].params.len();
                if expected != args.len() {
                    return Err(ResolveError::ArityMismatch {
                        name: func.clone(),
                        expected,
                        got: args.len(),
                        line: *line,
                    });
                }
                let mut pre = Vec::new();
                let mut avs = Vec::new();
                for a in args {
                    let (mut apre, av) = self.read(cx, a, *line)?;
                    pre.append(&mut apre);
                    avs.push(av);
                }
                let (dv, post) = match dst {
                    Some(d) => {
                        let (dv, post) = self.write(cx, d, *line)?;
                        (Some(dv), post)
                    }
                    None => (None, Vec::new()),
                };
                let p = self.new_point(mid, *line);
                let call = self.prog.calls.push(CallInfo {
                    kind: CallKind::Static(target),
                    args: avs,
                    dst: dv,
                    point: p,
                    caller: mid,
                });
                pre.push(RStmt::Call(call));
                pre.extend(post);
                Ok(RStmt::Seq(pre))
            }
            Stmt::If { then_blk, else_blk, .. } => {
                let t = self.lower_block(cx, then_blk)?;
                let e = self.lower_block(cx, else_blk)?;
                Ok(RStmt::Choice(Box::new(t), Box::new(e)))
            }
            Stmt::While { body, .. } => {
                let b = self.lower_block(cx, body)?;
                Ok(RStmt::Star(Box::new(b)))
            }
            Stmt::Query { label, kind, line } => {
                if self.prog.queries.iter().any(|q| q.label == *label) {
                    return Err(ResolveError::Duplicate { what: "query label", name: label.clone(), line: *line });
                }
                let var_of = |this: &mut Self, cx: &mut MethodCx, r: &VarRef| -> RResult<VarId> {
                    match r {
                        VarRef::This => {
                            if this.prog.methods[cx.method].class.is_none() {
                                return Err(ResolveError::ThisOutsideMethod { line: *line });
                            }
                            Ok(this.prog.methods[cx.method].params[0])
                        }
                        VarRef::Named(name) => {
                            let n = this.intern(name);
                            if let Some(&v) = cx.scope.get(&n) {
                                Ok(v)
                            } else if this.global_by_name.contains_key(&n) {
                                Err(ResolveError::QueryOnGlobal { label: label.clone(), line: *line })
                            } else {
                                Err(ResolveError::Unknown { what: "variable", name: name.clone(), line: *line })
                            }
                        }
                    }
                };
                let p = self.new_point(mid, *line);
                let qkind = match kind {
                    QueryAst::Local { var } => QueryKind::Local { var: var_of(self, cx, var)? },
                    QueryAst::State { var, allowed } => QueryKind::State {
                        var: var_of(self, cx, var)?,
                        allowed: allowed.iter().map(|s| self.prog.names.intern(s)).collect(),
                    },
                };
                self.prog.queries.push(QueryDecl { label: label.clone(), point: p, kind: qkind });
                Ok(RStmt::Atom(Atom::Nop, p))
            }
            Stmt::Return { line, .. } => Err(ResolveError::NonTailReturn { line: *line }),
        }
    }
}

/// Resolves a parsed [`SourceProgram`] into IR.
///
/// # Errors
///
/// Returns a [`ResolveError`] on duplicate or unknown names, `this` outside
/// a method, non-tail `return`, call arity mismatches, a missing `main`, or
/// a query naming a global.
pub fn resolve(src: &SourceProgram) -> Result<Program, ResolveError> {
    let mut r = Resolver {
        prog: Program::default(),
        global_by_name: HashMap::new(),
        class_by_name: HashMap::new(),
        field_by_name: HashMap::new(),
        func_by_name: HashMap::new(),
    };
    r.declare(src)?;
    r.lower_bodies(src)?;
    let main_name = r.prog.names.get("main").ok_or(ResolveError::NoMain)?;
    let main = *r.func_by_name.get(&main_name).ok_or(ResolveError::NoMain)?;
    if r.prog.methods[main].body.is_none() {
        return Err(ResolveError::NoMain);
    }
    r.prog.main = main;
    Ok(r.prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn resolves_figure1() {
        let p = parse_program(
            r#"
            class File { fn open(); fn close(); }
            typestate File {
                init closed;
                closed -> open -> opened;
                opened -> close -> closed;
                opened -> open -> error;
                closed -> close -> error;
            }
            fn main() {
                var x, y, z;
                x = new File;
                y = x;
                if (*) { z = x; }
                x.open();
                y.close();
                query check1: state x in { closed };
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.sites.len(), 1);
        assert_eq!(p.calls.len(), 2);
        assert_eq!(p.queries.len(), 1);
        assert_eq!(p.typestates.len(), 1);
        // main has x, y, z plus $ret.
        assert_eq!(p.methods[p.main].vars.len(), 4);
        assert!(p.main_var("x").is_some());
    }

    #[test]
    fn globals_lower_through_temps() {
        let p = parse_program(
            r#"
            global g;
            class C { field f; }
            fn main() {
                var x, y;
                x = new C;
                g = x;      // direct GSet, no temp
                y = g;      // direct... GGet into temp, then copy? no: read(g) makes temp
                g.f = x;    // temp = g; temp.f = x
            }
            "#,
        )
        .unwrap();
        // Count atoms in main's CFG.
        let cfg = &p.methods[p.main].cfg;
        let mut gsets = 0;
        let mut ggets = 0;
        let mut stores = 0;
        for (_, n) in cfg.iter() {
            match n.kind {
                Node::Atom(Atom::GSet { .. }, _) => gsets += 1,
                Node::Atom(Atom::GGet { .. }, _) => ggets += 1,
                Node::Atom(Atom::Store { .. }, _) => stores += 1,
                _ => {}
            }
        }
        assert_eq!(gsets, 1);
        assert_eq!(ggets, 2); // `y = g` and the base of `g.f = x`
        assert_eq!(stores, 1);
    }

    #[test]
    fn non_tail_return_rejected() {
        let err = parse_program("fn main() { var x; return; x = null; }").unwrap_err();
        assert!(err.to_string().contains("last statement"));
    }

    #[test]
    fn tail_return_in_function_ok() {
        let p = parse_program(
            "fn id(a) { return a; } fn main() { var x, y; x = null; y = id(x); }",
        )
        .unwrap();
        let id = p
            .methods
            .iter_enumerated()
            .find(|(_, m)| p.names.resolve(m.name) == "id")
            .unwrap()
            .0;
        assert!(p.methods[id].ret.is_some());
        assert_eq!(p.calls.len(), 1);
        assert_eq!(p.calls[crate::ir::CallId(0)].dst, Some(p.main_var("y").unwrap()));
    }

    #[test]
    fn arity_mismatch_detected() {
        let err =
            parse_program("fn f(a, b) { return a; } fn main() { var x; x = f(x); }").unwrap_err();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn unknown_names_detected() {
        assert!(parse_program("fn main() { var x; x = nope; }").is_err());
        assert!(parse_program("fn main() { var x; x = new Nope; }").is_err());
        assert!(parse_program("fn main() { var x; x = x.nofield; }").is_err());
        assert!(parse_program("fn main() { nofunc(); }").is_err());
    }

    #[test]
    fn this_outside_method_rejected() {
        let err = parse_program("fn main() { var x; x = this; }").unwrap_err();
        assert!(err.to_string().contains("this"));
    }

    #[test]
    fn query_labels_unique_and_local() {
        assert!(parse_program(
            "fn main() { var x; x = null; query q: local x; query q: local x; }"
        )
        .is_err());
        assert!(parse_program("global g; fn main() { query q: local g; }").is_err());
    }

    #[test]
    fn missing_main_rejected() {
        assert_eq!(parse_program("fn helper() {}").unwrap_err().to_string(), "resolve error: program has no `fn main()`");
    }

    #[test]
    fn points_map_to_cfg_nodes() {
        let p = parse_program("class C {} fn main() { var x; x = new C; query q: local x; }").unwrap();
        let q = &p.queries[QueryId(0)];
        let pi = &p.points[q.point];
        assert_eq!(pi.method, p.main);
        // The node recorded for the query point is a Nop atom at that point.
        let node = &p.methods[p.main].cfg.nodes[pi.node];
        assert_eq!(node.kind, Node::Atom(Atom::Nop, q.point));
    }
}
