//! Abstract syntax tree produced by the parser, before name resolution.
//!
//! All names are plain strings at this level; the resolver turns them into
//! typed IR indices.

/// A parsed, unresolved program: the top-level items in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceProgram {
    /// Global (static) variable declarations.
    pub globals: Vec<String>,
    /// Class declarations.
    pub classes: Vec<ClassDecl>,
    /// Free functions (static methods); must include `main`.
    pub funcs: Vec<FuncDecl>,
    /// Type-state automata declarations.
    pub typestates: Vec<TypestateAst>,
}

/// A `class C { field f; fn m(...) {...} }` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Declared instance fields.
    pub fields: Vec<String>,
    /// Declared methods (receive an implicit `this`).
    pub methods: Vec<FuncDecl>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A function or method declaration.
///
/// A `None` body declares an *atomic* method: calls to it only drive the
/// type-state automaton and havoc their result, with no interprocedural
/// flow (the shape used by the paper's Figure 1 `File` example).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Function or method name.
    pub name: String,
    /// Parameter names (excluding the implicit `this`).
    pub params: Vec<String>,
    /// `None` for bodyless (atomic) method declarations.
    pub body: Option<Block>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A variable reference: a named local/global or the `this` keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarRef {
    /// A named variable; the resolver decides local vs. global.
    Named(String),
    /// The receiver of the enclosing method.
    This,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var x, y;` — local declarations (initialized to `null`).
    VarDecl {
        /// Declared names.
        names: Vec<String>,
        /// Source line (1-based).
        line: u32,
    },
    /// `x = new C;`
    New {
        /// Destination variable.
        dst: VarRef,
        /// Class name.
        class: String,
        /// Source line (1-based).
        line: u32,
    },
    /// `x = y;` (copy, global read, or global write — resolved later),
    /// `x = null;`
    Copy {
        /// Destination variable.
        dst: VarRef,
        /// Source variable.
        src: Option<VarRef>,
        /// Source line (1-based).
        line: u32,
    },
    /// `x = y.f;`
    Load {
        /// Destination variable.
        dst: VarRef,
        /// Base object variable.
        base: VarRef,
        /// Field name.
        field: String,
        /// Source line (1-based).
        line: u32,
    },
    /// `x.f = y;`
    Store {
        /// Base object variable.
        base: VarRef,
        /// Field name.
        field: String,
        /// Source variable.
        src: VarRef,
        /// Source line (1-based).
        line: u32,
    },
    /// `x = y.m(a, b);` or `y.m(a, b);`
    VCall {
        /// Destination variable.
        dst: Option<VarRef>,
        /// Receiver variable.
        recv: VarRef,
        /// Method name.
        method: String,
        /// Argument variables.
        args: Vec<VarRef>,
        /// Source line (1-based).
        line: u32,
    },
    /// `x = f(a, b);` or `f(a, b);`
    SCall {
        /// Destination variable.
        dst: Option<VarRef>,
        /// Callee function name.
        func: String,
        /// Argument variables.
        args: Vec<VarRef>,
        /// Source line (1-based).
        line: u32,
    },
    /// `spawn x;` — start a thread with receiver `x` (makes it escape).
    Spawn {
        /// The variable.
        var: VarRef,
        /// Source line (1-based).
        line: u32,
    },
    /// `return x;` or `return;`
    Return {
        /// The variable.
        var: Option<VarRef>,
        /// Source line (1-based).
        line: u32,
    },
    /// `if (*) { ... } else { ... }` — nondeterministic branch.
    If {
        /// The `then` branch.
        then_blk: Block,
        /// The `else` branch.
        else_blk: Block,
        /// Source line (1-based).
        line: u32,
    },
    /// `while (*) { ... }` — nondeterministic loop.
    While {
        /// The loop body.
        body: Block,
        /// Source line (1-based).
        line: u32,
    },
    /// `query L: local x;` or `query L: state x in { s1 s2 };`
    Query {
        /// Query label.
        label: String,
        /// What the query asks.
        kind: QueryAst,
        /// Source line (1-based).
        line: u32,
    },
}

/// The two query flavors of the paper's two client analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryAst {
    /// Thread-escape query: is the object `x` points to thread-local here?
    Local {
        /// The variable.
        var: VarRef,
    },
    /// Type-state query: is the object `x` points to in one of the allowed
    /// states here (and not in the error state)?
    State {
        /// The variable.
        var: VarRef,
        /// Allowed state names.
        allowed: Vec<String>,
    },
}

/// A `typestate C { init s0; s -> m -> s'; ... }` automaton declaration.
///
/// Transition targets may use the reserved state name `error` for the
/// paper's ⊤ outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypestateAst {
    /// The class whose objects this automaton tracks.
    pub class: String,
    /// Initial state name.
    pub init: String,
    /// Transitions `(from, method, to)`; `to == "error"` means ⊤.
    pub transitions: Vec<(String, String, String)>,
    /// Source line of the declaration.
    pub line: u32,
}
