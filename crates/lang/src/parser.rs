//! Recursive-descent parser for Jaylite.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use std::fmt;

/// A syntax error: what was found, what was expected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what was expected.
    pub expected: String,
    /// The token actually found.
    pub found: Tok,
    /// 1-based source line of the offending token.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expected {} but found {} on line {}",
            self.expected, self.found, self.line
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn peek3(&self) -> &Tok {
        &self.tokens[(self.pos + 2).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> PResult<T> {
        Err(ParseError {
            expected: expected.to_string(),
            found: self.peek().clone(),
            line: self.line(),
        })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> PResult<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            self.err(what)
        }
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.err(what),
        }
    }

    fn var_ref(&mut self) -> PResult<VarRef> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(VarRef::Named(s))
            }
            Tok::KwThis => {
                self.bump();
                Ok(VarRef::This)
            }
            _ => self.err("a variable name or `this`"),
        }
    }

    fn program(&mut self) -> PResult<SourceProgram> {
        let mut prog = SourceProgram::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::KwGlobal => {
                    self.bump();
                    loop {
                        prog.globals.push(self.ident("a global name")?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::Semi, "`;`")?;
                }
                Tok::KwClass => prog.classes.push(self.class_decl()?),
                Tok::KwFn => prog.funcs.push(self.func_decl()?),
                Tok::KwTypestate => prog.typestates.push(self.typestate_decl()?),
                _ => return self.err("`global`, `class`, `fn`, or `typestate`"),
            }
        }
        Ok(prog)
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let line = self.line();
        self.expect(Tok::KwClass, "`class`")?;
        let name = self.ident("a class name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::KwField => {
                    self.bump();
                    loop {
                        fields.push(self.ident("a field name")?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::Semi, "`;`")?;
                }
                Tok::KwFn => methods.push(self.func_decl()?),
                _ => return self.err("`field`, `fn`, or `}`"),
            }
        }
        Ok(ClassDecl { name, fields, methods, line })
    }

    fn func_decl(&mut self) -> PResult<FuncDecl> {
        let line = self.line();
        self.expect(Tok::KwFn, "`fn`")?;
        let name = self.ident("a function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident("a parameter name")?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let body = match self.peek() {
            Tok::Semi => {
                self.bump();
                None
            }
            Tok::LBrace => Some(self.block()?),
            _ => return self.err("`{` or `;`"),
        };
        Ok(FuncDecl { name, params, body, line })
    }

    fn typestate_decl(&mut self) -> PResult<TypestateAst> {
        let line = self.line();
        self.expect(Tok::KwTypestate, "`typestate`")?;
        let class = self.ident("a class name")?;
        self.expect(Tok::LBrace, "`{`")?;
        self.expect(Tok::KwInit, "`init`")?;
        let init = self.ident("an initial state name")?;
        self.expect(Tok::Semi, "`;`")?;
        let mut transitions = Vec::new();
        while *self.peek() != Tok::RBrace {
            let from = self.ident("a state name")?;
            self.expect(Tok::Arrow, "`->`")?;
            let method = self.ident("a method name")?;
            self.expect(Tok::Arrow, "`->`")?;
            let to = self.ident("a state name")?;
            self.expect(Tok::Semi, "`;`")?;
            transitions.push((from, method, to));
        }
        self.bump(); // RBrace
        Ok(TypestateAst { class, init, transitions, line })
    }

    fn block(&mut self) -> PResult<Block> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.bump(); // RBrace
        Ok(Block { stmts })
    }

    fn args(&mut self) -> PResult<Vec<VarRef>> {
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.var_ref()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(args)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek().clone() {
            Tok::KwVar => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    names.push(self.ident("a variable name")?);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::VarDecl { names, line })
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                self.expect(Tok::Star, "`*`")?;
                self.expect(Tok::RParen, "`)`")?;
                let then_blk = self.block()?;
                let else_blk = if *self.peek() == Tok::KwElse {
                    self.bump();
                    self.block()?
                } else {
                    Block::default()
                };
                Ok(Stmt::If { then_blk, else_blk, line })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen, "`(`")?;
                self.expect(Tok::Star, "`*`")?;
                self.expect(Tok::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While { body, line })
            }
            Tok::KwReturn => {
                self.bump();
                let var = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.var_ref()?)
                };
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Return { var, line })
            }
            Tok::KwSpawn => {
                self.bump();
                let var = self.var_ref()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Spawn { var, line })
            }
            Tok::KwQuery => {
                self.bump();
                let label = self.ident("a query label")?;
                self.expect(Tok::Colon, "`:`")?;
                let kind = match self.peek() {
                    Tok::KwLocal => {
                        self.bump();
                        QueryAst::Local { var: self.var_ref()? }
                    }
                    Tok::KwState => {
                        self.bump();
                        let var = self.var_ref()?;
                        self.expect(Tok::KwIn, "`in`")?;
                        self.expect(Tok::LBrace, "`{`")?;
                        let mut allowed = Vec::new();
                        while *self.peek() != Tok::RBrace {
                            allowed.push(self.ident("a state name")?);
                        }
                        self.bump();
                        QueryAst::State { var, allowed }
                    }
                    _ => return self.err("`local` or `state`"),
                };
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Query { label, kind, line })
            }
            Tok::Ident(_) | Tok::KwThis => self.assign_or_call(line),
            _ => self.err("a statement"),
        }
    }

    /// Parses statements that begin with a variable reference:
    /// assignments, stores, and call statements.
    fn assign_or_call(&mut self, line: u32) -> PResult<Stmt> {
        // Lookahead decides the statement shape without consuming.
        match (self.peek(), self.peek2(), self.peek3()) {
            // f(...)  — static call statement
            (Tok::Ident(_), Tok::LParen, _) => {
                let func = self.ident("a function name")?;
                let args = self.args()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::SCall { dst: None, func, args, line })
            }
            // x.f = y;  or  x.m(...);
            (Tok::Ident(_) | Tok::KwThis, Tok::Dot, _) => {
                let base = self.var_ref()?;
                self.expect(Tok::Dot, "`.`")?;
                let member = self.ident("a field or method name")?;
                match self.peek() {
                    Tok::Eq => {
                        self.bump();
                        let src = self.var_ref()?;
                        self.expect(Tok::Semi, "`;`")?;
                        Ok(Stmt::Store { base, field: member, src, line })
                    }
                    Tok::LParen => {
                        let args = self.args()?;
                        self.expect(Tok::Semi, "`;`")?;
                        Ok(Stmt::VCall { dst: None, recv: base, method: member, args, line })
                    }
                    _ => self.err("`=` or `(`"),
                }
            }
            // x = <rhs>;
            (Tok::Ident(_) | Tok::KwThis, Tok::Eq, _) => {
                let dst = self.var_ref()?;
                self.bump(); // Eq
                self.rhs(dst, line)
            }
            _ => self.err("`=`, `.`, or `(` after a variable"),
        }
    }

    fn rhs(&mut self, dst: VarRef, line: u32) -> PResult<Stmt> {
        match (self.peek().clone(), self.peek2().clone()) {
            (Tok::KwNew, _) => {
                self.bump();
                let class = self.ident("a class name")?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::New { dst, class, line })
            }
            (Tok::KwNull, _) => {
                self.bump();
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Copy { dst, src: None, line })
            }
            (Tok::Ident(_), Tok::LParen) => {
                let func = self.ident("a function name")?;
                let args = self.args()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::SCall { dst: Some(dst), func, args, line })
            }
            (Tok::Ident(_) | Tok::KwThis, Tok::Dot) => {
                let base = self.var_ref()?;
                self.bump(); // Dot
                let member = self.ident("a field or method name")?;
                if *self.peek() == Tok::LParen {
                    let args = self.args()?;
                    self.expect(Tok::Semi, "`;`")?;
                    Ok(Stmt::VCall { dst: Some(dst), recv: base, method: member, args, line })
                } else {
                    self.expect(Tok::Semi, "`;`")?;
                    Ok(Stmt::Load { dst, base, field: member, line })
                }
            }
            (Tok::Ident(_) | Tok::KwThis, _) => {
                let src = self.var_ref()?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Copy { dst, src: Some(src), line })
            }
            _ => self.err("a right-hand side"),
        }
    }
}

/// Parses a token stream (from [`crate::lexer::lex`]) into an AST.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; there is no recovery.
///
/// # Examples
///
/// ```
/// let toks = pda_lang::lexer::lex("fn main() { var x; x = new C; }").unwrap();
/// let ast = pda_lang::parser::parse(&toks).unwrap();
/// assert_eq!(ast.funcs.len(), 1);
/// ```
pub fn parse(tokens: &[Token]) -> Result<SourceProgram, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> SourceProgram {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_figure1_program() {
        let prog = parse_src(
            r#"
            class File {
                fn open();
                fn close();
            }
            typestate File {
                init closed;
                closed -> open -> opened;
                opened -> close -> closed;
                opened -> open -> error;
                closed -> close -> error;
            }
            fn main() {
                var x, y, z;
                x = new File;
                y = x;
                if (*) { z = x; }
                x.open();
                y.close();
                if (*) { query check1: state x in { closed }; }
                else { query check2: state x in { opened }; }
            }
            "#,
        );
        assert_eq!(prog.classes.len(), 1);
        assert_eq!(prog.classes[0].methods.len(), 2);
        assert!(prog.classes[0].methods.iter().all(|m| m.body.is_none()));
        assert_eq!(prog.typestates.len(), 1);
        assert_eq!(prog.typestates[0].transitions.len(), 4);
        assert_eq!(prog.funcs.len(), 1);
    }

    #[test]
    fn parses_all_statement_forms() {
        let prog = parse_src(
            r#"
            global g;
            class C { field f; fn m(a) { this.f = a; return a; } }
            fn helper(p) { return p; }
            fn main() {
                var x, y, r;
                x = new C;
                y = x;
                y = null;
                g = x;
                y = g;
                x.f = y;
                y = x.f;
                r = x.m(y);
                x.m(y);
                r = helper(x);
                helper(x);
                spawn x;
                while (*) { if (*) { y = x; } else { y = null; } }
                query q: local x;
            }
            "#,
        );
        let main = &prog.funcs.iter().find(|f| f.name == "main").unwrap();
        assert_eq!(main.body.as_ref().unwrap().stmts.len(), 15);
    }

    #[test]
    fn error_mentions_expectation_and_line() {
        let toks = lex("fn main() {\n x = ;\n}").unwrap();
        let err = parse(&toks).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("right-hand side"));
    }

    #[test]
    fn rejects_top_level_garbage() {
        let toks = lex("return;").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn this_usable_as_receiver_and_source() {
        let prog = parse_src("class C { fn m(a) { a = this; this.m(a); } } fn main() {}");
        let m = &prog.classes[0].methods[0];
        assert_eq!(m.body.as_ref().unwrap().stmts.len(), 2);
    }
}
