//! Regular program terms (the paper's Section 3.1 command language) and a
//! whole-program inliner.
//!
//! The exact reference engine in `pda-dataflow` interprets these terms with
//! the semantics of the paper's Figure 3. Interprocedural programs are
//! turned into one closed term by [`inline`], which clones callee bodies
//! per call site (full context sensitivity) and therefore rejects
//! recursion — the RHS tabulation engine handles recursive programs.

use crate::ir::{
    Atom, CallId, CallKind, MethodId, PointId, Program, RStmt, VarId, VarInfo,
};
use pda_util::{define_idx, Idx, IdxVec};
use std::collections::HashMap;
use std::fmt;

define_idx!(
    /// Index of a node in a [`TermArena`].
    TermId
);

/// One constructor of the regular command language
/// `s ::= ε | a | s;s' | s+s' | s*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermNode {
    /// The empty command.
    Eps,
    /// An atomic command at a program point.
    Atom(Atom, PointId),
    /// `s ; s'`.
    Seq(TermId, TermId),
    /// `s + s'` (nondeterministic choice).
    Choice(TermId, TermId),
    /// `s*` (iteration).
    Star(TermId),
}

/// An arena of term nodes. Sharing is allowed and exploited by the
/// reference engine's memoization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermArena {
    nodes: IdxVec<TermId, TermNode>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TermArena::default()
    }

    /// The node behind `id`.
    pub fn node(&self, id: TermId) -> TermNode {
        self.nodes[id]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an `ε` node.
    pub fn eps(&mut self) -> TermId {
        self.nodes.push(TermNode::Eps)
    }

    /// Adds an atom node.
    pub fn atom(&mut self, a: Atom, p: PointId) -> TermId {
        self.nodes.push(TermNode::Atom(a, p))
    }

    /// Adds `a ; b`.
    pub fn seq(&mut self, a: TermId, b: TermId) -> TermId {
        self.nodes.push(TermNode::Seq(a, b))
    }

    /// Adds `a + b`.
    pub fn choice(&mut self, a: TermId, b: TermId) -> TermId {
        self.nodes.push(TermNode::Choice(a, b))
    }

    /// Adds `a*`.
    pub fn star(&mut self, a: TermId) -> TermId {
        self.nodes.push(TermNode::Star(a))
    }

    /// Sequences a list of terms left to right (`ε` if empty).
    pub fn seq_all(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut iter = ts.into_iter();
        let Some(first) = iter.next() else {
            return self.eps();
        };
        iter.fold(first, |acc, t| self.seq(acc, t))
    }

    /// Folds a list of alternatives into nested `Choice` (`ε` if empty).
    pub fn choice_all(&mut self, ts: impl IntoIterator<Item = TermId>) -> TermId {
        let mut iter = ts.into_iter();
        let Some(first) = iter.next() else {
            return self.eps();
        };
        iter.fold(first, |acc, t| self.choice(acc, t))
    }

    /// Counts atom occurrences reachable from `root` (diagnostics).
    pub fn count_atoms(&self, root: TermId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(t) = stack.pop() {
            if seen[t.index()] {
                continue;
            }
            seen[t.index()] = true;
            match self.nodes[t] {
                TermNode::Eps => {}
                TermNode::Atom(..) => count += 1,
                TermNode::Seq(a, b) | TermNode::Choice(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                TermNode::Star(a) => stack.push(a),
            }
        }
        count
    }
}

/// A closed whole-program term produced by [`inline`].
///
/// Inlining clones callee locals per call site, so the variable universe
/// grows beyond [`Program::vars`]; `var_origin` maps every variable
/// (original or clone) back to the original it instantiates. Analyses use
/// `n_vars` to size their environments and `var_origin` to phrase
/// abstraction parameters in terms of original variables.
#[derive(Debug, Clone)]
pub struct InlinedProgram {
    /// The term arena.
    pub arena: TermArena,
    /// The whole-program term (body of `main` with calls expanded).
    pub root: TermId,
    /// Size of the extended variable universe.
    pub n_vars: usize,
    /// Maps each variable (index < `n_vars`) to the original it clones;
    /// identity on original variables.
    pub var_origin: Vec<VarId>,
}

impl InlinedProgram {
    /// All extended variables whose origin is `orig`.
    pub fn clones_of(&self, orig: VarId) -> impl Iterator<Item = VarId> + '_ {
        self.var_origin
            .iter()
            .enumerate()
            .filter(move |&(_, &o)| o == orig)
            .map(|(i, _)| VarId::from_usize(i))
    }
}

/// Why inlining failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineError {
    /// The call graph (restricted to methods with bodies) is recursive.
    Recursive(MethodId),
    /// `main` has no body.
    NoBody(MethodId),
}

impl fmt::Display for InlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlineError::Recursive(m) => write!(f, "method {m} is recursive; use the RHS engine"),
            InlineError::NoBody(m) => write!(f, "method {m} has no body"),
        }
    }
}

impl std::error::Error for InlineError {}

/// Resolves the possible targets of a call.
///
/// Supplied by the caller so that `pda-analysis` can plug in the 0-CFA call
/// graph without this crate depending on it. [`resolve_by_name`] is a
/// conservative fallback (class-hierarchy-style: every same-named method).
pub type CallResolver<'a> = dyn Fn(CallId) -> Vec<MethodId> + 'a;

/// Name-based conservative call resolution: a virtual call `recv.m(...)`
/// may target any class method named `m` (with or without a body); a
/// static call targets its function.
pub fn resolve_by_name(program: &Program) -> impl Fn(CallId) -> Vec<MethodId> + '_ {
    move |c: CallId| match &program.calls[c].kind {
        CallKind::Static(m) => vec![*m],
        CallKind::Virtual { method, .. } => {
            let mut out: Vec<MethodId> = program
                .classes
                .iter()
                .filter_map(|cl| cl.methods.get(method).copied())
                .collect();
            out.sort();
            out.dedup();
            out
        }
    }
}

struct Inliner<'a> {
    program: &'a Program,
    resolver: &'a CallResolver<'a>,
    arena: TermArena,
    var_origin: Vec<VarId>,
    stack: Vec<MethodId>,
}

impl<'a> Inliner<'a> {
    fn fresh_clone(&mut self, orig: VarId) -> VarId {
        let id = VarId::from_usize(self.var_origin.len());
        self.var_origin.push(orig);
        id
    }

    fn subst(sub: &HashMap<VarId, VarId>, v: VarId) -> VarId {
        sub.get(&v).copied().unwrap_or(v)
    }

    fn subst_atom(sub: &HashMap<VarId, VarId>, a: Atom) -> Atom {
        let s = |v| Self::subst(sub, v);
        match a {
            Atom::New { dst, site } => Atom::New { dst: s(dst), site },
            Atom::Copy { dst, src } => Atom::Copy { dst: s(dst), src: s(src) },
            Atom::Null { dst } => Atom::Null { dst: s(dst) },
            Atom::Load { dst, base, field } => Atom::Load { dst: s(dst), base: s(base), field },
            Atom::Store { base, field, src } => Atom::Store { base: s(base), field, src: s(src) },
            Atom::GSet { global, src } => Atom::GSet { global, src: s(src) },
            Atom::GGet { dst, global } => Atom::GGet { dst: s(dst), global },
            Atom::Invoke { recv, method } => Atom::Invoke { recv: s(recv), method },
            Atom::Spawn { src } => Atom::Spawn { src: s(src) },
            Atom::Havoc { dst } => Atom::Havoc { dst: s(dst) },
            Atom::Nop => Atom::Nop,
        }
    }

    fn stmt(&mut self, s: &RStmt, sub: &HashMap<VarId, VarId>) -> Result<TermId, InlineError> {
        Ok(match s {
            RStmt::Atom(a, p) => {
                let a = Self::subst_atom(sub, *a);
                self.arena.atom(a, *p)
            }
            RStmt::Seq(ss) => {
                let parts = ss
                    .iter()
                    .map(|s| self.stmt(s, sub))
                    .collect::<Result<Vec<_>, _>>()?;
                self.arena.seq_all(parts)
            }
            RStmt::Choice(a, b) => {
                let ta = self.stmt(a, sub)?;
                let tb = self.stmt(b, sub)?;
                self.arena.choice(ta, tb)
            }
            RStmt::Star(a) => {
                let ta = self.stmt(a, sub)?;
                self.arena.star(ta)
            }
            RStmt::Call(c) => self.call(*c, sub)?,
        })
    }

    fn call(&mut self, c: CallId, sub: &HashMap<VarId, VarId>) -> Result<TermId, InlineError> {
        let info = self.program.calls[c].clone();
        let point = info.point;
        let args: Vec<VarId> = info.args.iter().map(|&a| Self::subst(sub, a)).collect();
        let dst = info.dst.map(|d| Self::subst(sub, d));
        let mut pre = Vec::new();
        let mut recv = None;
        if let CallKind::Virtual { recv: r, method } = info.kind {
            let r = Self::subst(sub, r);
            recv = Some(r);
            pre.push(self.arena.atom(Atom::Invoke { recv: r, method }, point));
        }
        let callees = (self.resolver)(c);
        let mut branches = Vec::new();
        for callee in callees {
            branches.push(self.expand_callee(callee, recv, &args, dst, point)?);
        }
        let body = if branches.is_empty() {
            // No target at all: havoc the destination.
            match dst {
                Some(d) => self.arena.atom(Atom::Havoc { dst: d }, point),
                None => self.arena.eps(),
            }
        } else {
            self.arena.choice_all(branches)
        };
        pre.push(body);
        Ok(self.arena.seq_all(pre))
    }

    fn expand_callee(
        &mut self,
        callee: MethodId,
        recv: Option<VarId>,
        args: &[VarId],
        dst: Option<VarId>,
        point: PointId,
    ) -> Result<TermId, InlineError> {
        let m = &self.program.methods[callee];
        let Some(body) = m.body.clone() else {
            // Atomic method: only the Invoke transition (already emitted)
            // plus a havoc of the destination.
            return Ok(match dst {
                Some(d) => self.arena.atom(Atom::Havoc { dst: d }, point),
                None => self.arena.eps(),
            });
        };
        if self.stack.contains(&callee) {
            return Err(InlineError::Recursive(callee));
        }
        self.stack.push(callee);

        // Clone all locals of the callee.
        let vars = m.vars.clone();
        let params = m.params.clone();
        let ret = m.ret;
        let mut inner: HashMap<VarId, VarId> = HashMap::new();
        for v in vars {
            let c = self.fresh_clone(self.origin_of(v));
            inner.insert(v, c);
        }
        // Bind receiver and arguments to (cloned) parameters.
        let mut parts = Vec::new();
        let mut actuals: Vec<VarId> = Vec::new();
        if let Some(r) = recv {
            actuals.push(r);
        }
        actuals.extend_from_slice(args);
        for (formal, actual) in params.iter().zip(actuals) {
            let f = inner[formal];
            parts.push(self.arena.atom(Atom::Copy { dst: f, src: actual }, point));
        }
        let body_t = self.stmt(&body, &inner)?;
        parts.push(body_t);
        if let Some(d) = dst {
            let r = ret.expect("body implies ret var");
            parts.push(self.arena.atom(Atom::Copy { dst: d, src: inner[&r] }, point));
        }
        self.stack.pop();
        Ok(self.arena.seq_all(parts))
    }

    fn origin_of(&self, v: VarId) -> VarId {
        // Original program variables map to themselves.
        self.var_origin.get(v.index()).copied().unwrap_or(v)
    }
}

/// Inlines a whole program into one closed regular term, rooted at `main`.
///
/// Virtual calls expand to the type-state [`Atom::Invoke`] transition
/// followed by a `Choice` over the resolved callees; each callee expansion
/// clones the callee's locals (full context sensitivity) and binds
/// receiver/arguments/result with `Copy` atoms.
///
/// # Errors
///
/// Returns [`InlineError::Recursive`] if a method with a body is reachable
/// from itself, and [`InlineError::NoBody`] if `main` has no body.
pub fn inline(program: &Program, resolver: &CallResolver<'_>) -> Result<InlinedProgram, InlineError> {
    let main = &program.methods[program.main];
    let body = main.body.clone().ok_or(InlineError::NoBody(program.main))?;
    let mut inl = Inliner {
        program,
        resolver,
        arena: TermArena::new(),
        var_origin: (0..program.vars.len()).map(VarId::from_usize).collect(),
        stack: vec![program.main],
    };
    let root = inl.stmt(&body, &HashMap::new())?;
    Ok(InlinedProgram {
        arena: inl.arena,
        root,
        n_vars: inl.var_origin.len(),
        var_origin: inl.var_origin,
    })
}

/// Extends a program's variable-info view over an inlined universe: name
/// of the original variable each extended id descends from.
pub fn extended_var_info(program: &Program, inlined: &InlinedProgram, v: VarId) -> VarInfo {
    program.vars[inlined.var_origin[v.index()]].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn inline_straightline_counts_atoms() {
        let p = parse_program(
            "class C {} fn main() { var x; x = new C; x = null; }",
        )
        .unwrap();
        let resolver = resolve_by_name(&p);
        let inl = inline(&p, &resolver).unwrap();
        // null-init of x and $ret, New, Null.
        assert_eq!(inl.arena.count_atoms(inl.root), 4);
        assert_eq!(inl.n_vars, p.vars.len());
    }

    #[test]
    fn inline_clones_callee_vars_per_site() {
        let p = parse_program(
            r#"
            fn id(a) { return a; }
            fn main() { var x, y; x = null; y = id(x); y = id(y); }
            "#,
        )
        .unwrap();
        let resolver = resolve_by_name(&p);
        let inl = inline(&p, &resolver).unwrap();
        // Two expansions clone `a` and `$ret_id` each.
        assert_eq!(inl.n_vars, p.vars.len() + 4);
        let a = p
            .vars
            .iter_enumerated()
            .find(|(_, v)| p.names.resolve(v.name) == "a")
            .unwrap()
            .0;
        assert_eq!(inl.clones_of(a).count(), 3); // original + 2 clones
    }

    #[test]
    fn recursion_detected() {
        let p = parse_program("fn f() { f(); } fn main() { f(); }").unwrap();
        let resolver = resolve_by_name(&p);
        assert!(matches!(inline(&p, &resolver), Err(InlineError::Recursive(_))));
    }

    #[test]
    fn virtual_call_emits_invoke_and_choice() {
        let p = parse_program(
            r#"
            class A { fn m(x) { return x; } }
            class B { fn m(x) { return x; } }
            fn main() { var o, r; o = new A; r = o.m(o); }
            "#,
        )
        .unwrap();
        let resolver = resolve_by_name(&p);
        let inl = inline(&p, &resolver).unwrap();
        // Both A.m and B.m are inlined under a Choice (name-based resolution).
        let mut choices = 0;
        let mut invokes = 0;
        for i in 0..inl.arena.len() {
            match inl.arena.node(TermId::from_usize(i)) {
                TermNode::Choice(..) => choices += 1,
                TermNode::Atom(Atom::Invoke { .. }, _) => invokes += 1,
                _ => {}
            }
        }
        assert!(choices >= 1);
        assert_eq!(invokes, 1);
    }

    #[test]
    fn bodyless_callee_havocs_destination() {
        let p = parse_program(
            r#"
            class F { fn get(); }
            fn main() { var o, r; o = new F; r = o.get(); }
            "#,
        )
        .unwrap();
        let resolver = resolve_by_name(&p);
        let inl = inline(&p, &resolver).unwrap();
        let havocs = (0..inl.arena.len())
            .filter(|&i| matches!(inl.arena.node(TermId::from_usize(i)), TermNode::Atom(Atom::Havoc { .. }, _)))
            .count();
        assert_eq!(havocs, 1);
    }

    #[test]
    fn loops_become_star() {
        let p = parse_program("fn main() { var x; while (*) { x = null; } }").unwrap();
        let resolver = resolve_by_name(&p);
        let inl = inline(&p, &resolver).unwrap();
        let stars = (0..inl.arena.len())
            .filter(|&i| matches!(inl.arena.node(TermId::from_usize(i)), TermNode::Star(_)))
            .count();
        assert_eq!(stars, 1);
    }
}
