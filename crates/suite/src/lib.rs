//! The benchmark suite and experiment harness reproducing the PLDI'13
//! evaluation (Section 6).
//!
//! The paper evaluates on seven real-world concurrent Java programs
//! (tsp, elevator, hedc, weblech, antlr, avrora, lusearch) analyzed with
//! Chord. Neither the JVM nor those programs are available to this
//! reproduction, so this crate provides the documented substitute
//! (DESIGN.md §2): a deterministic, seeded **generator** of Jaylite
//! programs whose structural knobs (library vs. application code, call
//! depth, aliasing chains, shared globals, thread spawns, loops) are set
//! per benchmark to mirror the paper's relative sizes. Names are kept so
//! the regenerated tables read like the paper's.
//!
//! [`experiments`] drives both client analyses over every benchmark with
//! the grouped TRACER and aggregates exactly the statistics behind the
//! paper's Tables 1–4 and Figures 12–14; the `pda-bench` binaries print
//! them.

#![warn(missing_docs)]

pub mod bench;
pub mod experiments;
pub mod gen;
pub mod stats;

pub use bench::Benchmark;
pub use experiments::{
    run_escape, run_typestate, run_typestate_automaton, AnalysisRun, ExperimentConfig,
    QueryOutcome, Resolution,
};
pub use gen::{generate_source, GenConfig};
pub use stats::{benchmark_stats, BenchStats};

/// The seven benchmark configurations, smallest to largest, named after
/// the paper's suite (Table 1).
pub fn suite() -> Vec<GenConfig> {
    vec![
        GenConfig::named("tsp", 11, 1, 2, 4, 2, 6),
        GenConfig::named("elevator", 12, 1, 2, 5, 2, 6),
        GenConfig::named("hedc", 13, 2, 4, 7, 3, 7),
        GenConfig::named("weblech", 14, 2, 5, 8, 3, 8),
        GenConfig::named("antlr", 15, 3, 7, 10, 3, 8),
        GenConfig::named("avrora", 16, 3, 9, 12, 3, 8),
        GenConfig::named("lusearch", 17, 3, 8, 11, 3, 8),
    ]
}

/// Loads every benchmark in the suite (generation + parse + pre-analyses).
pub fn load_suite() -> Vec<Benchmark> {
    suite().into_iter().map(Benchmark::load).collect()
}
