//! A loaded benchmark: generated source, resolved program, pre-analyses.

use crate::gen::{generate_source, GenConfig};
use pda_analysis::{PointsTo, Reachability};
use pda_lang::{CallId, MethodId, Program, SiteId};

/// One loaded benchmark, ready for the experiment harness.
#[derive(Debug)]
pub struct Benchmark {
    /// Benchmark name (paper suite name).
    pub name: String,
    /// The generated Jaylite source.
    pub source: String,
    /// Resolved program.
    pub program: Program,
    /// Points-to / 0-CFA call graph.
    pub pa: PointsTo,
    /// Methods reachable from `main`.
    pub reach: Reachability,
}

impl Benchmark {
    /// Generates, parses, and pre-analyzes one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to parse — the generator is
    /// specified to always produce valid programs.
    pub fn load(cfg: GenConfig) -> Benchmark {
        let source = generate_source(&cfg);
        let program = pda_lang::parse_program(&source)
            .unwrap_or_else(|e| panic!("benchmark {} failed to load: {e}", cfg.name));
        let pa = PointsTo::analyze(&program);
        let reach = Reachability::compute(&program, &pa);
        Benchmark { name: cfg.name, source, program, pa, reach }
    }

    /// Is this method application code (vs. the synthetic library)?
    pub fn is_app_method(&self, m: MethodId) -> bool {
        !self.program.method_name(m).starts_with("lib_")
    }

    /// Is this allocation site in application code and of an application
    /// class?
    pub fn is_app_site(&self, h: SiteId) -> bool {
        let site = &self.program.sites[h];
        let class_name = self
            .program
            .names
            .resolve(self.program.classes[site.class].name);
        self.is_app_method(site.method) && !class_name.starts_with("Lib")
    }

    /// Reachable application methods, ascending.
    pub fn app_methods(&self) -> Vec<MethodId> {
        self.reach
            .methods()
            .filter(|&m| self.is_app_method(m))
            .collect()
    }

    /// Call resolution closure for the engines.
    pub fn callees(&self) -> impl Fn(CallId) -> Vec<MethodId> + '_ {
        move |c| self.pa.callees(c).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_smallest_benchmark() {
        let b = Benchmark::load(crate::suite().remove(0));
        assert_eq!(b.name, "tsp");
        assert!(b.reach.count() > 3);
        assert!(!b.app_methods().is_empty());
        // Library methods are analyzed (reachable) but not app.
        let has_lib = b
            .reach
            .methods()
            .any(|m| b.program.method_name(m).starts_with("lib_"));
        let _ = has_lib; // library may or may not be reached; just exercise.
    }

    #[test]
    fn app_site_classification() {
        let b = Benchmark::load(crate::suite().remove(0));
        let any_app = (0..b.program.sites.len()).any(|i| b.is_app_site(SiteId(i as u32)));
        assert!(any_app);
    }
}
