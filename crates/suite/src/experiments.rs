//! The experiment harness: runs both client analyses over a benchmark
//! with the grouped TRACER and aggregates the statistics behind the
//! paper's Tables 2–4 and Figures 12–14.

use crate::bench::Benchmark;
use pda_dataflow::RhsLimits;
use pda_escape::EscapeClient;
use pda_lang::{CallKind, Node, SiteId};
use pda_meta::{BeamConfig, MetaStats};
use pda_tracer::{
    solve_queries, solve_queries_batch, BatchConfig, Escalation, Outcome, Query, QueryResult,
    TracerClient, TracerConfig, ViableEngine,
};
use pda_typestate::{TsMode, TypestateClient};
use pda_util::{CacheStats, Idx, Summary};
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Backward beam width (the paper's `k`; 5 by default, Figure 13).
    pub k: usize,
    /// CEGAR iteration budget per query group (timeout analogue).
    pub max_iters: usize,
    /// Forward fact budget per run.
    pub max_facts: usize,
    /// Cap on queries per analysis per benchmark (keeps the laptop-scale
    /// reproduction bounded; queries are sampled evenly).
    pub max_queries: usize,
    /// For type-state: cap on sites queried per call point.
    pub sites_per_call: usize,
    /// Worker threads for the batch scheduler. `1` (the default) keeps
    /// the sequential grouped driver; `> 1` solves each query
    /// independently on a worker pool with a shared forward-run cache
    /// (`pda_tracer::solve_queries_batch`).
    pub jobs: usize,
    /// In-query data parallelism for the backward meta-kernel: chunk
    /// workers for `product_i` and subsumption scans (`1`, the default,
    /// is the serial kernel; results are bit-identical at any value).
    pub meta_jobs: usize,
    /// Per-query wall-clock deadline (`None` = unlimited, the default).
    pub timeout: Option<std::time::Duration>,
    /// Fact-budget escalation ladder on forward-run `TooBig` aborts.
    pub escalation: Escalation,
    /// Per-query memory budget in estimated bytes (`None` = unlimited).
    pub mem_budget: Option<u64>,
    /// Viable-set constraint engine (DPLL branch-and-bound or the
    /// resident ROBDD; outcomes are bit-identical — see
    /// [`pda_tracer::ViableEngine`]).
    pub viable_engine: ViableEngine,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            k: 5,
            max_iters: 40,
            max_facts: 1_200_000,
            max_queries: 40,
            sites_per_call: 2,
            jobs: 1,
            meta_jobs: 1,
            timeout: None,
            escalation: Escalation::default(),
            mem_budget: None,
            viable_engine: ViableEngine::default(),
        }
    }
}

impl ExperimentConfig {
    fn tracer(&self) -> TracerConfig {
        TracerConfig {
            beam: BeamConfig::with_k(self.k),
            max_iters: self.max_iters,
            rhs_limits: RhsLimits { max_facts: self.max_facts, ..RhsLimits::default() },
            timeout: self.timeout,
            escalation: self.escalation,
            kernel: Default::default(),
            mem_budget: self.mem_budget,
            meta_jobs: self.meta_jobs,
            viable_engine: self.viable_engine,
        }
    }
}

/// How a query resolved, in the paper's three buckets (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Proven with a cheapest abstraction.
    Proven,
    /// No abstraction in the family proves it.
    Impossible,
    /// Budget exhausted (the paper's 1000-minute timeouts).
    Unresolved,
}

/// One query's outcome with the measurements the tables report.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Human-readable query identifier.
    pub label: String,
    /// Resolution bucket.
    pub resolution: Resolution,
    /// CEGAR iterations (forward runs of the query's group lineage).
    pub iterations: usize,
    /// Wall time attributed to the query, µs.
    pub micros: u128,
    /// Cheapest-abstraction size, for proven queries (Table 3).
    pub cost: Option<u64>,
    /// Canonical form of the cheapest abstraction, for reuse grouping
    /// (Table 4).
    pub param_key: Option<String>,
}

/// All outcomes of one analysis over one benchmark.
#[derive(Debug, Clone)]
pub struct AnalysisRun {
    /// Benchmark name.
    pub benchmark: String,
    /// `"type-state"` or `"thread-escape"`.
    pub analysis: &'static str,
    /// Per-query outcomes.
    pub outcomes: Vec<QueryOutcome>,
    /// Total wall time, µs.
    pub wall_micros: u128,
    /// Total forward runs (shared across grouped queries, or cache
    /// misses under the batch scheduler).
    pub forward_runs: usize,
    /// Worker threads used (1 = sequential grouped driver).
    pub jobs: usize,
    /// Forward-run cache statistics (all-zero when `jobs == 1`; the
    /// sequential driver shares runs via groups, not the cache).
    pub cache: CacheStats,
    /// Meta-kernel effort counters summed over the run.
    pub meta: MetaStats,
}

impl AnalysisRun {
    /// Batch throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall_micros == 0 {
            return 0.0;
        }
        self.outcomes.len() as f64 * 1e6 / self.wall_micros as f64
    }

    /// `(proven, impossible, unresolved)` counts (Figure 12).
    pub fn precision(&self) -> (usize, usize, usize) {
        let mut p = 0;
        let mut i = 0;
        let mut u = 0;
        for o in &self.outcomes {
            match o.resolution {
                Resolution::Proven => p += 1,
                Resolution::Impossible => i += 1,
                Resolution::Unresolved => u += 1,
            }
        }
        (p, i, u)
    }

    /// Iteration summary for one bucket (Table 2).
    pub fn iterations(&self, r: Resolution) -> Summary {
        self.outcomes
            .iter()
            .filter(|o| o.resolution == r)
            .map(|o| o.iterations as f64)
            .collect()
    }

    /// Per-query time summary in seconds for one bucket (Table 2, right).
    pub fn times_secs(&self, r: Resolution) -> Summary {
        self.outcomes
            .iter()
            .filter(|o| o.resolution == r)
            .map(|o| o.micros as f64 / 1e6)
            .collect()
    }

    /// Cheapest-abstraction size summary over proven queries (Table 3).
    pub fn cheapest_sizes(&self) -> Summary {
        self.outcomes
            .iter()
            .filter_map(|o| o.cost)
            .map(|c| c as f64)
            .collect()
    }

    /// Sizes of groups of proven queries sharing a cheapest abstraction
    /// (Table 4).
    pub fn reuse_groups(&self) -> Vec<usize> {
        let mut groups: BTreeMap<&str, usize> = BTreeMap::new();
        for o in &self.outcomes {
            if let Some(k) = &o.param_key {
                *groups.entry(k).or_default() += 1;
            }
        }
        groups.into_values().collect()
    }

    /// Histogram of cheapest-abstraction sizes (Figure 14).
    pub fn size_histogram(&self) -> BTreeMap<u64, usize> {
        let mut h = BTreeMap::new();
        for o in &self.outcomes {
            if let Some(c) = o.cost {
                *h.entry(c).or_default() += 1;
            }
        }
        h
    }
}

fn bucket<P>(outcome: &Outcome<P>) -> Resolution {
    match outcome {
        Outcome::Proven { .. } => Resolution::Proven,
        Outcome::Impossible => Resolution::Impossible,
        Outcome::Unresolved(_) => Resolution::Unresolved,
    }
}

/// Samples at most `max` elements, evenly spaced, preserving order.
fn sample<T>(mut xs: Vec<T>, max: usize) -> Vec<T> {
    if xs.len() <= max {
        return xs;
    }
    let step = xs.len() as f64 / max as f64;
    let keep: Vec<usize> = (0..max).map(|i| (i as f64 * step) as usize).collect();
    let mut i = 0;
    let mut k = 0;
    xs.retain(|_| {
        let keep_it = k < keep.len() && keep[k] == i;
        if keep_it {
            k += 1;
        }
        i += 1;
        keep_it
    });
    xs
}

/// Dispatches one query batch: the sequential grouped driver (Section 6)
/// when `cfg.jobs == 1`, the parallel batch scheduler with its shared
/// forward-run cache otherwise. Returns per-query results, forward runs
/// executed, and the cache counters (zero for the sequential path).
fn solve_all<C>(
    program: &pda_lang::Program,
    callees: &(dyn Fn(pda_lang::CallId) -> Vec<pda_lang::MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    cfg: &ExperimentConfig,
) -> (Vec<QueryResult<C::Param>>, usize, CacheStats, MetaStats)
where
    C: TracerClient + Sync,
    C::Param: Send,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    if cfg.jobs > 1 {
        let batch = BatchConfig { tracer: cfg.tracer(), jobs: cfg.jobs, ..BatchConfig::default() };
        let (results, stats) = solve_queries_batch(program, callees, client, queries, &batch);
        (results, stats.cache.misses as usize, stats.cache, stats.meta)
    } else {
        let (results, stats) = solve_queries(program, callees, client, queries, &cfg.tracer());
        (results, stats.forward_runs, CacheStats::default(), stats.meta)
    }
}

/// Runs the thread-escape analysis over a benchmark: one query per
/// instance-field access in reachable application code (Section 6),
/// solved with shared (grouped) forward runs.
pub fn run_escape(bench: &Benchmark, cfg: &ExperimentConfig) -> AnalysisRun {
    let start = Instant::now();
    let client = EscapeClient::new(&bench.program);
    let accesses = sample(
        EscapeClient::accesses(&bench.program, bench.app_methods()),
        cfg.max_queries,
    );
    let queries: Vec<Query<pda_escape::EscPrim>> = accesses
        .iter()
        .map(|&(point, var)| client.access_query(point, var))
        .collect();
    let callees = bench.callees();
    let (results, forward_runs, cache, meta) =
        solve_all(&bench.program, &callees, &client, &queries, cfg);
    let outcomes = results
        .iter()
        .zip(&accesses)
        .map(|(r, &(point, var))| QueryOutcome {
            label: format!("pc{}:{}", point.index(), bench.program.var_name(var)),
            resolution: bucket(&r.outcome),
            iterations: r.iterations,
            micros: r.micros,
            cost: match &r.outcome {
                Outcome::Proven { cost, .. } => Some(*cost),
                _ => None,
            },
            param_key: match &r.outcome {
                Outcome::Proven { param, .. } => Some(format!("{param}")),
                _ => None,
            },
        })
        .collect();
    AnalysisRun {
        benchmark: bench.name.clone(),
        analysis: "thread-escape",
        outcomes,
        wall_micros: start.elapsed().as_micros(),
        forward_runs,
        jobs: cfg.jobs.max(1),
        cache,
        meta,
    }
}

/// Enumerates the type-state stress queries `(call point, site)` of a
/// benchmark: every virtual call in reachable application code, paired
/// with each application site its receiver may point to.
pub fn typestate_query_points(
    bench: &Benchmark,
    cfg: &ExperimentConfig,
) -> Vec<(pda_lang::PointId, SiteId)> {
    let mut out = Vec::new();
    for m in bench.app_methods() {
        for (_, node) in bench.program.methods[m].cfg.iter() {
            let Node::Call(c) = node.kind else { continue };
            let call = &bench.program.calls[c];
            let CallKind::Virtual { recv, method } = call.kind else { continue };
            if bench.program.names.resolve(method).starts_with("lib_") {
                continue;
            }
            let sites: Vec<SiteId> = bench
                .pa
                .pts_var(recv)
                .iter()
                .map(SiteId::from_usize)
                .filter(|&h| bench.is_app_site(h))
                .take(cfg.sites_per_call)
                .collect();
            for h in sites {
                out.push((call.point, h));
            }
        }
    }
    sample(out, cfg.max_queries)
}

/// Runs the type-state analysis (stress property, Section 6) over a
/// benchmark. Queries sharing a tracked site share a client instance and
/// grouped forward runs.
pub fn run_typestate(bench: &Benchmark, cfg: &ExperimentConfig) -> AnalysisRun {
    let start = Instant::now();
    let points = typestate_query_points(bench, cfg);
    // Library method names are exempt from the stress property.
    let skip: HashSet<pda_lang::NameId> = bench
        .program
        .methods
        .iter()
        .filter(|m| {
            bench
                .program
                .names
                .resolve(m.name)
                .starts_with("lib_")
        })
        .map(|m| m.name)
        .collect();
    let mut by_site: BTreeMap<SiteId, Vec<pda_lang::PointId>> = BTreeMap::new();
    for &(pc, h) in &points {
        by_site.entry(h).or_default().push(pc);
    }
    let callees = bench.callees();
    let mut outcomes = Vec::new();
    let mut forward_runs = 0;
    let mut cache = CacheStats::default();
    let mut meta = MetaStats::default();
    for (h, pcs) in by_site {
        let client = TypestateClient::new(
            &bench.program,
            &bench.pa,
            h,
            TsMode::Stress { skip: skip.clone() },
        );
        let queries: Vec<Query<pda_typestate::TsPrim>> =
            pcs.iter().map(|&pc| client.stress_query(pc)).collect();
        let (results, runs, site_cache, site_meta) =
            solve_all(&bench.program, &callees, &client, &queries, cfg);
        forward_runs += runs;
        cache.merge(site_cache);
        meta.merge(&site_meta);
        for (r, &pc) in results.iter().zip(&pcs) {
            outcomes.push(QueryOutcome {
                label: format!("pc{}@{}", pc.index(), bench.program.site_label(h)),
                resolution: bucket(&r.outcome),
                iterations: r.iterations,
                micros: r.micros,
                cost: match &r.outcome {
                    Outcome::Proven { cost, .. } => Some(*cost),
                    _ => None,
                },
                param_key: match &r.outcome {
                    Outcome::Proven { param, .. } => Some(format!("h{h}:{param}")),
                    _ => None,
                },
            });
        }
    }
    AnalysisRun {
        benchmark: bench.name.clone(),
        analysis: "type-state",
        outcomes,
        wall_micros: start.elapsed().as_micros(),
        forward_runs,
        jobs: cfg.jobs.max(1),
        cache,
        meta,
    }
}

/// Runs the type-state analysis in **automaton mode** over the generated
/// `Res` acquire/release protocol (the Figure 1 analogue at benchmark
/// scale): one query per protocol call site per may-aliased `Res` site.
///
/// This exercises the declared-automaton machinery end to end, beyond the
/// paper's stress property.
pub fn run_typestate_automaton(bench: &Benchmark, cfg: &ExperimentConfig) -> AnalysisRun {
    let start = Instant::now();
    let protocol: Vec<pda_lang::NameId> = ["acquire", "release"]
        .iter()
        .filter_map(|m| bench.program.names.get(m))
        .collect();
    let res_class = bench
        .program
        .classes
        .iter_enumerated()
        .find(|(_, c)| bench.program.names.resolve(c.name) == "Res")
        .map(|(id, _)| id);
    let mut points: Vec<(pda_lang::PointId, SiteId)> = Vec::new();
    for m in bench.app_methods() {
        for (_, node) in bench.program.methods[m].cfg.iter() {
            let Node::Call(c) = node.kind else { continue };
            let call = &bench.program.calls[c];
            let CallKind::Virtual { recv, method } = call.kind else { continue };
            if !protocol.contains(&method) {
                continue;
            }
            let sites: Vec<SiteId> = bench
                .pa
                .pts_var(recv)
                .iter()
                .map(SiteId::from_usize)
                .filter(|&h| Some(bench.program.sites[h].class) == res_class)
                .take(cfg.sites_per_call)
                .collect();
            for h in sites {
                points.push((call.point, h));
            }
        }
    }
    let points = sample(points, cfg.max_queries);
    let mut by_site: BTreeMap<SiteId, Vec<pda_lang::PointId>> = BTreeMap::new();
    for &(pc, h) in &points {
        by_site.entry(h).or_default().push(pc);
    }
    let callees = bench.callees();
    let mut outcomes = Vec::new();
    let mut forward_runs = 0;
    let mut cache = CacheStats::default();
    let mut meta = MetaStats::default();
    for (h, pcs) in by_site {
        let Some(client) = TypestateClient::for_declared_automaton(&bench.program, &bench.pa, h)
        else {
            continue;
        };
        let queries: Vec<Query<pda_typestate::TsPrim>> =
            pcs.iter().map(|&pc| client.stress_query(pc)).collect();
        let (results, runs, site_cache, site_meta) =
            solve_all(&bench.program, &callees, &client, &queries, cfg);
        forward_runs += runs;
        cache.merge(site_cache);
        meta.merge(&site_meta);
        for (r, &pc) in results.iter().zip(&pcs) {
            outcomes.push(QueryOutcome {
                label: format!("pc{}@{}", pc.index(), bench.program.site_label(h)),
                resolution: bucket(&r.outcome),
                iterations: r.iterations,
                micros: r.micros,
                cost: match &r.outcome {
                    Outcome::Proven { cost, .. } => Some(*cost),
                    _ => None,
                },
                param_key: match &r.outcome {
                    Outcome::Proven { param, .. } => Some(format!("h{h}:{param}")),
                    _ => None,
                },
            });
        }
    }
    AnalysisRun {
        benchmark: bench.name.clone(),
        analysis: "type-state (automaton)",
        outcomes,
        wall_micros: start.elapsed().as_micros(),
        forward_runs,
        jobs: cfg.jobs.max(1),
        cache,
        meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig { max_queries: 8, max_iters: 20, ..ExperimentConfig::default() }
    }

    #[test]
    fn escape_run_on_smallest_benchmark() {
        let b = Benchmark::load(crate::suite().remove(0));
        let run = run_escape(&b, &small_cfg());
        assert!(!run.outcomes.is_empty());
        let (p, i, u) = run.precision();
        assert_eq!(p + i + u, run.outcomes.len());
        // Every proven query has a cost and a param key.
        for o in &run.outcomes {
            assert_eq!(o.resolution == Resolution::Proven, o.cost.is_some());
            assert_eq!(o.cost.is_some(), o.param_key.is_some());
        }
    }

    #[test]
    fn typestate_run_on_smallest_benchmark() {
        let b = Benchmark::load(crate::suite().remove(0));
        let run = run_typestate(&b, &small_cfg());
        assert!(!run.outcomes.is_empty());
        let (p, i, u) = run.precision();
        assert_eq!(p + i + u, run.outcomes.len());
    }

    #[test]
    fn automaton_run_on_smallest_benchmark() {
        let b = Benchmark::load(crate::suite().remove(0));
        let run = run_typestate_automaton(&b, &small_cfg());
        // The protocol motif guarantees acquire/release sites exist.
        assert!(!run.outcomes.is_empty());
        let (p, i, u) = run.precision();
        assert_eq!(p + i + u, run.outcomes.len());
        // Protocol queries resolve decisively (the motif is small).
        assert!(p + i > 0, "no protocol query resolved");
    }

    #[test]
    fn parallel_escape_run_matches_sequential_verdicts() {
        let b = Benchmark::load(crate::suite().remove(0));
        let seq = run_escape(&b, &small_cfg());
        let par = run_escape(&b, &ExperimentConfig { jobs: 4, ..small_cfg() });
        assert_eq!(par.jobs, 4);
        assert_eq!(seq.jobs, 1);
        assert_eq!(seq.cache.lookups(), 0, "sequential path must not touch the cache");
        assert_eq!(par.forward_runs, par.cache.misses as usize);
        assert!(par.cache.hits > 0, "expected cross-query forward-run sharing");
        // Grouped (sequential) and batch (parallel) drivers agree on every
        // verdict and on the optimum cost; iteration *attribution* differs
        // by design (groups amortize runs differently).
        let key = |r: &AnalysisRun| {
            r.outcomes.iter().map(|o| (o.label.clone(), o.resolution, o.cost)).collect::<Vec<_>>()
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn sample_is_even_and_bounded() {
        let xs: Vec<usize> = (0..100).collect();
        let s = sample(xs, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(sample(vec![1, 2, 3], 10), vec![1, 2, 3]);
    }

    #[test]
    fn aggregations_are_consistent() {
        let b = Benchmark::load(crate::suite().remove(0));
        let run = run_escape(&b, &small_cfg());
        let (p, _, _) = run.precision();
        assert_eq!(run.reuse_groups().iter().sum::<usize>(), p);
        assert_eq!(run.size_histogram().values().sum::<usize>(), p);
        assert_eq!(run.cheapest_sizes().count() as usize, p);
    }
}
