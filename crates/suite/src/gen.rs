//! Deterministic, seeded generator of Jaylite benchmark programs.
//!
//! Substitutes for the paper's Java benchmark suite (DESIGN.md §2): each
//! configuration produces a program with a synthetic "library" layer
//! (classes/functions prefixed `Lib`/`lib_`, the JDK stand-in: analyzed
//! but not queried) and an "application" layer, wired with the structural
//! motifs that make the paper's two analyses interesting — aliasing
//! chains (must-alias tracking), container stores (escape joins), global
//! publication and thread spawns (escape), loops, and call chains
//! (context sensitivity).

use pda_util::SplitMix64;
use std::fmt::Write as _;

/// Structural knobs for one generated benchmark.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Benchmark name (the paper's suite names).
    pub name: String,
    /// RNG seed; everything else equal, the same seed regenerates the
    /// same program byte for byte.
    pub seed: u64,
    /// Number of library classes.
    pub lib_classes: usize,
    /// Number of application classes.
    pub app_classes: usize,
    /// Number of application free functions (besides `main`).
    pub app_funcs: usize,
    /// Methods per class.
    pub methods_per_class: usize,
    /// Statement budget per function body.
    pub stmts_per_body: usize,
    /// Fields per class.
    pub fields_per_class: usize,
    /// Local variables declared per function.
    pub vars_per_fn: usize,
    /// Number of global (static) variables.
    pub globals: usize,
    /// Percent chance a statement slot publishes to a global.
    pub publish_pct: u32,
    /// Percent chance a statement slot spawns a thread.
    pub spawn_pct: u32,
    /// Percent chance of a branch at a statement slot.
    pub branch_pct: u32,
    /// Percent chance of a loop at a statement slot.
    pub loop_pct: u32,
    /// Percent chance of a call at a statement slot.
    pub call_pct: u32,
    /// Percent chance of the resource-protocol motif at a statement slot.
    pub protocol_pct: u32,
    /// Length of the alias chains in protocol motifs. Proving a chained
    /// release needs every chain variable tracked, so this drives the
    /// growth of cheapest type-state abstractions with benchmark size
    /// (the paper's Table 3).
    pub alias_chain: usize,
}

impl GenConfig {
    /// A named configuration with derived defaults for the minor knobs.
    pub fn named(
        name: &str,
        seed: u64,
        lib_classes: usize,
        app_classes: usize,
        app_funcs: usize,
        methods_per_class: usize,
        stmts_per_body: usize,
    ) -> GenConfig {
        GenConfig {
            name: name.to_string(),
            seed,
            lib_classes,
            app_classes,
            app_funcs,
            methods_per_class,
            stmts_per_body,
            fields_per_class: 2,
            vars_per_fn: stmts_per_body / 2 + 3,
            globals: 2,
            publish_pct: 11,
            spawn_pct: 3,
            branch_pct: 14,
            loop_pct: 8,
            call_pct: 28,
            protocol_pct: 7,
            alias_chain: (app_funcs / 4).clamp(1, 4),
        }
    }
}

struct Gen {
    cfg: GenConfig,
    rng: SplitMix64,
    out: String,
    /// Counter for protocol-motif occurrences (fresh variable names).
    n_proto: u32,
}

/// Generates the benchmark's Jaylite source text.
///
/// The output always parses and resolves (asserted by the suite's tests);
/// `main` reaches every application function.
pub fn generate_source(cfg: &GenConfig) -> String {
    let mut g = Gen {
        cfg: cfg.clone(),
        rng: SplitMix64::new(cfg.seed),
        out: String::new(),
        n_proto: 0,
    };
    g.emit();
    g.out
}

impl Gen {
    fn pct(&mut self, p: u32) -> bool {
        (self.rng.gen_range(0, 100) as u32) < p
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.gen_range(0, xs.len())]
    }

    fn class_names(&self) -> Vec<String> {
        let lib = (0..self.cfg.lib_classes).map(|i| format!("Lib{i}"));
        let app = (0..self.cfg.app_classes).map(|i| format!("C{i}"));
        lib.chain(app).collect()
    }

    fn app_class_names(&self) -> Vec<String> {
        (0..self.cfg.app_classes).map(|i| format!("C{i}")).collect()
    }

    fn field_names(&self, class: usize, is_lib: bool) -> Vec<String> {
        let tag = if is_lib { "lf" } else { "f" };
        (0..self.cfg.fields_per_class)
            .map(|j| format!("{tag}{class}_{j}"))
            .collect()
    }

    fn all_field_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in 0..self.cfg.lib_classes {
            out.extend(self.field_names(c, true));
        }
        for c in 0..self.cfg.app_classes {
            out.extend(self.field_names(c, false));
        }
        out
    }

    fn emit(&mut self) {
        let globals: Vec<String> = (0..self.cfg.globals).map(|i| format!("g{i}")).collect();
        writeln!(self.out, "// benchmark `{}` (seed {})", self.cfg.name, self.cfg.seed).unwrap();
        writeln!(self.out, "global {};", globals.join(", ")).unwrap();

        // A resource class with a real type-state protocol (the automaton
        // analogue of Figure 1's File), exercised by the protocol motif in
        // function bodies and by the automaton-mode experiments.
        writeln!(self.out, "class Res {{ fn acquire(); fn release(); }}").unwrap();
        writeln!(self.out, "typestate Res {{").unwrap();
        writeln!(self.out, "    init idle;").unwrap();
        writeln!(self.out, "    idle -> acquire -> busy;").unwrap();
        writeln!(self.out, "    busy -> release -> idle;").unwrap();
        writeln!(self.out, "    busy -> acquire -> error;").unwrap();
        writeln!(self.out, "    idle -> release -> error;").unwrap();
        writeln!(self.out, "}}").unwrap();

        // Library classes: methods shuffle their own fields, never publish.
        for c in 0..self.cfg.lib_classes {
            let fields = self.field_names(c, true);
            writeln!(self.out, "class Lib{c} {{").unwrap();
            writeln!(self.out, "    field {};", fields.join(", ")).unwrap();
            for m in 0..self.cfg.methods_per_class {
                writeln!(self.out, "    fn lib_m{c}_{m}(x) {{").unwrap();
                let fld = self.pick(&fields).clone();
                let fld2 = self.pick(&fields).clone();
                writeln!(self.out, "        var t;").unwrap();
                writeln!(self.out, "        this.{fld} = x;").unwrap();
                writeln!(self.out, "        t = this.{fld2};").unwrap();
                writeln!(self.out, "        return t;").unwrap();
                writeln!(self.out, "    }}").unwrap();
            }
            writeln!(self.out, "}}").unwrap();
        }

        // Application classes.
        for c in 0..self.cfg.app_classes {
            let fields = self.field_names(c, false);
            writeln!(self.out, "class C{c} {{").unwrap();
            writeln!(self.out, "    field {};", fields.join(", ")).unwrap();
            for m in 0..self.cfg.methods_per_class {
                writeln!(self.out, "    fn m{c}_{m}(x) {{").unwrap();
                writeln!(self.out, "        var t, u;").unwrap();
                // Method bodies: field traffic on `this` plus a little
                // fresh allocation; a few store the argument (container
                // motif), which is what makes escape queries interesting.
                let fld = self.pick(&fields).clone();
                let fld2 = self.pick(&fields).clone();
                match self.rng.gen_range(0, 5) {
                    0 => {
                        writeln!(self.out, "        this.{fld} = x;").unwrap();
                        writeln!(self.out, "        t = this.{fld2};").unwrap();
                    }
                    4 => {
                        // Chained virtual call on the argument.
                        let c2 = self.rng.gen_range(0, self.cfg.app_classes);
                        let m2 = self.rng.gen_range(0, self.cfg.methods_per_class);
                        writeln!(self.out, "        t = this.{fld};").unwrap();
                        writeln!(self.out, "        x.m{c2}_{m2}(t);").unwrap();
                    }
                    1 => {
                        let cls = self.pick(&self.class_names()).clone();
                        writeln!(self.out, "        t = new {cls};").unwrap();
                        writeln!(self.out, "        this.{fld} = t;").unwrap();
                    }
                    2 => {
                        writeln!(self.out, "        t = this.{fld};").unwrap();
                        writeln!(self.out, "        u = x;").unwrap();
                        writeln!(self.out, "        this.{fld2} = u;").unwrap();
                    }
                    _ => {
                        writeln!(self.out, "        t = x;").unwrap();
                        writeln!(self.out, "        u = t;").unwrap();
                        writeln!(self.out, "        this.{fld} = u;").unwrap();
                    }
                }
                writeln!(self.out, "        return t;").unwrap();
                writeln!(self.out, "    }}").unwrap();
            }
            writeln!(self.out, "}}").unwrap();
        }

        // Application functions funN; each calls only lower-numbered
        // functions, so the call graph is acyclic and fully reachable.
        for fi in 0..self.cfg.app_funcs {
            self.emit_fn(fi);
        }
        self.emit_main();
    }

    fn var_list(&self) -> Vec<String> {
        (0..self.cfg.vars_per_fn).map(|i| format!("v{i}")).collect()
    }

    fn emit_fn(&mut self, fi: usize) {
        let vars = self.var_list();
        writeln!(self.out, "fn fun{fi}(a0, a1) {{").unwrap();
        writeln!(self.out, "    var {};", vars.join(", ")).unwrap();
        let mut scope: Vec<String> = vars;
        scope.push("a0".into());
        scope.push("a1".into());
        // Ensure the leading locals hold fresh objects up front: these are
        // preferred as call receivers and field bases, so queries have
        // concrete allocation sites behind them.
        for v in scope.iter().take(4) {
            let cls = self.pick(&self.app_class_names()).clone();
            writeln!(self.out, "    {v} = new {cls};").unwrap();
        }
        // Every other function exercises the resource protocol, so the
        // automaton experiments always have queries.
        if fi.is_multiple_of(2) && scope.len() >= 6 {
            let v = scope[4].clone();
            let w = scope[5].clone();
            self.emit_protocol(&v, &w, "    ");
        }
        let budget = self.cfg.stmts_per_body;
        self.emit_stmts(fi, &scope, budget, 1);
        let ret = self.pick(&scope).clone();
        writeln!(self.out, "    return {ret};").unwrap();
        writeln!(self.out, "}}").unwrap();
    }

    fn emit_main(&mut self) {
        let vars = self.var_list();
        writeln!(self.out, "fn main() {{").unwrap();
        writeln!(self.out, "    var {};", vars.join(", ")).unwrap();
        let scope = vars;
        for v in scope.iter().take(4) {
            let cls = self.pick(&self.app_class_names()).clone();
            writeln!(self.out, "    {v} = new {cls};").unwrap();
        }
        // Call every application function at least once so the whole
        // program is reachable.
        for fi in 0..self.cfg.app_funcs {
            let dst = self.pick(&scope).clone();
            let x = self.pick(&scope).clone();
            let y = self.pick(&scope).clone();
            writeln!(self.out, "    {dst} = fun{fi}({x}, {y});").unwrap();
        }
        let budget = self.cfg.stmts_per_body;
        self.emit_stmts(self.cfg.app_funcs, &scope, budget, 1);
        writeln!(self.out, "}}").unwrap();
    }

    /// Protocol motif: acquire/release a resource, sometimes through an
    /// alias chain (proving the release then needs every chain variable
    /// in the must-alias abstraction), sometimes buggy (provably
    /// impossible). Chain variables are declared fresh per occurrence.
    fn emit_protocol(&mut self, _v: &str, _w: &str, indent: &str) {
        let id = self.n_proto;
        self.n_proto += 1;
        let len = self.rng.gen_range_inclusive(1, self.cfg.alias_chain);
        let q = |i: usize| format!("q{id}_{i}");
        let decls: Vec<String> = (0..=len).map(&q).collect();
        writeln!(self.out, "{indent}var {};", decls.join(", ")).unwrap();
        writeln!(self.out, "{indent}{} = new Res;", q(0)).unwrap();
        writeln!(self.out, "{indent}{}.acquire();", q(0)).unwrap();
        match self.rng.gen_range(0, 4) {
            0 => writeln!(self.out, "{indent}{}.release();", q(0)).unwrap(),
            1 => {
                // Correct use through an alias chain.
                for i in 1..=len {
                    writeln!(self.out, "{indent}{} = {};", q(i), q(i - 1)).unwrap();
                }
                writeln!(self.out, "{indent}{}.release();", q(len)).unwrap();
            }
            2 => {
                // Double acquire: a protocol violation.
                writeln!(self.out, "{indent}{}.acquire();", q(0)).unwrap();
            }
            _ => {
                writeln!(self.out, "{indent}if (*) {{").unwrap();
                writeln!(self.out, "{indent}    {}.release();", q(0)).unwrap();
                writeln!(self.out, "{indent}}}").unwrap();
                writeln!(self.out, "{indent}{}.release();", q(0)).unwrap();
            }
        }
    }

    /// Emits about `budget` statements into the current body.
    /// `fi` bounds which functions may be called (strictly lower).
    fn emit_stmts(&mut self, fi: usize, scope: &[String], budget: usize, depth: usize) {
        let indent = "    ".repeat(depth);
        let mut left = budget;
        while left > 0 {
            left -= 1;
            let v = self.pick(scope).clone();
            let w = self.pick(scope).clone();
            if depth < 3 && self.pct(self.cfg.branch_pct) && left >= 2 {
                writeln!(self.out, "{indent}if (*) {{").unwrap();
                self.emit_stmts(fi, scope, 2, depth + 1);
                writeln!(self.out, "{indent}}} else {{").unwrap();
                self.emit_stmts(fi, scope, 1, depth + 1);
                writeln!(self.out, "{indent}}}").unwrap();
                left = left.saturating_sub(3);
                continue;
            }
            if depth < 3 && self.pct(self.cfg.loop_pct) && left >= 1 {
                writeln!(self.out, "{indent}while (*) {{").unwrap();
                self.emit_stmts(fi, scope, 2, depth + 1);
                writeln!(self.out, "{indent}}}").unwrap();
                left = left.saturating_sub(2);
                continue;
            }
            if self.pct(self.cfg.call_pct) {
                if fi > 0 && self.rng.gen_bool(0.5) {
                    let target = self.rng.gen_range(0, fi);
                    writeln!(self.out, "{indent}{v} = fun{target}({w}, {v});").unwrap();
                } else {
                    // Virtual call: method of a random class; dispatch is
                    // decided by what the receiver actually points to.
                    // Prefer the leading (object-initialized) locals as
                    // receivers so dispatch targets exist.
                    let recv = scope[self.rng.gen_range(0, 4.min(scope.len()))].clone();
                    let c = self.rng.gen_range(0, self.cfg.app_classes);
                    let m = self.rng.gen_range(0, self.cfg.methods_per_class);
                    if self.rng.gen_bool(0.2) && self.cfg.lib_classes > 0 {
                        let lc = self.rng.gen_range(0, self.cfg.lib_classes);
                        let lm = self.rng.gen_range(0, self.cfg.methods_per_class);
                        writeln!(self.out, "{indent}{recv}.lib_m{lc}_{lm}({w});").unwrap();
                    } else if self.rng.gen_bool(0.5) {
                        writeln!(self.out, "{indent}{recv}.m{c}_{m}({w});").unwrap();
                    } else {
                        writeln!(self.out, "{indent}{v} = {recv}.m{c}_{m}({w});").unwrap();
                    }
                }
                continue;
            }
            if self.pct(self.cfg.publish_pct) {
                let gi = self.rng.gen_range(0, self.cfg.globals);
                // Publish one of the object-holding leading locals half the
                // time, so some queried objects genuinely escape (the
                // paper's "impossible to prove" bucket).
                let pv = if self.rng.gen_bool(0.5) {
                    scope[self.rng.gen_range(0, 4.min(scope.len()))].clone()
                } else {
                    v.clone()
                };
                if self.rng.gen_bool(0.6) {
                    writeln!(self.out, "{indent}g{gi} = {pv};").unwrap();
                    // Accessing a just-published object: such queries are
                    // provably impossible — the paper's second bucket.
                    if self.rng.gen_bool(0.8) {
                        let fld = self.pick(&self.all_field_names()).clone();
                        writeln!(self.out, "{indent}{v} = {pv}.{fld};").unwrap();
                    }
                } else {
                    writeln!(self.out, "{indent}{v} = g{gi};").unwrap();
                }
                continue;
            }
            if self.pct(self.cfg.spawn_pct) {
                writeln!(self.out, "{indent}spawn {v};").unwrap();
                continue;
            }
            if self.pct(self.cfg.protocol_pct) && left >= 2 {
                self.emit_protocol(&v, &w, &indent);
                left = left.saturating_sub(3);
                continue;
            }
            // Plain data statements; field traffic on the leading
            // (object-holding) locals dominates, mirroring real code.
            let base = scope[self.rng.gen_range(0, 4.min(scope.len()))].clone();
            match self.rng.gen_range(0, 7) {
                0 => {
                    let cls = self.pick(&self.class_names()).clone();
                    writeln!(self.out, "{indent}{v} = new {cls};").unwrap();
                }
                1 => writeln!(self.out, "{indent}{v} = {w};").unwrap(),
                2 | 3 => {
                    let fld = self.pick(&self.all_field_names()).clone();
                    writeln!(self.out, "{indent}{base}.{fld} = {w};").unwrap();
                }
                4 | 5 => {
                    let fld = self.pick(&self.all_field_names()).clone();
                    writeln!(self.out, "{indent}{v} = {base}.{fld};").unwrap();
                }
                _ => writeln!(self.out, "{indent}{v} = null;").unwrap(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::named("t", 42, 1, 2, 3, 2, 5);
        assert_eq!(generate_source(&cfg), generate_source(&cfg));
        let cfg2 = GenConfig { seed: 43, ..cfg.clone() };
        assert_ne!(generate_source(&cfg), generate_source(&cfg2));
    }

    #[test]
    fn every_suite_benchmark_parses_and_resolves() {
        for cfg in crate::suite() {
            let src = generate_source(&cfg);
            let program = pda_lang::parse_program(&src)
                .unwrap_or_else(|e| panic!("{}: {e}\n{src}", cfg.name));
            assert!(program.sites.len() > 3, "{} too small", cfg.name);
            assert!(program.methods.len() > 5, "{} too small", cfg.name);
            let violations = pda_lang::validate::check(&program);
            assert!(violations.is_empty(), "{}: {violations:?}", cfg.name);
        }
    }

    #[test]
    fn benchmarks_scale_with_config() {
        let suite = crate::suite();
        let small = generate_source(&suite[0]);
        let large = generate_source(&suite[5]); // avrora
        assert!(large.lines().count() > 2 * small.lines().count());
    }
}
