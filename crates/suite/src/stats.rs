//! Benchmark statistics (the paper's Table 1).

use crate::bench::Benchmark;
use pda_lang::MethodId;
use pda_util::Idx;

/// Table 1 row: program sizes plus the (log of the) abstraction-family
/// sizes for both client analyses.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Application classes / total classes.
    pub classes: (usize, usize),
    /// Reachable application methods / reachable methods.
    pub methods: (usize, usize),
    /// Source lines (the KLOC analogue for the generated programs).
    pub loc: usize,
    /// `log2` of the type-state abstraction family: number of local
    /// variables in reachable methods.
    pub log2_typestate: usize,
    /// `log2` of the thread-escape abstraction family: number of
    /// allocation sites in reachable methods.
    pub log2_escape: usize,
}

/// Computes the Table 1 row for one benchmark.
pub fn benchmark_stats(b: &Benchmark) -> BenchStats {
    let p = &b.program;
    let total_classes = p.classes.len();
    let app_classes = p
        .classes
        .iter()
        .filter(|c| !p.names.resolve(c.name).starts_with("Lib"))
        .count();
    let reachable: Vec<MethodId> = b.reach.methods().collect();
    let app_methods = reachable.iter().filter(|&&m| b.is_app_method(m)).count();
    let vars_in_reachable = p
        .vars
        .iter()
        .filter(|v| b.reach.is_reachable(v.method))
        .count();
    let sites_in_reachable = (0..p.sites.len())
        .map(pda_lang::SiteId::from_usize)
        .filter(|&h| b.reach.is_reachable(p.sites[h].method))
        .count();
    BenchStats {
        name: b.name.clone(),
        classes: (app_classes, total_classes),
        methods: (app_methods, reachable.len()),
        loc: b.source.lines().count(),
        log2_typestate: vars_in_reachable,
        log2_escape: sites_in_reachable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::Benchmark;

    #[test]
    fn stats_are_sane() {
        let b = Benchmark::load(crate::suite().remove(0));
        let s = benchmark_stats(&b);
        assert_eq!(s.name, "tsp");
        assert!(s.classes.0 <= s.classes.1);
        assert!(s.methods.0 <= s.methods.1);
        assert!(s.loc > 20);
        assert!(s.log2_typestate > 0);
        assert!(s.log2_escape > 0);
    }

    #[test]
    fn suite_sizes_increase() {
        let benches = crate::load_suite();
        let tsp = benchmark_stats(&benches[0]);
        let avrora = benchmark_stats(&benches[5]);
        assert!(avrora.log2_typestate > tsp.log2_typestate);
        assert!(avrora.log2_escape > tsp.log2_escape);
    }
}
