//! Query-group bookkeeping invariants: outcomes are independent of query
//! order, and grouped results match individually-solved results.

use pda_analysis::PointsTo;
use pda_tracer::nullcli::NullClient;
use pda_tracer::{solve_queries, solve_query, Outcome, TracerConfig};

const SRC: &str = r#"
    class C {}
    fn main() {
        var a, b, c, d, e;
        a = null;
        b = a;
        c = new C;
        d = c;
        e = null;
        if (*) { e = c; }
        query q1: local a;
        query q2: local b;
        query q3: local c;
        query q4: local d;
        query q5: local e;
    }
"#;

fn outcomes_in_order(order: &[usize]) -> Vec<(usize, Option<u64>)> {
    let program = pda_lang::parse_program(SRC).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = NullClient::new(&program);
    let all: Vec<_> = program
        .queries
        .iter_enumerated()
        .map(|(qid, _)| client.query(&program, qid))
        .collect();
    let queries: Vec<_> = order.iter().map(|&i| all[i].clone()).collect();
    let (results, _) = solve_queries(
        &program,
        &|c| pa.callees(c).to_vec(),
        &client,
        &queries,
        &TracerConfig::default(),
    );
    let mut out: Vec<(usize, Option<u64>)> = order
        .iter()
        .zip(&results)
        .map(|(&i, r)| {
            (
                i,
                match &r.outcome {
                    Outcome::Proven { cost, .. } => Some(*cost),
                    Outcome::Impossible => None,
                    o => panic!("unresolved: {o:?}"),
                },
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn outcomes_invariant_under_query_order() {
    let base = outcomes_in_order(&[0, 1, 2, 3, 4]);
    for order in [[4, 3, 2, 1, 0], [2, 0, 4, 1, 3], [1, 4, 0, 3, 2]] {
        assert_eq!(outcomes_in_order(&order), base, "order {order:?} changed outcomes");
    }
}

#[test]
fn grouped_matches_individual_per_query() {
    let program = pda_lang::parse_program(SRC).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = NullClient::new(&program);
    let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
    let queries: Vec<_> = program
        .queries
        .iter_enumerated()
        .map(|(qid, _)| client.query(&program, qid))
        .collect();
    let (grouped, stats) =
        solve_queries(&program, &callees, &client, &queries, &TracerConfig::default());
    assert!(stats.forward_runs > 0);
    for (q, g) in queries.iter().zip(&grouped) {
        let ind = solve_query(&program, &callees, &client, q, &TracerConfig::default());
        match (&ind.outcome, &g.outcome) {
            (Outcome::Proven { cost: a, .. }, Outcome::Proven { cost: b, .. }) => {
                assert_eq!(a, b)
            }
            (x, y) => assert_eq!(x, y),
        }
    }
}
