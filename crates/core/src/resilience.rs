//! Checkpoint/resume for batch runs: never lose finished work.
//!
//! [`solve_queries_batch_checkpointed`] streams every finished
//! [`QueryResult`] to a JSONL file *as soon as it exists* (one flushed
//! line per query, so a `kill -9` loses at most the in-flight queries),
//! and on restart loads the file, skips every already-resolved query, and
//! solves only the remainder. The final result vector is identical to an
//! uninterrupted run's, modulo the timing fields.
//!
//! # Checkpoint format
//!
//! Line 1 is a header; each further line is one result record:
//!
//! ```text
//! {"v":2,"kind":"pda-batch-checkpoint","queries":23}
//! {"i":0,"outcome":"proven","param":"9:1,4","cost":2,"iterations":3,"micros":412,"escalations":0,"retries":0,...}
//! {"i":2,"outcome":"impossible","iterations":4,"micros":96,"escalations":0,"retries":0,...}
//! {"i":1,"outcome":"unresolved","reason":"engine_fault","detail":"...","iterations":0,"micros":8,"escalations":0,"retries":2,...}
//! ```
//!
//! The writer is hand-rolled (the workspace is offline and registry-free
//! by policy); the reader tolerates a torn final line — the signature of
//! a kill mid-write — by re-running that query. A header whose `queries`
//! count or `kind` disagrees with the current batch is rejected: resuming
//! against the wrong program would silently mis-assign results.
//!
//! Version 2 adds the per-record `retries` counter (the transient-fault
//! ladder of [`crate::batch::RetryPolicy`]), so a resumed run's
//! [`BatchStats`] totals — including `retries` — match an uninterrupted
//! run's instead of resetting restored counters to zero. Version 1 files
//! still load; their records decode with `retries = 0`. Queries stopped
//! by the drain flag ([`Unresolved::Drained`]) are *never* journaled:
//! the batch runner withholds them from the streaming sink, so a resumed
//! run re-solves them and reproduces the uninterrupted outcome lines.
//!
//! Abstraction parameters cross the serialization boundary via
//! [`ParamCodec`]; both real clients (and [`crate::nullcli::NullClient`])
//! use [`BitSet`] parameters, covered by the impl here.

use crate::batch::{run_batch, BatchConfig, BatchStats};
use crate::client::{Query, TracerClient};
use crate::tracer::{Outcome, QueryResult, Unresolved};
use pda_lang::{CallId, MethodId, Program};
use pda_meta::MetaStats;
use pda_util::json::{json_escape, parse_json_line};
use pda_util::{fault_point_io, BitSet, FaultFile, TraceSink};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Round-trips an abstraction parameter through a checkpoint record.
pub trait ParamCodec: Sized {
    /// Encodes the parameter as a single-line string.
    fn encode_param(&self) -> String;
    /// Decodes a string produced by [`ParamCodec::encode_param`].
    fn decode_param(s: &str) -> Option<Self>;
}

/// `universe:elem,elem,...` — e.g. `9:1,4` for `{1,4} ⊆ 0..9`, `9:` for
/// the empty set.
impl ParamCodec for BitSet {
    fn encode_param(&self) -> String {
        let elems: Vec<String> = self.iter().map(|i| i.to_string()).collect();
        format!("{}:{}", self.universe(), elems.join(","))
    }

    fn decode_param(s: &str) -> Option<Self> {
        let (n, elems) = s.split_once(':')?;
        let n: usize = n.parse().ok()?;
        let mut out = BitSet::new(n);
        for e in elems.split(',').filter(|e| !e.is_empty()) {
            let i: usize = e.parse().ok()?;
            if i >= n {
                return None;
            }
            out.insert(i);
        }
        Some(out)
    }
}

/// Why a checkpoint could not be used.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A non-final line failed to parse (torn *final* lines are
    /// tolerated).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The header does not belong to this batch.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { line, reason } => {
                write!(f, "checkpoint corrupt at line {line}: {reason}")
            }
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}


const KIND: &str = "pda-batch-checkpoint";
const VERSION: &str = "2";
/// Header versions the loader accepts (older records decode with their
/// missing counters at zero).
const READABLE_VERSIONS: [&str; 2] = ["1", "2"];

fn header_line(n_queries: usize) -> String {
    format!("{{\"v\":{VERSION},\"kind\":\"{KIND}\",\"queries\":{n_queries}}}")
}

fn record_line<P: ParamCodec>(i: usize, r: &QueryResult<P>) -> String {
    let m = &r.meta;
    let tail = format!(
        "\"iterations\":{},\"micros\":{},\"escalations\":{},\"degradations\":{},\"retries\":{},\
         \"m_cubes\":{},\"m_sub\":{},\"m_subf\":{},\"m_wph\":{},\"m_wpm\":{},\"m_drop\":{},\"m_mev\":{},\"m_us\":{}",
        r.iterations,
        r.micros,
        r.escalations,
        r.degradations,
        r.retries,
        m.cubes_built,
        m.subsumption_checks,
        m.subsumption_fast_rejects,
        m.wp_hits,
        m.wp_misses,
        m.approx_drops,
        m.mem_evictions,
        m.micros,
    );
    match &r.outcome {
        Outcome::Proven { param, cost } => format!(
            "{{\"i\":{i},\"outcome\":\"proven\",\"param\":\"{}\",\"cost\":{cost},{tail}}}",
            json_escape(&param.encode_param())
        ),
        Outcome::Impossible => format!("{{\"i\":{i},\"outcome\":\"impossible\",{tail}}}"),
        Outcome::Unresolved(u) => {
            let (reason, detail) = match u {
                Unresolved::IterationBudget => ("iteration_budget", None),
                Unresolved::AnalysisTooBig => ("too_big", None),
                Unresolved::MetaFailure(m) => ("meta_failure", Some(m.as_str())),
                Unresolved::DeadlineExceeded => ("deadline", None),
                Unresolved::EngineFault(m) => ("engine_fault", Some(m.as_str())),
                Unresolved::MemBudgetExceeded => ("mem_budget", None),
                // Total for codec completeness; the batch runner never
                // offers drained results to the checkpoint sink.
                Unresolved::Drained => ("drained", None),
            };
            let detail = detail
                .map(|d| format!("\"detail\":\"{}\",", json_escape(d)))
                .unwrap_or_default();
            format!("{{\"i\":{i},\"outcome\":\"unresolved\",\"reason\":\"{reason}\",{detail}{tail}}}")
        }
    }
}

fn decode_record<P: ParamCodec>(line: &str) -> Option<(usize, QueryResult<P>)> {
    let fields = parse_json_line(line)?;
    let i: usize = fields.get("i")?.parse().ok()?;
    let iterations: usize = fields.get("iterations")?.parse().ok()?;
    let micros: u128 = fields.get("micros")?.parse().ok()?;
    let escalations: u32 = fields.get("escalations")?.parse().ok()?;
    // Governor and meta counters default to zero so records written
    // before they existed still decode.
    let degradations: u32 =
        fields.get("degradations").and_then(|v| v.parse().ok()).unwrap_or(0);
    // Absent before v2; defaulting keeps v1 checkpoints readable.
    let retries: u32 = fields.get("retries").and_then(|v| v.parse().ok()).unwrap_or(0);
    let m = |k: &str| fields.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    let meta = MetaStats {
        cubes_built: m("m_cubes"),
        subsumption_checks: m("m_sub"),
        subsumption_fast_rejects: m("m_subf"),
        wp_hits: m("m_wph"),
        wp_misses: m("m_wpm"),
        approx_drops: m("m_drop"),
        mem_evictions: m("m_mev"),
        micros: m("m_us"),
    };
    let outcome = match fields.get("outcome")?.as_str() {
        "proven" => Outcome::Proven {
            param: P::decode_param(fields.get("param")?)?,
            cost: fields.get("cost")?.parse().ok()?,
        },
        "impossible" => Outcome::Impossible,
        "unresolved" => Outcome::Unresolved(match fields.get("reason")?.as_str() {
            "iteration_budget" => Unresolved::IterationBudget,
            "too_big" => Unresolved::AnalysisTooBig,
            "meta_failure" => Unresolved::MetaFailure(fields.get("detail")?.clone()),
            "deadline" => Unresolved::DeadlineExceeded,
            "engine_fault" => Unresolved::EngineFault(fields.get("detail")?.clone()),
            "mem_budget" => Unresolved::MemBudgetExceeded,
            "drained" => Unresolved::Drained,
            _ => return None,
        }),
        _ => return None,
    };
    Some((i, QueryResult { outcome, iterations, micros, escalations, degradations, retries, meta }))
}

/// Streams finished results to a checkpoint file, one flushed line each.
///
/// Every write syscall routes through a [`FaultFile`] under the
/// `journal.write` fault point, so I/O-error and torn-write faults are
/// injectable without touching any caller.
pub struct CheckpointWriter {
    out: BufWriter<FaultFile>,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint for a batch of `n_queries`,
    /// writing the header line.
    ///
    /// # Errors
    ///
    /// Any filesystem error, including injected ones at `journal.create`
    /// / `journal.write`.
    pub fn create(path: &Path, n_queries: usize) -> Result<Self, CheckpointError> {
        fault_point_io("journal.create")?;
        let mut out = BufWriter::new(FaultFile::new(File::create(path)?, "journal.write"));
        writeln!(out, "{}", header_line(n_queries))?;
        out.flush()?;
        Ok(CheckpointWriter { out })
    }

    /// Reopens an existing checkpoint for appending, without truncating
    /// or rewriting what is already there. The caller vouches that the
    /// file ends in a complete line (e.g. it was just written by this
    /// writer, or validated via [`load_checkpoint`]); the analysis
    /// daemon uses this to hand its journal back and forth with the
    /// batch driver across requests.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn open_append(path: &Path) -> Result<Self, CheckpointError> {
        fault_point_io("journal.open")?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(CheckpointWriter { out: BufWriter::new(FaultFile::new(file, "journal.write")) })
    }

    /// Appends (and flushes) one result record.
    ///
    /// # Errors
    ///
    /// Any filesystem error, including injected ones at `journal.append`
    /// (before any bytes move) / `journal.write` (the write itself).
    pub fn append<P: ParamCodec>(
        &mut self,
        i: usize,
        r: &QueryResult<P>,
    ) -> Result<(), CheckpointError> {
        fault_point_io("journal.append")?;
        writeln!(self.out, "{}", record_line(i, r))?;
        self.out.flush()?;
        Ok(())
    }
}

/// Crash-safely rewrites `path` to exactly `header + records` and
/// returns a writer appending to the rewritten file.
///
/// The rewrite goes through a temp file in the same directory
/// (`<path>.tmp`), which is flushed, fsynced, and atomically renamed
/// over `path` (the parent directory is then fsynced too, best-effort).
/// A crash at *any* step — enumerable via the `journal.compact.begin`,
/// `journal.compact.write`, and `journal.compact.rename` fault points —
/// leaves either the old file or the new one intact, never a
/// half-rewritten journal: previously durable records cannot be
/// destroyed by a failed compaction.
///
/// `records` need not be sorted; they are written in ascending index
/// order.
///
/// # Errors
///
/// Any filesystem error (injected or real). On error `path` is
/// untouched; a stale `<path>.tmp` may remain and is overwritten by the
/// next compaction.
pub fn compact_checkpoint<P: ParamCodec>(
    path: &Path,
    n_queries: usize,
    records: &[(usize, &QueryResult<P>)],
) -> Result<CheckpointWriter, CheckpointError> {
    fault_point_io("journal.compact.begin")?;
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    let mut sorted: Vec<&(usize, &QueryResult<P>)> = records.iter().collect();
    sorted.sort_by_key(|(i, _)| *i);
    let mut out =
        BufWriter::new(FaultFile::new(File::create(&tmp)?, "journal.compact.write"));
    writeln!(out, "{}", header_line(n_queries))?;
    for (i, r) in sorted {
        writeln!(out, "{}", record_line(*i, r))?;
    }
    out.flush()?;
    let mut file = out.into_inner().map_err(|e| CheckpointError::Io(e.into_error()))?;
    file.sync_all()?;
    drop(file);
    fault_point_io("journal.compact.rename")?;
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable. Failure to fsync the directory is
    // tolerated (some filesystems refuse); the rename is still atomic.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        }) {
            let _ = dir.sync_all();
        }
    }
    CheckpointWriter::open_append(path)
}

/// Loads a checkpoint written for a batch of `n_queries`, returning the
/// restored per-index results.
///
/// A torn final line (kill mid-write) is dropped; its query re-runs on
/// resume. Duplicate indices keep the last record.
///
/// # Errors
///
/// [`CheckpointError::Mismatch`] if the header disagrees with this batch,
/// [`CheckpointError::Corrupt`] for a malformed non-final line, or
/// [`CheckpointError::Io`].
pub fn load_checkpoint<P: ParamCodec>(
    path: &Path,
    n_queries: usize,
) -> Result<HashMap<usize, QueryResult<P>>, CheckpointError> {
    let lines: Vec<String> = BufReader::new(File::open(path)?)
        .lines()
        .collect::<Result<_, _>>()?;
    let Some(header) = lines.first() else {
        return Err(CheckpointError::Mismatch("empty checkpoint file".into()));
    };
    let fields = parse_json_line(header)
        .ok_or_else(|| CheckpointError::Mismatch("unparsable header".into()))?;
    if fields.get("kind").map(String::as_str) != Some(KIND) {
        return Err(CheckpointError::Mismatch(format!(
            "not a {KIND} file (kind={:?})",
            fields.get("kind")
        )));
    }
    if !fields.get("v").is_some_and(|v| READABLE_VERSIONS.contains(&v.as_str())) {
        return Err(CheckpointError::Mismatch(format!("unsupported version {:?}", fields.get("v"))));
    }
    if fields.get("queries").and_then(|q| q.parse::<usize>().ok()) != Some(n_queries) {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint is for {:?} queries, batch has {n_queries}",
            fields.get("queries")
        )));
    }
    let mut restored = HashMap::new();
    let last = lines.len() - 1;
    for (idx, line) in lines.iter().enumerate().skip(1) {
        match decode_record::<P>(line) {
            Some((i, r)) if i < n_queries => {
                restored.insert(i, r);
            }
            Some((i, _)) => {
                return Err(CheckpointError::Corrupt {
                    line: idx + 1,
                    reason: format!("query index {i} out of range"),
                });
            }
            None if idx == last => {} // torn final line: re-run that query
            None => {
                return Err(CheckpointError::Corrupt {
                    line: idx + 1,
                    reason: "unparsable record".into(),
                });
            }
        }
    }
    Ok(restored)
}

/// Results plus batch statistics, as returned by the plain batch driver.
pub type BatchOutput<P> = (Vec<QueryResult<P>>, BatchStats);

/// [`crate::batch::solve_queries_batch`] with checkpoint/resume.
///
/// If `path` exists it must be a checkpoint for this batch (same query
/// count); its records are restored and those queries skipped. Otherwise
/// the file is created. Every freshly finished query is appended and
/// flushed immediately, so an interrupted run resumes where it left off
/// and the combined result set equals an uninterrupted run's.
///
/// # Errors
///
/// Checkpoint load/validation errors before solving starts; a checkpoint
/// *write* failure mid-run surfaces after the batch completes (results
/// are computed either way, but the file can no longer be trusted as a
/// resume point).
pub fn solve_queries_batch_checkpointed<C>(
    program: &Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    config: &BatchConfig,
    path: &Path,
) -> Result<BatchOutput<C::Param>, CheckpointError>
where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    solve_queries_batch_checkpointed_traced(program, callees, client, queries, config, path, None)
}

/// [`solve_queries_batch_checkpointed`] with a structured trace (see
/// [`crate::batch::solve_queries_batch_traced`]). Checkpoint-resumed
/// queries contribute only their `query_resolved` event.
///
/// # Errors
///
/// Exactly those of [`solve_queries_batch_checkpointed`].
pub fn solve_queries_batch_checkpointed_traced<C>(
    program: &Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    config: &BatchConfig,
    path: &Path,
    trace: Option<&dyn TraceSink>,
) -> Result<BatchOutput<C::Param>, CheckpointError>
where
    C: TracerClient + Sync,
    C::Param: Send + ParamCodec,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    let (skip, writer) = if path.exists() {
        let skip = load_checkpoint::<C::Param>(path, queries.len())?;
        // Rewrite the file compactly: drops any torn final line (which
        // would otherwise corrupt the first appended record) and
        // deduplicates. The rewrite is crash-safe — temp file + atomic
        // rename — so a kill mid-compaction can never destroy records
        // that were already durable.
        let records: Vec<(usize, &QueryResult<C::Param>)> =
            skip.iter().map(|(&i, r)| (i, r)).collect();
        let writer = compact_checkpoint(path, queries.len(), &records)?;
        (skip, writer)
    } else {
        (HashMap::new(), CheckpointWriter::create(path, queries.len())?)
    };
    let writer = Mutex::new(writer);
    let write_err: Mutex<Option<CheckpointError>> = Mutex::new(None);
    let sink = |i: usize, r: &QueryResult<C::Param>| {
        // Fail-stop: after the first write error the file may end in a
        // torn line, and appending past it would bury the tear mid-file
        // where the loader (rightly) treats it as corruption. Stopping
        // keeps everything up to the tear a loadable prefix.
        let mut err = write_err.lock().expect("error slot poisoned");
        if err.is_some() {
            return;
        }
        let mut w = writer.lock().expect("checkpoint writer poisoned");
        if let Err(e) = w.append(i, r) {
            *err = Some(e);
        }
    };
    let (results, stats) =
        run_batch(program, callees, client, queries, config, skip, Some(&sink), trace);
    if let Some(e) = write_err.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pda-ckpt-{}-{name}.jsonl", std::process::id()))
    }

    fn sample_results() -> Vec<QueryResult<BitSet>> {
        vec![
            QueryResult {
                outcome: Outcome::Proven { param: BitSet::from_iter(9, [1, 4]), cost: 2 },
                iterations: 3,
                micros: 412,
                escalations: 1,
                degradations: 2,
                retries: 1,
                meta: MetaStats {
                    cubes_built: 12,
                    subsumption_checks: 20,
                    subsumption_fast_rejects: 5,
                    wp_hits: 8,
                    wp_misses: 2,
                    approx_drops: 3,
                    mem_evictions: 1,
                    micros: 42,
                },
            },
            QueryResult {
                outcome: Outcome::Impossible,
                iterations: 4,
                micros: 96,
                escalations: 0,
                degradations: 0,
                retries: 0,
                meta: MetaStats { wp_misses: 1, micros: 7, ..MetaStats::default() },
            },
            QueryResult {
                outcome: Outcome::Unresolved(Unresolved::EngineFault(
                    "panicked: \"quote\\backslash\"\nnewline".into(),
                )),
                iterations: 0,
                micros: 8,
                escalations: 0,
                degradations: 0,
                retries: 3,
                meta: MetaStats::default(),
            },
            QueryResult {
                outcome: Outcome::Unresolved(Unresolved::MetaFailure("step 3".into())),
                iterations: 2,
                micros: 33,
                escalations: 0,
                degradations: 0,
                retries: 0,
                meta: MetaStats::default(),
            },
            QueryResult {
                outcome: Outcome::Unresolved(Unresolved::DeadlineExceeded),
                iterations: 0,
                micros: 1,
                escalations: 0,
                degradations: 0,
                retries: 2,
                meta: MetaStats::default(),
            },
            QueryResult {
                outcome: Outcome::Unresolved(Unresolved::IterationBudget),
                iterations: 200,
                micros: 99_999,
                escalations: 0,
                degradations: 0,
                retries: 0,
                meta: MetaStats::default(),
            },
            QueryResult {
                outcome: Outcome::Unresolved(Unresolved::AnalysisTooBig),
                iterations: 1,
                micros: 77,
                escalations: 2,
                degradations: 0,
                retries: 1,
                meta: MetaStats::default(),
            },
            QueryResult {
                outcome: Outcome::Unresolved(Unresolved::MemBudgetExceeded),
                iterations: 6,
                micros: 210,
                escalations: 0,
                degradations: 8,
                retries: 0,
                meta: MetaStats { mem_evictions: 2, ..MetaStats::default() },
            },
        ]
    }

    #[test]
    fn bitset_codec_roundtrips() {
        for s in [
            BitSet::new(0),
            BitSet::new(7),
            BitSet::from_iter(9, [1, 4]),
            BitSet::full(65),
        ] {
            let enc = s.encode_param();
            assert_eq!(BitSet::decode_param(&enc), Some(s), "via {enc:?}");
        }
        assert_eq!(BitSet::decode_param("junk"), None);
        assert_eq!(BitSet::decode_param("3:9"), None, "element outside universe");
    }

    #[test]
    fn records_roundtrip_every_outcome() {
        for (i, r) in sample_results().iter().enumerate() {
            let line = record_line(i, r);
            let (j, back) = decode_record::<BitSet>(&line).expect("decodes");
            assert_eq!(j, i);
            assert_eq!(&back, r, "via {line}");
        }
    }

    #[test]
    fn v1_checkpoints_still_load_with_zero_retries() {
        let path = temp_path("v1");
        // A file exactly as the v1 writer produced it: no "retries", no
        // governor/meta fields on the second record.
        std::fs::write(
            &path,
            "{\"v\":1,\"kind\":\"pda-batch-checkpoint\",\"queries\":2}\n\
             {\"i\":0,\"outcome\":\"proven\",\"param\":\"9:1,4\",\"cost\":2,\"iterations\":3,\"micros\":412,\"escalations\":1}\n\
             {\"i\":1,\"outcome\":\"impossible\",\"iterations\":4,\"micros\":96,\"escalations\":0}\n",
        )
        .unwrap();
        let restored = load_checkpoint::<BitSet>(&path, 2).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored[&0].retries, 0);
        assert_eq!(restored[&0].escalations, 1);
        assert!(matches!(restored[&1].outcome, Outcome::Impossible));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn drained_record_roundtrips_but_is_never_journaled_by_the_runner() {
        // Codec totality: a drained result encodes/decodes like any other…
        let r = QueryResult::<BitSet> {
            outcome: Outcome::Unresolved(Unresolved::Drained),
            iterations: 0,
            micros: 0,
            escalations: 0,
            degradations: 0,
            retries: 0,
            meta: MetaStats::default(),
        };
        let line = record_line(7, &r);
        assert!(line.contains("\"reason\":\"drained\""));
        let (i, back) = decode_record::<BitSet>(&line).unwrap();
        assert_eq!((i, back), (7, r));
        // …but a drained batch journals nothing beyond the header.
        let program =
            pda_lang::parse_program("fn main() { var x; x = null; query q: local x; }").unwrap();
        let pa = pda_analysis::PointsTo::analyze(&program);
        let client = crate::nullcli::NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let queries = vec![client.query(&program, q)];
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let config = BatchConfig { jobs: 1, cancel: Some(flag), ..BatchConfig::default() };
        let path = temp_path("drained");
        std::fs::remove_file(&path).ok();
        let (results, _) = solve_queries_batch_checkpointed(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &queries,
            &config,
            &path,
        )
        .unwrap();
        assert_eq!(results[0].outcome, Outcome::Unresolved(Unresolved::Drained));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 1, "only the header: {body:?}");
        // Resuming with the flag lowered re-solves the query from scratch
        // and matches an uninterrupted run.
        let resumed_config = BatchConfig { jobs: 1, ..BatchConfig::default() };
        let (resumed, stats) = solve_queries_batch_checkpointed(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &queries,
            &resumed_config,
            &path,
        )
        .unwrap();
        let (uninterrupted, _) = crate::batch::solve_queries_batch(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &queries,
            &resumed_config,
        );
        assert_eq!(resumed[0].outcome, uninterrupted[0].outcome);
        assert_eq!(stats.resumed, 0, "nothing was restored from the drained journal");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_write_load_roundtrip_and_torn_tail() {
        let path = temp_path("roundtrip");
        let results = sample_results();
        let mut w = CheckpointWriter::create(&path, results.len()).unwrap();
        for (i, r) in results.iter().enumerate() {
            w.append(i, r).unwrap();
        }
        drop(w);
        // Simulate a kill mid-write: append half a record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"i\":99,\"outcome\":\"prov").unwrap();
        }
        let restored = load_checkpoint::<BitSet>(&path, results.len()).unwrap();
        assert_eq!(restored.len(), results.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(&restored[&i], r);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_or_corrupt_checkpoints_rejected() {
        let path = temp_path("reject");
        let mut w = CheckpointWriter::create(&path, 3).unwrap();
        w.append(0, &sample_results()[1]).unwrap();
        drop(w);
        // Wrong query count.
        assert!(matches!(
            load_checkpoint::<BitSet>(&path, 4),
            Err(CheckpointError::Mismatch(_))
        ));
        // Garbage on a NON-final line is an error, not a torn tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "garbage").unwrap();
            writeln!(f, "{}", record_line(1, &sample_results()[1])).unwrap();
        }
        assert!(matches!(
            load_checkpoint::<BitSet>(&path, 3),
            Err(CheckpointError::Corrupt { line: 3, .. })
        ));
        // A record index outside the batch is corruption too.
        let path2 = temp_path("range");
        let mut w = CheckpointWriter::create(&path2, 1).unwrap();
        w.append(5, &sample_results()[1]).unwrap();
        drop(w);
        assert!(matches!(
            load_checkpoint::<BitSet>(&path2, 1),
            Err(CheckpointError::Corrupt { .. })
        ));
        // Not a checkpoint at all.
        let path3 = temp_path("kind");
        std::fs::write(&path3, "{\"v\":1,\"kind\":\"other\",\"queries\":1}\n").unwrap();
        assert!(matches!(
            load_checkpoint::<BitSet>(&path3, 1),
            Err(CheckpointError::Mismatch(_))
        ));
        for p in [path, path2, path3] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn json_escape_handles_control_chars() {
        let s = "a\"b\\c\nd\te\u{1}";
        let line = format!("{{\"k\":\"{}\"}}", json_escape(s));
        let fields = parse_json_line(&line).unwrap();
        assert_eq!(fields["k"], s);
    }
}
