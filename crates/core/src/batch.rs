//! Batch query scheduler: all of a program's queries through TRACER on a
//! worker pool, with a shared forward-run cache.
//!
//! The paper evaluates TRACER one *suite program* at a time, but each
//! program carries dozens to thousands of queries, and every query's
//! CEGAR loop (Algorithm 1) re-runs the forward analysis for each
//! candidate abstraction it tries. Distinct queries over the same client
//! frequently try the *same* candidate abstractions — every query starts
//! from the empty abstraction, and cheap refinements recur — so their
//! forward runs are identical and redundant.
//!
//! [`solve_queries_batch`] exploits that: it schedules the per-query
//! CEGAR loops across a [`std::thread::scope`] worker pool
//! ([`BatchConfig::jobs`] workers) and routes every forward analysis
//! through a [`ForwardCache`] shared by the whole batch. A forward run is
//! fully determined by the `(client, abstraction parameter, program)`
//! triple; within one batch the client and program are fixed, so the
//! cache keys on the remaining coordinate — the solver model assignment
//! the parameter was decoded from. Cache hits skip the RHS tabulation
//! entirely and reuse the memoized [`RhsResult`].
//!
//! Determinism: the RHS engine is a deterministic function of its inputs
//! (LIFO worklist, interned state ids, and `witness` resolves ties by
//! minimum `(entry, state)` id), so a cached result is *identical* to the
//! run it replaces and per-query outcomes, costs, and iteration counts do
//! not depend on `jobs` or on scheduling order. `jobs == 1` short-circuits
//! to today's sequential [`solve_query`] loop, bit for bit.
//!
//! This subsumes neither the Section 6 *query groups* optimization
//! ([`crate::groups::solve_queries`]) nor is subsumed by it: groups share
//! one forward run across queries *inside one CEGAR step*, while the
//! batch cache shares runs across *independent* per-query loops (and
//! across groups, were the two composed).

use crate::client::{AsMeta, Query, TracerClient};
use crate::tracer::{solve_query, Outcome, QueryResult, StepResult, TracerConfig, Unresolved};
use pda_dataflow::{rhs, RhsResult, TooBig};
use pda_lang::{CallId, MethodId, Program};
use pda_meta::{analyze_trace, restrict};
use pda_solver::{MinCostSolver, PFormula};
use pda_util::CacheStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Configuration of a batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Per-query TRACER configuration.
    pub tracer: TracerConfig,
    /// Worker threads. `1` reproduces the sequential driver exactly
    /// (no cache, no pool); `0` is treated as `1`. The default is the
    /// machine's available parallelism.
    pub jobs: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig { tracer: TracerConfig::default(), jobs: default_jobs() }
    }
}

/// The machine's available parallelism (the `--jobs` default), `1` if
/// unknown.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Effort accounting for one batch, surfaced by the experiment binaries.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Queries scheduled.
    pub queries: usize,
    /// Worker threads actually used.
    pub jobs: usize,
    /// Forward-run cache hits/misses (`misses` = RHS runs executed;
    /// `hits` = RHS runs saved). All-zero when `jobs == 1` (no cache).
    pub cache: CacheStats,
    /// Wall-clock time for the whole batch, microseconds.
    pub wall_micros: u128,
}

impl BatchStats {
    /// Batch throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall_micros == 0 {
            return 0.0;
        }
        self.queries as f64 * 1e6 / self.wall_micros as f64
    }

    /// Forward runs the cache avoided (its hit count).
    pub fn forward_runs_saved(&self) -> u64 {
        self.cache.hits
    }
}

impl std::fmt::Display for BatchStats {
    /// One-line summary: `32 queries, jobs=8: 41.2 q/s, cache 57/89 hits
    /// (64.0%), 57 forward runs saved`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries, jobs={}: {:.1} q/s, cache {}, {} forward runs saved",
            self.queries,
            self.jobs,
            self.queries_per_sec(),
            self.cache,
            self.forward_runs_saved(),
        )
    }
}

/// A shared, thread-safe memo table for forward (RHS) runs.
///
/// Keys are solver model assignments over the client's parameter atoms —
/// the canonical encoding of the abstraction parameter; the client and
/// program are fixed per cache, completing the `(client, param, program)`
/// key the batch scheduler needs. Values are [`RhsResult`]s behind
/// [`Arc`], so concurrent queries share one tabulation.
///
/// Each slot is a [`OnceLock`]: when several workers want the same
/// not-yet-computed run, one executes it and the rest block on the slot
/// rather than duplicating the work.
pub struct ForwardCache<'p, S> {
    slots: Mutex<HashMap<Vec<bool>, Arc<Slot<'p, S>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

type Slot<'p, S> = OnceLock<Result<Arc<RhsResult<'p, S>>, TooBig>>;

impl<'p, S> ForwardCache<'p, S> {
    /// An empty cache.
    pub fn new() -> Self {
        ForwardCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The memoized forward run for `assignment`, executing `compute` at
    /// most once per assignment across all threads. Counts a miss for the
    /// caller that ran `compute` (or blocked on the winner of a race) and
    /// a hit for everyone who found the slot already filled.
    pub fn forward(
        &self,
        assignment: &[bool],
        compute: impl FnOnce() -> Result<RhsResult<'p, S>, TooBig>,
    ) -> Result<Arc<RhsResult<'p, S>>, TooBig> {
        let slot = {
            let mut slots = self.slots.lock().expect("forward-cache map poisoned");
            match slots.get(assignment) {
                Some(s) => Arc::clone(s),
                None => {
                    let s = Arc::new(Slot::new());
                    slots.insert(assignment.to_vec(), Arc::clone(&s));
                    s
                }
            }
        };
        if let Some(done) = slot.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return done.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        slot.get_or_init(|| compute().map(Arc::new)).clone()
    }
}

impl<'p, S> Default for ForwardCache<'p, S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolves every query of one program, in parallel, sharing forward runs.
///
/// With `jobs == 1` this is exactly `queries.iter().map(solve_query)` —
/// the sequential driver, unchanged. With `jobs > 1` the queries are
/// claimed from a shared counter by `min(jobs, queries.len())` scoped
/// worker threads, and every CEGAR iteration's forward analysis goes
/// through one [`ForwardCache`]. Results come back in query order, and
/// per-query outcomes, costs, and iteration counts are identical to the
/// sequential run (see the module docs for the determinism argument);
/// only the per-query `micros` fields and the batch wall time vary.
pub fn solve_queries_batch<'p, C>(
    program: &'p Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    config: &BatchConfig,
) -> (Vec<QueryResult<C::Param>>, BatchStats)
where
    C: TracerClient + Sync,
    C::Param: Send,
    C::State: Send + Sync,
    C::Prim: Sync,
{
    let start = Instant::now();
    let jobs = config.jobs.max(1).min(queries.len().max(1));
    if jobs == 1 {
        let results: Vec<_> = queries
            .iter()
            .map(|q| solve_query(program, &|c| callees(c), client, q, &config.tracer))
            .collect();
        let stats = BatchStats {
            queries: queries.len(),
            jobs,
            cache: CacheStats::default(),
            wall_micros: start.elapsed().as_micros(),
        };
        return (results, stats);
    }

    let cache: ForwardCache<'p, C::State> = ForwardCache::new();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<QueryResult<C::Param>>>> =
        queries.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let r =
                    solve_query_cached(program, callees, client, &queries[i], &config.tracer, &cache);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    let results: Vec<_> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed query was resolved")
        })
        .collect();
    let stats = BatchStats {
        queries: queries.len(),
        jobs,
        cache: cache.stats(),
        wall_micros: start.elapsed().as_micros(),
    };
    (results, stats)
}

/// [`solve_query`] with its forward analyses routed through `cache`.
///
/// Mirrors [`crate::tracer::step`]'s CEGAR iteration exactly; the only
/// difference is where the [`RhsResult`] comes from. Within one query's
/// loop every iteration tries a *different* assignment (the previous one
/// was just proven unviable), so the cache only ever pays off *across*
/// queries — which is exactly the sharing the batch scheduler is for.
pub fn solve_query_cached<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    cache: &ForwardCache<'p, C::State>,
) -> QueryResult<C::Param> {
    let start = Instant::now();
    let mut constraints: Vec<PFormula> = Vec::new();
    let mut iterations = 0;
    let outcome = loop {
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        match step_cached(program, callees, client, query, config, &mut constraints, cache) {
            StepResult::Proven { param, cost } => {
                iterations += 1;
                break Outcome::Proven { param, cost };
            }
            StepResult::Impossible => break Outcome::Impossible,
            StepResult::Refined { .. } => iterations += 1,
            StepResult::Unresolved(u) => {
                iterations += 1;
                break Outcome::Unresolved(u);
            }
        }
    };
    QueryResult { outcome, iterations, micros: start.elapsed().as_micros() }
}

/// One CEGAR iteration with the forward run served by `cache`.
#[allow(clippy::too_many_arguments)]
fn step_cached<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    constraints: &mut Vec<PFormula>,
    cache: &ForwardCache<'p, C::State>,
) -> StepResult<C::Param> {
    let n = client.n_atoms();
    let costs = (0..n).map(|i| client.atom_cost(i)).collect();
    let mut solver = MinCostSolver::new(n, costs);
    for c in constraints.iter() {
        solver.require(c.clone());
    }
    let Some(model) = solver.solve() else {
        return StepResult::Impossible;
    };
    let p = client.param_of_model(&model.assignment);
    let d0 = client.initial_state();

    let run = match cache.forward(&model.assignment, || {
        rhs::run(
            program,
            &crate::client::AsAnalysis(client),
            &p,
            d0.clone(),
            callees,
            config.rhs_limits,
        )
    }) {
        Ok(r) => r,
        Err(_) => return StepResult::Unresolved(Unresolved::AnalysisTooBig),
    };

    let failing = |d: &C::State| query.not_q.holds(&p, d);
    let Some(trace) = run.witness(query.point, &failing) else {
        return StepResult::Proven { param: p, cost: model.cost };
    };
    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();

    let dnf = match analyze_trace(&AsMeta(client), &p, &d0, &atoms, &query.not_q, &config.beam) {
        Ok(f) => f,
        Err(e) => return StepResult::Unresolved(Unresolved::MetaFailure(e.to_string())),
    };
    let phi = restrict(&dnf, &d0);
    debug_assert!(
        phi.eval(&model.assignment),
        "backward analysis failed to eliminate the current abstraction (Theorem 3.1)"
    );
    constraints.push(PFormula::not(phi));
    StepResult::Refined { param: p, cost: model.cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use pda_analysis::PointsTo;

    fn fixture() -> (pda_lang::Program, PointsTo) {
        let program = pda_lang::parse_program(
            r#"
            fn id(a) { return a; }
            fn main() {
                var x, y, z;
                x = null;
                z = x;
                while (*) { y = id(x); }
                y = x;
                query q1: local y;
                query q2: local z;
                query q3: local x;
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        (program, pa)
    }

    fn queries(
        program: &pda_lang::Program,
        client: &NullClient,
    ) -> Vec<Query<crate::nullcli::NullPrim>> {
        ["q1", "q2", "q3"]
            .iter()
            .map(|l| client.query(program, program.query_by_label(l).unwrap()))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_and_hits_cache() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let seq = BatchConfig { jobs: 1, ..BatchConfig::default() };
        let par = BatchConfig { jobs: 4, ..BatchConfig::default() };
        let (r1, s1) = solve_queries_batch(&program, &callees, &client, &qs, &seq);
        let (r4, s4) = solve_queries_batch(&program, &callees, &client, &qs, &par);
        assert_eq!(s1.queries, 3);
        assert_eq!(s1.cache.lookups(), 0, "jobs=1 must not touch the cache");
        for (a, b) in r1.iter().zip(&r4) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.iterations, b.iterations);
        }
        // Every query's loop starts from the same (empty) assignment, so
        // at least two of the three first iterations must hit the cache.
        assert!(s4.cache.hits >= 2, "expected cross-query sharing, got {}", s4.cache);
        assert_eq!(
            s4.cache.lookups() as usize,
            r4.iter().map(|r| r.iterations).sum::<usize>(),
            "every CEGAR iteration does exactly one forward lookup"
        );
    }

    #[test]
    fn forward_cache_memoizes_and_counts() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let cache: ForwardCache<'_, _> = ForwardCache::new();
        let assignment = vec![false; client.n_atoms()];
        let p = client.param_of_model(&assignment);
        let mut runs = 0;
        for _ in 0..3 {
            let r = cache
                .forward(&assignment, || {
                    runs += 1;
                    rhs::run(
                        &program,
                        &crate::client::AsAnalysis(&client),
                        &p,
                        client.initial_state(),
                        &callees,
                        pda_dataflow::RhsLimits::default(),
                    )
                })
                .unwrap();
            assert!(r.n_facts() > 0);
        }
        assert_eq!(runs, 1, "compute must execute once per assignment");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let (r, s) =
            solve_queries_batch(&program, &callees, &client, &[], &BatchConfig::default());
        assert!(r.is_empty());
        assert_eq!(s.queries, 0);
    }
}
