//! Batch query scheduler: all of a program's queries through TRACER on a
//! worker pool, with a shared forward-run cache and a fault-isolation
//! boundary per query.
//!
//! The paper evaluates TRACER one *suite program* at a time, but each
//! program carries dozens to thousands of queries, and every query's
//! CEGAR loop (Algorithm 1) re-runs the forward analysis for each
//! candidate abstraction it tries. Distinct queries over the same client
//! frequently try the *same* candidate abstractions — every query starts
//! from the empty abstraction, and cheap refinements recur — so their
//! forward runs are identical and redundant.
//!
//! [`solve_queries_batch`] exploits that: it schedules the per-query
//! CEGAR loops across a [`std::thread::scope`] worker pool
//! ([`BatchConfig::jobs`] workers) and routes every forward analysis
//! through a [`ForwardCache`] shared by the whole batch. A forward run is
//! fully determined by the `(client, abstraction parameter, program,
//! fact budget)` tuple; within one batch the client and program are
//! fixed, so the cache keys on the remaining coordinates — the solver
//! model assignment the parameter was decoded from, plus the effective
//! fact budget (escalated retries run under bigger budgets and must not
//! alias the base run). Cache hits skip the RHS tabulation entirely and
//! reuse the memoized [`RhsResult`].
//!
//! # Failure model
//!
//! Each per-query solve runs inside [`std::panic::catch_unwind`]: a
//! panicking client or engine yields [`Unresolved::EngineFault`] for that
//! query and the batch carries on. Wall-clock deadlines (per query via
//! [`TracerConfig::timeout`] / `Query::limits`, whole-batch via
//! [`BatchConfig::batch_timeout`]) surface as
//! [`Unresolved::DeadlineExceeded`]. Neither fault class is ever stored
//! in the cache: a slot whose computation panics is reset so another
//! worker recomputes it, and a deadline-aborted run is returned to its
//! requester only. Cached values are therefore schedule-independent.
//!
//! Determinism: the RHS engine is a deterministic function of its inputs
//! (LIFO worklist, interned state ids, and `witness` resolves ties by
//! minimum `(entry, state)` id), so a cached result is *identical* to the
//! run it replaces and per-query outcomes, costs, and iteration counts do
//! not depend on `jobs` or on scheduling order — including in the
//! presence of faulted sibling queries. `jobs == 1` short-circuits to the
//! sequential [`crate::tracer::solve_query`] loop, bit for bit.
//!
//! This subsumes neither the Section 6 *query groups* optimization
//! ([`crate::groups::solve_queries`]) nor is subsumed by it: groups share
//! one forward run across queries *inside one CEGAR step*, while the
//! batch cache shares runs across *independent* per-query loops (and
//! across groups, were the two composed).

use crate::client::{Query, TracerClient};
use crate::tracer::{
    backward_phase, effective_deadline, effective_mem_budget, solve_query_pooled, Governor,
    Outcome, QueryObs, QueryResult, StepResult, TracerConfig, Unresolved, ViableState,
};
use pda_dataflow::{rhs, Interrupt, RhsLimits, RhsResult, TooBig};
use pda_lang::{CallId, MethodId, Program};
use pda_meta::{InternCache, MetaStats, WarmStore};
use pda_solver::PFormula;
use pda_util::{
    fault_point, faultplane, fnv1a, CacheStats, Counter, Deadline, Event, MemBudget, ObsRegistry,
    Span, SpanKind, SplitMix64, StripedLock, TraceSink,
};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Deterministic retry-with-backoff for transient per-query faults.
///
/// A query that resolves as [`Unresolved::EngineFault`] (an isolated
/// panic) — or, when [`RetryPolicy::retry_deadline`] is set, as
/// [`Unresolved::DeadlineExceeded`] — is re-solved from scratch up to
/// [`RetryPolicy::retries`] times, sleeping an exponentially growing,
/// jittered delay between attempts. The jitter is drawn from
/// [`SplitMix64`] seeded by `(seed, query index, attempt)`, so the whole
/// retry schedule is a pure function of the policy and the query: two
/// runs of the same batch back off identically, which keeps faulted runs
/// reproducible and diffable.
///
/// One-shot injected faults (see [`crate::faultcli`]) are the model
/// transient: the first attempt springs the trap, the retry solves
/// healthily. Deterministic failures (a client that panics on every
/// evaluation) burn all retries and surface exactly as without a policy,
/// with [`QueryResult::retries`] recording the wasted attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retry attempts per query (0 = fail fast, the default).
    pub retries: u32,
    /// Base backoff delay; attempt `a` sleeps `base * 2^a` plus jitter
    /// in `[0, base)`.
    pub base_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Also retry [`Unresolved::DeadlineExceeded`]. Off for batch runs
    /// (a batch deadline abort is not transient — retrying it would just
    /// re-starve); the analysis daemon turns it on because each request
    /// attempt gets a fresh deadline window.
    pub retry_deadline: bool,
}

impl RetryPolicy {
    /// The standard ladder: `retries` attempts, 5 ms base delay, a fixed
    /// seed, engine faults only.
    pub fn deterministic(retries: u32) -> Self {
        RetryPolicy {
            retries,
            base_delay: Duration::from_millis(5),
            seed: 0x0005_EED0_FBAC_C0FF,
            retry_deadline: false,
        }
    }

    /// Whether `u` is a transient fault under this policy.
    pub fn should_retry(&self, u: &Unresolved) -> bool {
        match u {
            Unresolved::EngineFault(_) => true,
            Unresolved::DeadlineExceeded => self.retry_deadline,
            _ => false,
        }
    }

    /// The deterministic backoff before retry `attempt` of `query`:
    /// `base * 2^attempt` plus SplitMix64 jitter in `[0, base)`.
    pub fn backoff(&self, query: u64, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(10));
        let base_us = self.base_delay.as_micros() as u64;
        if base_us == 0 {
            return exp;
        }
        let mut rng =
            SplitMix64::new(self.seed ^ query.rotate_left(17) ^ (u64::from(attempt) << 56));
        exp + Duration::from_micros(rng.next_u64() % base_us)
    }
}

/// Per-worker effort attribution for one batch run (`jobs > 1`; the
/// sequential driver reports a single entry). Entries are in worker
/// *completion* order — attribution data, not a schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMeta {
    /// Queries this worker claimed and solved (drained claims excluded).
    pub queries: u64,
    /// Backward/meta-phase wall time attributed to this worker, µs.
    pub meta_micros: u64,
    /// Total wall time this worker spent solving (claim to finish), µs.
    pub busy_micros: u64,
    /// Microseconds this worker spent blocked on shared-structure locks:
    /// contended [`ForwardCache`] shard acquisitions for its queries plus
    /// admission-turnstile waits. Zero when `jobs == 1` (no shared
    /// structures).
    pub lock_wait_micros: u64,
}

/// Configuration of a batch run.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Per-query TRACER configuration.
    pub tracer: TracerConfig,
    /// Requested worker parallelism. `1` reproduces the sequential
    /// driver exactly (no cache, no pool); `0` is treated as `1`. Any
    /// value `> 1` selects the shared-cache parallel path, but the
    /// number of threads actually spawned is additionally clamped to the
    /// machine's available parallelism — oversubscribing a core count
    /// only time-shares the CEGAR loops and inflates per-phase
    /// wall-clock attribution without finishing any sooner. The default
    /// is the machine's available parallelism. See
    /// [`BatchConfig::thread_cap`] to override the clamp.
    pub jobs: usize,
    /// Upper bound on *spawned* worker threads. `None` (the default)
    /// clamps to the machine's available parallelism. `Some(n)` replaces
    /// that clamp — used by tests that exercise genuine worker
    /// concurrency (admission shedding, cache races) on small machines,
    /// and available to callers who want deliberate oversubscription.
    /// The effective thread count is always `<= jobs`.
    pub thread_cap: Option<usize>,
    /// Wall-clock budget for the *whole batch*: queries still running (or
    /// not yet started) when it expires resolve as
    /// [`Unresolved::DeadlineExceeded`]. `None` (default) = unbounded.
    pub batch_timeout: Option<Duration>,
    /// Enables span wall-clock timing in the per-query registries (the
    /// CLI's `--metrics`). Off by default: counters and events are always
    /// collected, but no extra clock reads happen on the hot path.
    pub timed: bool,
    /// Shared memory pool for the whole batch, in estimated bytes
    /// (`--pool-budget`). Every query's charges cascade into the pool,
    /// and the scheduler *admits* queries against it: a query whose
    /// reservation (its own `mem_budget`, or the whole pool if it has
    /// none) does not currently fit is deferred and requeued — never
    /// failed — until running queries release capacity; a reservation
    /// that can never fit resolves as
    /// [`Unresolved::MemBudgetExceeded`] without running. Pool pressure
    /// only gates *starting* queries; it never degrades a running one,
    /// so per-query behavior stays schedule-independent. `None`
    /// (default) disables admission control entirely.
    pub pool_budget: Option<u64>,
    /// Transient-fault retry ladder (`--retry-faults`). `None` (default)
    /// fails fast, preserving the historical batch behavior exactly.
    pub retry: Option<RetryPolicy>,
    /// Cooperative drain flag. When set to `true` (by a signal handler or
    /// service supervisor), workers stop *claiming* queries: in-flight
    /// solves finish normally, unstarted queries resolve as
    /// [`Unresolved::Drained`] and are **not** offered to the streaming
    /// `sink` — so a checkpoint journal written through the sink contains
    /// only genuinely finished queries and a resumed run re-solves the
    /// drained ones from scratch, reproducing the uninterrupted outcomes.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            tracer: TracerConfig::default(),
            jobs: default_jobs(),
            thread_cap: None,
            batch_timeout: None,
            timed: false,
            pool_budget: None,
            retry: None,
            cancel: None,
        }
    }
}

/// The machine's available parallelism (the `--jobs` default), `1` if
/// unknown.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Effort accounting for one batch, surfaced by the experiment binaries.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Queries scheduled.
    pub queries: usize,
    /// Requested worker parallelism (clamped to the query count; the
    /// spawned thread count is further clamped to available
    /// parallelism — see [`WorkerMeta`] for per-thread attribution).
    pub jobs: usize,
    /// Forward-run cache hits/misses (`misses` = RHS runs executed;
    /// `hits` = RHS runs saved). All-zero when `jobs == 1` (no cache).
    pub cache: CacheStats,
    /// Wall-clock time for the whole batch, microseconds.
    pub wall_micros: u128,
    /// Queries that resolved as [`Unresolved::EngineFault`] (isolated
    /// panics).
    pub engine_faults: usize,
    /// Queries that resolved as [`Unresolved::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Fact-budget escalation retries consumed across all queries.
    pub escalations: u64,
    /// Queries skipped because a checkpoint already held their result.
    pub resumed: usize,
    /// Memory-governor degradation-ladder rungs applied across all
    /// queries.
    pub degradations: u64,
    /// Admissions deferred (shed-and-requeued) by pool pressure. Zero
    /// unless [`BatchConfig::pool_budget`] is set.
    pub shed: u64,
    /// Transient-fault retry attempts consumed across all queries. Zero
    /// unless [`BatchConfig::retry`] is set.
    pub retries: u64,
    /// Total microseconds workers spent blocked on shared-structure
    /// locks: contended [`ForwardCache`] shard acquisitions, admission
    /// turnstile waits, and warm meta-store shard waits. Rendered as
    /// `contention=` in the footer. Zero when `jobs == 1`.
    pub contention_micros: u64,
    /// Faults the deterministic fault plane fired during this batch (the
    /// delta of [`pda_util::faultplane::faults_injected`] across the
    /// run). Zero unless a `--fault-plan`/`PDA_FAULT_PLAN` plan is armed.
    pub faults_injected: u64,
    /// I/O-class injected faults during this batch (subset of
    /// [`BatchStats::faults_injected`]).
    pub io_faults: u64,
    /// Non-cooperative stalls reclaimed by the serve watchdog. Always
    /// zero for plain batch runs; the analysis daemon's supervisor fills
    /// it in for its own footers/health reply.
    pub watchdog_fired: u64,
    /// Per-worker effort attribution, in worker completion order (one
    /// entry per worker that ran; a single entry when `jobs == 1`). Not
    /// part of the rendered footer — the bench emits it as JSON.
    pub worker_meta: Vec<WorkerMeta>,
    /// Backward/meta-phase counters summed over all queries (including
    /// checkpoint-restored ones, whose counters were persisted).
    pub meta: MetaStats,
    /// Merged per-query observability registries: spans, solver nodes,
    /// and kernel counters for queries solved *in this run* (resumed
    /// queries contribute to [`BatchStats::meta`] only).
    pub obs: ObsRegistry,
}

impl BatchStats {
    /// Batch throughput in queries per second. An instant (sub-µs) batch
    /// is accounted as one microsecond rather than reporting `0.0 q/s`,
    /// which reads as a hang.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 * 1e6 / self.wall_micros.max(1) as f64
    }

    /// Forward runs the cache avoided (its hit count).
    pub fn forward_runs_saved(&self) -> u64 {
        self.cache.hits
    }

    /// The whole batch as one [`ObsRegistry`] snapshot: the merged
    /// per-query registry with the batch-level scalars (query/job counts,
    /// wall time, cache and fault counters) and the authoritative
    /// [`BatchStats::meta`] counters (which include resumed queries)
    /// written over the top. [`ObsRegistry::render`] on the result is the
    /// driver footer.
    pub fn to_obs(&self) -> ObsRegistry {
        let mut reg = self.obs.clone();
        reg.set(Counter::Queries, self.queries as u64);
        reg.set(Counter::Jobs, self.jobs as u64);
        reg.set(Counter::WallMicros, self.wall_micros as u64);
        reg.set(Counter::CacheHits, self.cache.hits);
        reg.set(Counter::CacheMisses, self.cache.misses);
        reg.set(Counter::EngineFaults, self.engine_faults as u64);
        reg.set(Counter::DeadlineExceeded, self.deadline_exceeded as u64);
        reg.set(Counter::Escalations, self.escalations);
        reg.set(Counter::Retries, self.retries);
        reg.set(Counter::Resumed, self.resumed as u64);
        reg.set(Counter::Degradations, self.degradations);
        reg.set(Counter::Shed, self.shed);
        reg.set(Counter::LockWaitMicros, self.contention_micros);
        reg.set(Counter::FaultsInjected, self.faults_injected);
        reg.set(Counter::IoFaults, self.io_faults);
        reg.set(Counter::WatchdogFired, self.watchdog_fired);
        reg.set(Counter::CubesBuilt, self.meta.cubes_built);
        reg.set(Counter::SubsumptionChecks, self.meta.subsumption_checks);
        reg.set(Counter::SubsumptionFastRejects, self.meta.subsumption_fast_rejects);
        reg.set(Counter::WpHits, self.meta.wp_hits);
        reg.set(Counter::WpMisses, self.meta.wp_misses);
        reg.set(Counter::ApproxDrops, self.meta.approx_drops);
        reg.set(Counter::MemEvictions, self.meta.mem_evictions);
        reg.set(Counter::MetaMicros, self.meta.micros);
        reg
    }
}

impl std::fmt::Display for BatchStats {
    /// Two-line summary: `32 queries, jobs=8: 41.2 q/s, cache 57/89 hits
    /// (64.0%), 57 forward runs saved, faults=0 deadlines=0 escalations=0
    /// resumed=0` followed by the [`MetaStats`] footer line — rendered by
    /// [`ObsRegistry::render`], the shared footer formatter.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_obs().render())
    }
}

/// A shared, thread-safe memo table for forward (RHS) runs.
///
/// Keys are `(solver model assignment, fact budget)` pairs — the
/// canonical encoding of the abstraction parameter plus the budget the
/// run was attempted under (escalated retries use larger budgets and may
/// legitimately succeed where the base budget returned [`TooBig`]); the
/// client and program are fixed per cache, completing the key the batch
/// scheduler needs. Values are [`RhsResult`]s behind [`Arc`], so
/// concurrent queries share one tabulation.
///
/// Each slot is a small `Mutex`+`Condvar` state machine rather than a
/// `OnceLock`, because two outcomes must **not** be memoized:
///
/// * a computation that *panics* (fault-injected clients) resets its slot
///   so another worker retries instead of deadlocking the waiters;
/// * a run aborted by the computing query's *deadline* is returned to
///   that query only — caching it would poison healthy queries with a
///   schedule-dependent result.
///
/// Deterministic outcomes (`Ok` runs and fact-budget [`TooBig`]) are
/// cached; waiters poll their own deadline while blocked, so a slow
/// computation never pins a sibling query past its budget.
///
/// The slot map is lock-striped ([`StripedLock`],
/// [`FORWARD_CACHE_SHARDS`] shards) keyed by an [`fnv1a`] hash of the
/// assignment bits and fact budget, so workers looking up *distinct*
/// assignments never serialize on one map mutex; only the per-slot state
/// machine synchronizes same-key callers. The hash is deterministic
/// (FNV-1a, not the per-process-seeded std hasher), so shard assignment
/// — and therefore the contention profile — is reproducible run to run.
pub struct ForwardCache<'p, S> {
    #[allow(clippy::type_complexity)]
    slots: StripedLock<HashMap<(Vec<bool>, usize), Arc<Slot<'p, S>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Shard count for the [`ForwardCache`] slot map. 16 shards keep the
/// expected collision probability for a handful of workers low while the
/// per-shard maps stay dense enough to be cheap.
const FORWARD_CACHE_SHARDS: usize = 16;

/// Deterministic shard hash for a forward-cache key.
fn slot_hash(assignment: &[bool], max_facts: usize) -> u64 {
    let mut bytes: Vec<u8> = Vec::with_capacity(assignment.len() + 8);
    bytes.extend(assignment.iter().map(|&b| u8::from(b)));
    bytes.extend_from_slice(&(max_facts as u64).to_le_bytes());
    fnv1a(&bytes)
}

struct Slot<'p, S> {
    state: Mutex<SlotState<'p, S>>,
    ready: Condvar,
}

enum SlotState<'p, S> {
    /// Nobody is computing this run (initially, or after a computer
    /// panicked / hit its deadline).
    Empty,
    /// Some worker is computing; wait on `ready`.
    Running,
    /// Memoized outcome.
    Done(Result<Arc<RhsResult<'p, S>>, TooBig>),
}

/// Resets a slot to `Empty` if its computation unwinds, so waiting
/// workers retry instead of blocking forever.
struct SlotGuard<'s, 'p, S> {
    slot: &'s Slot<'p, S>,
    armed: bool,
}

impl<S> Drop for SlotGuard<'_, '_, S> {
    fn drop(&mut self) {
        if self.armed {
            *self.slot.state.lock().expect("forward-cache slot poisoned") = SlotState::Empty;
            self.slot.ready.notify_all();
        }
    }
}

impl<'p, S> ForwardCache<'p, S> {
    /// An empty cache.
    pub fn new() -> Self {
        ForwardCache {
            slots: StripedLock::new(FORWARD_CACHE_SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The memoized forward run for `assignment` under `max_facts`,
    /// executing `compute` at most once per key across all threads
    /// (barring panics or deadline aborts, which release the key for a
    /// retry). Counts one miss for the caller that ran `compute` (or
    /// blocked on the winner of a race) and one hit for a caller that
    /// found the slot already filled.
    ///
    /// `deadline` bounds *waiting* as well as computing: a caller whose
    /// deadline expires while a sibling computes gives up with
    /// [`Interrupt::DeadlineExceeded`] without disturbing the slot.
    ///
    /// Contended waits for the slot-map shard are metered into
    /// `lock_waits` (microseconds); the uncontended path reads no clock.
    /// Waits on a *running* sibling's computation are deliberately not
    /// metered — those are productive deduplication, not contention.
    ///
    /// # Errors
    ///
    /// [`Interrupt::TooBig`] (memoized — deterministic for the key) or
    /// [`Interrupt::DeadlineExceeded`] (never memoized).
    pub fn forward(
        &self,
        assignment: &[bool],
        max_facts: usize,
        deadline: Deadline,
        lock_waits: &AtomicU64,
        compute: impl FnOnce() -> Result<RhsResult<'p, S>, Interrupt>,
    ) -> Result<Arc<RhsResult<'p, S>>, Interrupt> {
        let slot = {
            let mut slots = self.slots.lock(slot_hash(assignment, max_facts), lock_waits);
            Arc::clone(
                slots
                    .entry((assignment.to_vec(), max_facts))
                    .or_insert_with(|| {
                        Arc::new(Slot { state: Mutex::new(SlotState::Empty), ready: Condvar::new() })
                    }),
            )
        };
        let mut counted = false;
        loop {
            let mut st = slot.state.lock().expect("forward-cache slot poisoned");
            match &*st {
                SlotState::Done(r) => {
                    if !counted {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return r.clone().map_err(Interrupt::TooBig);
                }
                SlotState::Empty => {
                    *st = SlotState::Running;
                    if !counted {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(st);
                    break;
                }
                SlotState::Running => {
                    if !counted {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        counted = true;
                    }
                    if deadline.expired() {
                        return Err(Interrupt::DeadlineExceeded);
                    }
                    // Re-checks the state on every wakeup; `notify_all`
                    // fires on every slot transition, so no wakeup is
                    // missed. The timeout only serves the waiter's own
                    // deadline.
                    let waited = match deadline.remaining() {
                        None => slot.ready.wait(st).expect("forward-cache slot poisoned"),
                        Some(rem) => {
                            slot.ready
                                .wait_timeout(st, rem)
                                .expect("forward-cache slot poisoned")
                                .0
                        }
                    };
                    drop(waited);
                    // Fired with no slot lock held: a panic here is
                    // absorbed by the waiter's own isolation boundary and
                    // never disturbs the computing sibling or the slot.
                    fault_point("cache.slot_wait");
                }
            }
        }
        // Compute outside the slot lock; if `compute` unwinds (a
        // fault-injected client panic), the guard re-opens the slot.
        let mut guard = SlotGuard { slot: &slot, armed: true };
        // Under the guard on purpose: an injected panic at the fill seam
        // must re-open the slot exactly like a panicking compute would.
        fault_point("cache.slot_fill");
        let result = compute();
        let mut st = slot.state.lock().expect("forward-cache slot poisoned");
        guard.armed = false;
        let out = match result {
            Ok(run) => {
                let run = Arc::new(run);
                *st = SlotState::Done(Ok(Arc::clone(&run)));
                Ok(run)
            }
            Err(Interrupt::TooBig(e)) => {
                *st = SlotState::Done(Err(e));
                Err(Interrupt::TooBig(e))
            }
            Err(Interrupt::DeadlineExceeded) => {
                // Not this slot's fault: release it for a retry by a
                // query with a healthier deadline.
                *st = SlotState::Empty;
                Err(Interrupt::DeadlineExceeded)
            }
        };
        drop(st);
        slot.ready.notify_all();
        out
    }
}

impl<'p, S> Default for ForwardCache<'p, S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Extracts a displayable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A result for a query whose solve panicked: the batch completes, the
/// payload is preserved, no effort is attributed.
fn fault_result<Param>(payload: Box<dyn std::any::Any + Send>, started: Instant) -> QueryResult<Param> {
    QueryResult {
        outcome: Outcome::Unresolved(Unresolved::EngineFault(panic_message(payload.as_ref()))),
        iterations: 0,
        micros: started.elapsed().as_micros(),
        escalations: 0,
        degradations: 0,
        retries: 0,
        meta: MetaStats::default(),
    }
}

/// A result for a query the drain flag stopped before it started: no
/// effort spent, nothing to persist (the batch runner withholds drained
/// results from the streaming sink so resumed runs re-solve them).
fn drained_result<Param>() -> QueryResult<Param> {
    QueryResult {
        outcome: Outcome::Unresolved(Unresolved::Drained),
        iterations: 0,
        micros: 0,
        escalations: 0,
        degradations: 0,
        retries: 0,
        meta: MetaStats::default(),
    }
}

/// A result for a query whose memory reservation exceeds the shared pool
/// outright: it can never be admitted, so it resolves without running
/// (and without touching the forward cache).
fn overcommit_result<Param>(started: Instant) -> QueryResult<Param> {
    QueryResult {
        outcome: Outcome::Unresolved(Unresolved::MemBudgetExceeded),
        iterations: 0,
        micros: started.elapsed().as_micros(),
        escalations: 0,
        degradations: 0,
        retries: 0,
        meta: MetaStats::default(),
    }
}

/// The bytes a query reserves against the shared pool for admission: its
/// own effective budget if it has one, else the whole pool (a query with
/// no budget of its own could grow arbitrarily, so the scheduler must
/// assume the worst).
fn reservation<P>(query: &Query<P>, tracer: &TracerConfig, pool_limit: u64) -> u64 {
    effective_mem_budget(query, tracer).unwrap_or(pool_limit)
}

/// Resolves every query of one program, in parallel, sharing forward runs.
///
/// With `jobs == 1` this is exactly `queries.iter().map(solve_query)` —
/// the sequential driver — except that each solve is panic-isolated. With
/// `jobs > 1` the queries are claimed from a shared counter by
/// `min(jobs, queries.len())` scoped worker threads, and every CEGAR
/// iteration's forward analysis goes through one [`ForwardCache`].
/// Results come back in query order, and per-query outcomes, costs, and
/// iteration counts are identical to the sequential run (see the module
/// docs for the determinism argument); only the per-query `micros` fields
/// and the batch wall time vary.
///
/// The batch always completes: a panicking solve yields
/// [`Unresolved::EngineFault`] for that query only, and deadline expiry
/// ([`TracerConfig::timeout`], `Query::limits.timeout`, or
/// [`BatchConfig::batch_timeout`]) yields
/// [`Unresolved::DeadlineExceeded`].
pub fn solve_queries_batch<C>(
    program: &Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    config: &BatchConfig,
) -> (Vec<QueryResult<C::Param>>, BatchStats)
where
    C: TracerClient + Sync,
    C::Param: Send,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    run_batch(program, callees, client, queries, config, HashMap::new(), None, None)
}

/// [`solve_queries_batch`] with a structured trace: per-iteration
/// [`Event`]s are buffered per query and drained to `trace` in query-index
/// order once the batch completes, followed by one
/// [`Event::QueryResolved`] per query (including faulted, timed-out, and
/// checkpoint-resumed ones). Because the events carry no wall-clock or
/// cache data and the per-query loops are schedule-independent, the
/// emitted stream is byte-identical across `jobs` values.
pub fn solve_queries_batch_traced<C>(
    program: &Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    config: &BatchConfig,
    trace: Option<&dyn TraceSink>,
) -> (Vec<QueryResult<C::Param>>, BatchStats)
where
    C: TracerClient + Sync,
    C::Param: Send,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    run_batch(program, callees, client, queries, config, HashMap::new(), None, trace)
}

/// The `query_resolved` event's outcome tag — the same vocabulary as the
/// checkpoint codec in [`crate::resilience`].
pub fn outcome_tag<Param>(outcome: &Outcome<Param>) -> &'static str {
    match outcome {
        Outcome::Proven { .. } => "proven",
        Outcome::Impossible => "impossible",
        Outcome::Unresolved(Unresolved::IterationBudget) => "iteration_budget",
        Outcome::Unresolved(Unresolved::AnalysisTooBig) => "too_big",
        Outcome::Unresolved(Unresolved::MetaFailure(_)) => "meta_failure",
        Outcome::Unresolved(Unresolved::DeadlineExceeded) => "deadline",
        Outcome::Unresolved(Unresolved::EngineFault(_)) => "engine_fault",
        Outcome::Unresolved(Unresolved::MemBudgetExceeded) => "mem_budget",
        Outcome::Unresolved(Unresolved::Drained) => "drained",
    }
}

/// Admission-control bookkeeping for the pool-budget worker loop: the
/// queue of not-yet-started `pending` indices (deferred queries re-enter
/// at the back) and the number of queries currently admitted.
struct AdmissionState {
    queue: VecDeque<usize>,
    active: usize,
}

/// What a pool-budget worker decided for the claim it popped.
enum Claim {
    /// Admitted (the worker incremented `active`): run it.
    Run,
    /// Reservation can never fit the pool: resolve without running.
    Reject,
    /// Drain flag raised: resolve as [`Unresolved::Drained`].
    Drain,
}

/// Runs one query inside the supervision boundary: panic isolation plus
/// the optional deterministic retry ladder. Every attempt gets a *fresh*
/// [`QueryObs`], so a recovered transient fault leaves no event residue
/// and the emitted trace stream stays invariant across job counts and
/// retry settings. Backoff sleeps between attempts; the ladder stops
/// early when the batch deadline expires or the drain flag is raised
/// (the current attempt's result stands). [`QueryResult::retries`]
/// records the attempts consumed, successful or not.
fn solve_supervised<Param>(
    i: usize,
    tracing: bool,
    timed: bool,
    retry: Option<&RetryPolicy>,
    batch_deadline: Deadline,
    cancel: Option<&Arc<AtomicBool>>,
    mut attempt_fn: impl FnMut(&mut QueryObs) -> QueryResult<Param>,
) -> (QueryResult<Param>, QueryObs) {
    let mut attempt: u32 = 0;
    loop {
        let started = Instant::now();
        let mut qobs = QueryObs::new(i as u64, tracing, timed);
        let mut r = catch_unwind(AssertUnwindSafe(|| attempt_fn(&mut qobs)))
            .unwrap_or_else(|payload| fault_result(payload, started));
        r.retries = attempt;
        let transient = match (&r.outcome, retry) {
            (Outcome::Unresolved(u), Some(p)) => p.should_retry(u),
            _ => false,
        };
        let more = retry.is_some_and(|p| attempt < p.retries);
        let stopped = batch_deadline.expired()
            || cancel.is_some_and(|c| c.load(Ordering::SeqCst));
        if transient && more && !stopped {
            let policy = retry.expect("transient fault implies a policy");
            std::thread::sleep(policy.backoff(i as u64, attempt));
            attempt += 1;
            continue;
        }
        return (r, qobs);
    }
}

/// The shared batch runner behind [`solve_queries_batch`] and the
/// checkpointing driver in [`crate::resilience`]: `skip` holds results
/// restored from a checkpoint (those queries are not re-run), and `sink`
/// observes each freshly finished `(index, result)` as soon as it exists
/// — the streaming hook the checkpoint writer hangs off. `trace` receives
/// every query's buffered [`Event`]s in query-index order after the batch
/// completes (see [`solve_queries_batch_traced`]).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub(crate) fn run_batch<'p, C>(
    program: &'p Program,
    callees: &(dyn Fn(CallId) -> Vec<MethodId> + Sync),
    client: &C,
    queries: &[Query<C::Prim>],
    config: &BatchConfig,
    skip: HashMap<usize, QueryResult<C::Param>>,
    sink: Option<&(dyn Fn(usize, &QueryResult<C::Param>) + Sync)>,
    trace: Option<&dyn TraceSink>,
) -> (Vec<QueryResult<C::Param>>, BatchStats)
where
    C: TracerClient + Sync,
    C::Param: Send,
    C::State: Send + Sync,
    C::Prim: Send + Sync,
{
    let start = Instant::now();
    let injected_at_start = faultplane::faults_injected();
    let io_at_start = faultplane::io_faults();
    let batch_deadline = Deadline::timeout(config.batch_timeout);
    let tracing = trace.is_some();
    let resumed = skip.len();
    let pending: Vec<usize> = (0..queries.len()).filter(|i| !skip.contains_key(i)).collect();
    let jobs = config.jobs.max(1).min(pending.len().max(1));
    // Requesting more workers than the machine has cores does not finish
    // the batch any sooner — it only time-shares the CEGAR loops, which
    // inflates every per-phase wall-clock attribution (a meta phase that
    // takes 10ms of CPU reads as 80ms of wall when eight threads share
    // one core). The *path* (shared caches, warm store) is still selected
    // by the requested `jobs`; only the thread count is clamped.
    let workers = jobs.min(config.thread_cap.unwrap_or_else(default_jobs)).max(1);

    let mut slots: Vec<Option<(QueryResult<C::Param>, QueryObs)>> =
        (0..queries.len()).map(|_| None).collect();
    for (i, r) in skip {
        slots[i] = Some((r, QueryObs::new(i as u64, false, false)));
    }

    let pool: Option<Arc<MemBudget>> =
        config.pool_budget.map(|l| Arc::new(MemBudget::new(Some(l))));
    let shed = AtomicU64::new(0);
    let worker_meta: Mutex<Vec<WorkerMeta>> = Mutex::new(Vec::new());

    let cache_stats;
    let warm_waits: u64;
    if jobs == 1 {
        cache_stats = CacheStats::default();
        warm_waits = 0;
        // With no batch timeout this is byte-for-byte the sequential
        // driver: `solve_query_within(.., Deadline::NEVER)` *is*
        // `solve_query`, plus the panic-isolation boundary. With a pool,
        // queries run one at a time so admission never defers — the only
        // pool effect is rejecting reservations that can never fit, which
        // is a pure function of the configs and so stays deterministic.
        let mut wm = WorkerMeta::default();
        for &i in &pending {
            if config.cancel.as_ref().is_some_and(|c| c.load(Ordering::SeqCst)) {
                slots[i] = Some((drained_result(), QueryObs::new(i as u64, false, false)));
                continue;
            }
            let claim = Instant::now();
            let rejected = pool.as_ref().is_some_and(|p| {
                let limit = p.limit().unwrap_or(u64::MAX);
                reservation(&queries[i], &config.tracer, limit) > limit
            });
            let (r, qobs) = if rejected {
                (overcommit_result(claim), QueryObs::new(i as u64, tracing, config.timed))
            } else {
                solve_supervised(
                    i,
                    tracing,
                    config.timed,
                    config.retry.as_ref(),
                    batch_deadline,
                    config.cancel.as_ref(),
                    |qobs| {
                        solve_query_pooled(
                            program,
                            &|c| callees(c),
                            client,
                            &queries[i],
                            &config.tracer,
                            batch_deadline,
                            qobs,
                            pool.clone(),
                        )
                    },
                )
            };
            wm.queries += 1;
            wm.meta_micros += r.meta.micros;
            wm.busy_micros += claim.elapsed().as_micros() as u64;
            if let Some(sink) = sink {
                sink(i, &r);
            }
            slots[i] = Some((r, qobs));
        }
        worker_meta.lock().expect("worker meta poisoned").push(wm);
    } else {
        let cache: ForwardCache<'p, C::State> = ForwardCache::new();
        // One warm meta store for the whole batch: weakest-precondition
        // formulas and primitive-pair verdicts are pure functions of
        // their keys, so sharing them across the per-query InternCaches
        // removes repeated work without perturbing any per-query counter
        // or event (see `pda_meta::WarmStore`). `jobs == 1` stays cold —
        // it is the sequential driver, bit for bit, and the honest
        // baseline the parallel path is measured against.
        let warm: Arc<WarmStore<C::Prim>> = Arc::new(WarmStore::new(FORWARD_CACHE_SHARDS));
        #[allow(clippy::type_complexity)]
        let shared: Vec<Mutex<Option<(QueryResult<C::Param>, QueryObs)>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        match &pool {
            None => {
                let next = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        // Crash-class seam: fired on the coordinator,
                        // outside any per-query isolation boundary.
                        fault_point("batch.worker.spawn");
                        scope.spawn(|| {
                            let mut wm = WorkerMeta::default();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= pending.len() {
                                    break;
                                }
                                let i = pending[k];
                                if config
                                    .cancel
                                    .as_ref()
                                    .is_some_and(|c| c.load(Ordering::SeqCst))
                                {
                                    *shared[k].lock().expect("result slot poisoned") = Some((
                                        drained_result(),
                                        QueryObs::new(i as u64, false, false),
                                    ));
                                    continue;
                                }
                                let claim = Instant::now();
                                let (r, qobs) = solve_supervised(
                                    i,
                                    tracing,
                                    config.timed,
                                    config.retry.as_ref(),
                                    batch_deadline,
                                    config.cancel.as_ref(),
                                    |qobs| {
                                        solve_query_cached_pooled(
                                            program,
                                            callees,
                                            client,
                                            &queries[i],
                                            &config.tracer,
                                            &cache,
                                            batch_deadline,
                                            qobs,
                                            None,
                                            Some(Arc::clone(&warm)),
                                        )
                                    },
                                );
                                wm.queries += 1;
                                wm.meta_micros += r.meta.micros;
                                wm.busy_micros += claim.elapsed().as_micros() as u64;
                                wm.lock_wait_micros +=
                                    qobs.reg.get(Counter::LockWaitMicros);
                                if let Some(sink) = sink {
                                    sink(i, &r);
                                }
                                *shared[k].lock().expect("result slot poisoned") =
                                    Some((r, qobs));
                            }
                            // Crash-class seam: a worker dying after its
                            // loop, outside the per-query boundary.
                            fault_point("batch.worker.join");
                            worker_meta.lock().expect("worker meta poisoned").push(wm);
                        });
                    }
                });
            }
            Some(pool) => {
                let limit = pool.limit().unwrap_or(u64::MAX);
                let admission = Mutex::new(AdmissionState {
                    queue: (0..pending.len()).collect::<VecDeque<usize>>(),
                    active: 0,
                });
                let turnstile = Condvar::new();
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        fault_point("batch.worker.spawn");
                        scope.spawn(|| {
                            let mut wm = WorkerMeta::default();
                            loop {
                                // Admission: pop the next fresh-or-deferred
                                // query and start it once its reservation fits
                                // the pool. A query that does not fit is shed
                                // (requeued at the back, never failed) until a
                                // running query releases capacity; when nothing
                                // is running it is admitted regardless, since
                                // waiting could not help and this guarantees
                                // progress. A reservation above the pool limit
                                // itself can never be admitted and resolves
                                // without running. A raised drain flag empties
                                // the queue as [`Unresolved::Drained`] while
                                // admitted queries finish normally.
                                let mut st =
                                    admission.lock().expect("admission queue poisoned");
                                let claimed = loop {
                                    if config
                                        .cancel
                                        .as_ref()
                                        .is_some_and(|c| c.load(Ordering::SeqCst))
                                    {
                                        break st.queue.pop_front().map(|k| (k, Claim::Drain));
                                    }
                                    if let Some(k) = st.queue.pop_front() {
                                        let r = reservation(
                                            &queries[pending[k]],
                                            &config.tracer,
                                            limit,
                                        );
                                        if r > limit {
                                            break Some((k, Claim::Reject));
                                        }
                                        if st.active == 0 || pool.fits(r) {
                                            st.active += 1;
                                            break Some((k, Claim::Run));
                                        }
                                        st.queue.push_back(k);
                                        shed.fetch_add(1, Ordering::Relaxed);
                                    } else if st.active == 0 {
                                        break None;
                                    }
                                    let t0 = Instant::now();
                                    st = turnstile.wait(st).expect("admission queue poisoned");
                                    wm.lock_wait_micros += t0.elapsed().as_micros() as u64;
                                };
                                drop(st);
                                let Some((k, claim)) = claimed else { break };
                                let i = pending[k];
                                let started = Instant::now();
                                let (r, qobs) = match claim {
                                    Claim::Drain => {
                                        (drained_result(), QueryObs::new(i as u64, false, false))
                                    }
                                    Claim::Reject => (
                                        overcommit_result(started),
                                        QueryObs::new(i as u64, tracing, config.timed),
                                    ),
                                    Claim::Run => {
                                        let out = solve_supervised(
                                            i,
                                            tracing,
                                            config.timed,
                                            config.retry.as_ref(),
                                            batch_deadline,
                                            config.cancel.as_ref(),
                                            |qobs| {
                                                solve_query_cached_pooled(
                                                    program,
                                                    callees,
                                                    client,
                                                    &queries[i],
                                                    &config.tracer,
                                                    &cache,
                                                    batch_deadline,
                                                    qobs,
                                                    Some(Arc::clone(pool)),
                                                    Some(Arc::clone(&warm)),
                                                )
                                            },
                                        );
                                        let mut st = admission
                                            .lock()
                                            .expect("admission queue poisoned");
                                        st.active -= 1;
                                        drop(st);
                                        turnstile.notify_all();
                                        out
                                    }
                                };
                                if !matches!(
                                    r.outcome,
                                    Outcome::Unresolved(Unresolved::Drained)
                                ) {
                                    wm.queries += 1;
                                    wm.meta_micros += r.meta.micros;
                                    wm.busy_micros += started.elapsed().as_micros() as u64;
                                    wm.lock_wait_micros +=
                                        qobs.reg.get(Counter::LockWaitMicros);
                                    if let Some(sink) = sink {
                                        sink(i, &r);
                                    }
                                }
                                *shared[k].lock().expect("result slot poisoned") =
                                    Some((r, qobs));
                            }
                            fault_point("batch.worker.join");
                            worker_meta.lock().expect("worker meta poisoned").push(wm);
                        });
                    }
                });
            }
        }
        for (k, slot) in shared.into_iter().enumerate() {
            slots[pending[k]] = slot
                .into_inner()
                .expect("result slot poisoned");
        }
        cache_stats = cache.stats();
        warm_waits = warm.wait_micros();
    }

    // Drain results, merge the per-query registries, and (if tracing)
    // emit every buffered event in query-index order — the master is the
    // only writer, so the stream is schedule-independent.
    let mut obs = ObsRegistry::default();
    obs.set_timed(config.timed);
    let mut results: Vec<QueryResult<C::Param>> = Vec::with_capacity(queries.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let (r, qobs) = slot.expect("every query resolved, resumed, or faulted");
        obs.merge(&qobs.reg);
        if let Some(sink) = trace {
            for ev in &qobs.events {
                sink.emit(ev);
            }
            sink.emit(&Event::QueryResolved {
                query: i as u64,
                outcome: outcome_tag(&r.outcome).to_string(),
                iterations: r.iterations as u64,
            });
        }
        results.push(r);
    }
    if let Some(sink) = trace {
        sink.flush();
    }

    let worker_meta = worker_meta.into_inner().expect("worker meta poisoned");
    let contention_micros =
        worker_meta.iter().map(|w| w.lock_wait_micros).sum::<u64>() + warm_waits;
    let stats = BatchStats {
        queries: queries.len(),
        jobs,
        cache: cache_stats,
        wall_micros: start.elapsed().as_micros(),
        engine_faults: results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Unresolved(Unresolved::EngineFault(_))))
            .count(),
        deadline_exceeded: results
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Unresolved(Unresolved::DeadlineExceeded)))
            .count(),
        escalations: results.iter().map(|r| u64::from(r.escalations)).sum(),
        resumed,
        degradations: results.iter().map(|r| u64::from(r.degradations)).sum(),
        shed: shed.load(Ordering::Relaxed),
        retries: results.iter().map(|r| u64::from(r.retries)).sum(),
        contention_micros,
        faults_injected: faultplane::faults_injected().saturating_sub(injected_at_start),
        io_faults: faultplane::io_faults().saturating_sub(io_at_start),
        watchdog_fired: 0,
        worker_meta,
        meta: {
            let mut total = MetaStats::default();
            for r in &results {
                total.merge(&r.meta);
            }
            total
        },
        obs,
    };
    (results, stats)
}

/// [`crate::tracer::solve_query`] with its forward analyses routed through `cache`,
/// additionally bounded by the batch-wide `outer` deadline.
///
/// Mirrors [`crate::tracer::step`]'s CEGAR iteration exactly; the only
/// difference is where the [`RhsResult`] comes from. Within one query's
/// loop every iteration tries a *different* assignment (the previous one
/// was just proven unviable), so the cache only ever pays off *across*
/// queries — which is exactly the sharing the batch scheduler is for.
pub fn solve_query_cached<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    cache: &ForwardCache<'p, C::State>,
    outer: Deadline,
) -> QueryResult<C::Param> {
    solve_query_cached_observed(
        program,
        callees,
        client,
        query,
        config,
        cache,
        outer,
        &mut QueryObs::untraced(),
    )
}

/// [`solve_query_cached`] collecting spans, counters, and (if enabled)
/// buffered trace events into `obs` — the cached counterpart of
/// [`crate::tracer::solve_query_observed`].
#[allow(clippy::too_many_arguments)]
pub fn solve_query_cached_observed<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    cache: &ForwardCache<'p, C::State>,
    outer: Deadline,
    obs: &mut QueryObs,
) -> QueryResult<C::Param> {
    solve_query_cached_pooled(
        program, callees, client, query, config, cache, outer, obs, None, None,
    )
}

/// [`solve_query_cached_observed`] with the query's byte charges
/// additionally cascading into the shared batch `pool` (admission-control
/// accounting; the pool never influences the running query's decisions)
/// and its fresh [`InternCache`] optionally seeded from the batch-wide
/// `warm` store (semantically transparent sharing of wp formulas and
/// primitive-pair verdicts — see [`WarmStore`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_query_cached_pooled<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    cache: &ForwardCache<'p, C::State>,
    outer: Deadline,
    obs: &mut QueryObs,
    pool: Option<Arc<MemBudget>>,
    warm: Option<Arc<WarmStore<C::Prim>>>,
) -> QueryResult<C::Param> {
    let mut icache = match warm {
        Some(w) => InternCache::with_warm(w),
        None => InternCache::default(),
    };
    solve_query_cached_warm_pooled(
        program, callees, client, query, config, cache, &mut icache, outer, obs, pool,
    )
}

/// [`solve_query_cached_observed`] with an external, *warm* intern/wp-memo
/// cache: the analysis daemon keeps one [`InternCache`] resident per
/// worker so repeated requests share interned cubes and
/// weakest-precondition memo entries across requests. Outcomes are
/// identical to a cold-cache solve — memoization is semantically
/// transparent — only effort counters (wp hits/misses, micros) differ.
#[allow(clippy::too_many_arguments)]
pub fn solve_query_cached_warm<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    cache: &ForwardCache<'p, C::State>,
    icache: &mut InternCache<C::Prim>,
    outer: Deadline,
    obs: &mut QueryObs,
) -> QueryResult<C::Param> {
    solve_query_cached_warm_pooled(
        program, callees, client, query, config, cache, icache, outer, obs, None,
    )
}

#[allow(clippy::too_many_arguments)]
fn solve_query_cached_warm_pooled<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    cache: &ForwardCache<'p, C::State>,
    icache: &mut InternCache<C::Prim>,
    outer: Deadline,
    obs: &mut QueryObs,
    pool: Option<Arc<MemBudget>>,
) -> QueryResult<C::Param> {
    let start = Instant::now();
    let entry = obs.reg.clone();
    let deadline = effective_deadline(query, config, outer);
    // Publish the query's deadline for out-of-band sleepers (injected
    // stalls, `Fault::Stall` clients) that sit outside the limit structs.
    let _ambient = deadline.enter_ambient();
    let mut constraints: Vec<PFormula> = Vec::new();
    let mut iterations = 0;
    let mut escalations = 0;
    let mut gov = Governor::new(query, config, pool);
    let mut viable = ViableState::new(config.viable_engine);
    // Contended forward-cache shard waits for this query, drained into
    // the registry once at the end (the counter is effort attribution,
    // never part of the event stream).
    let lock_waits = AtomicU64::new(0);
    let outcome = loop {
        // One watchdog heartbeat per CEGAR iteration: a request that
        // stops beating is non-cooperatively stuck, not merely slow.
        pda_util::heartbeat::beat();
        if deadline.expired() {
            break Outcome::Unresolved(Unresolved::DeadlineExceeded);
        }
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        match step_cached(
            program,
            callees,
            client,
            query,
            config,
            &mut constraints,
            cache,
            deadline,
            &mut escalations,
            icache,
            &mut gov,
            &mut viable,
            obs,
            iterations,
            &lock_waits,
        ) {
            StepResult::Proven { param, cost } => {
                iterations += 1;
                break Outcome::Proven { param, cost };
            }
            StepResult::Impossible => break Outcome::Impossible,
            StepResult::Refined { .. } => {
                iterations += 1;
                gov.account_retained(icache, &constraints, &viable, &mut obs.reg);
                if gov.poll(icache, &mut viable, &mut obs.reg) {
                    break Outcome::Unresolved(Unresolved::MemBudgetExceeded);
                }
            }
            StepResult::Unresolved(u) => {
                iterations += 1;
                break Outcome::Unresolved(u);
            }
        }
    };
    obs.reg.add(Counter::Iterations, iterations as u64);
    obs.reg.add(Counter::Escalations, escalations as u64);
    obs.reg.add(Counter::LockWaitMicros, lock_waits.load(Ordering::Relaxed));
    let meta = MetaStats::from_obs(&obs.reg.since(&entry));
    QueryResult {
        outcome,
        iterations,
        micros: start.elapsed().as_micros(),
        escalations,
        degradations: gov.degradations,
        retries: 0,
        meta,
    }
}

/// One CEGAR iteration with the forward run served by `cache`.
#[allow(clippy::too_many_arguments)]
fn step_cached<'p, C: TracerClient>(
    program: &'p Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    constraints: &mut Vec<PFormula>,
    cache: &ForwardCache<'p, C::State>,
    deadline: Deadline,
    escalations: &mut u32,
    icache: &mut InternCache<C::Prim>,
    gov: &mut Governor,
    viable: &mut ViableState,
    obs: &mut QueryObs,
    iter: usize,
    lock_waits: &AtomicU64,
) -> StepResult<C::Param> {
    let t0 = Instant::now();
    let solved = viable.solve(client, constraints, deadline, &mut obs.reg, gov.budget());
    obs.reg.add(Counter::SolverMicros, t0.elapsed().as_micros() as u64);
    let model = match solved {
        Ok(Some(m)) => m,
        Ok(None) => return StepResult::Impossible,
        Err(_) => return StepResult::Unresolved(Unresolved::DeadlineExceeded),
    };
    let q = obs.query;
    let iter = iter as u64;
    obs.emit(Event::IterationStart { query: q, iter });
    obs.emit(Event::ParamChosen {
        query: q,
        iter,
        cost: model.cost,
        param: model.assignment.iter().map(|&b| if b { '1' } else { '0' }).collect(),
    });
    let p = client.param_of_model(&model.assignment);
    let d0 = client.initial_state();

    // The governor may have shrunk the base fact budget below the
    // configured/query budget (ladder rungs 7–8). A degraded budget uses
    // a different cache key, so degraded runs never poison healthy ones.
    let base_facts = gov.base_facts;
    let mut attempt: u32 = 0;
    let fwd = Span::enter(&obs.reg, SpanKind::Forward);
    let run = loop {
        let max_facts = config.escalation.budget(base_facts, attempt);
        let limits = RhsLimits { max_facts, deadline };
        match cache.forward(&model.assignment, max_facts, deadline, lock_waits, || {
            rhs::run(program, &crate::client::AsAnalysis(client), &p, d0.clone(), callees, limits)
        }) {
            Ok(r) => break r,
            Err(Interrupt::DeadlineExceeded) => {
                fwd.exit(&mut obs.reg);
                return StepResult::Unresolved(Unresolved::DeadlineExceeded);
            }
            Err(Interrupt::TooBig(_)) => {
                if attempt < config.escalation.retries && !deadline.expired() {
                    attempt += 1;
                    *escalations += 1;
                } else {
                    fwd.exit(&mut obs.reg);
                    return StepResult::Unresolved(Unresolved::AnalysisTooBig);
                }
            }
        }
    };
    fwd.exit(&mut obs.reg);
    obs.reg.inc(Counter::ForwardRuns);
    obs.emit(Event::ForwardDone { query: q, iter, facts: run.n_facts() as u64 });
    // The (possibly shared) fact/reason tables are this query's working
    // set until the end of the step; charge them so the boundary poll —
    // and the batch pool — see the iteration's true footprint.
    let fwd_bytes = run.approx_bytes();
    gov.budget().charge(fwd_bytes);
    obs.reg.add(Counter::MemCharged, fwd_bytes);

    let failing = |d: &C::State| query.not_q.holds(&p, d);
    let Some(trace) = run.witness(query.point, &failing) else {
        gov.budget().release(fwd_bytes);
        return StepResult::Proven { param: p, cost: model.cost };
    };
    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();

    let before = obs.reg.clone();
    let phi = match backward_phase(
        client,
        query,
        config,
        &gov.beam,
        &p,
        &d0,
        &atoms,
        icache,
        &mut obs.reg,
    ) {
        Ok(phi) => phi,
        Err(e) => {
            gov.budget().release(fwd_bytes);
            return StepResult::Unresolved(Unresolved::MetaFailure(e.to_string()));
        }
    };
    let delta = obs.reg.since(&before);
    // Transient cube traffic of the backward phase (deterministic
    // per-cube estimate, charged and released in one breath — the peak
    // tracker still observes it).
    let cube_bytes = delta.get(Counter::CubesBuilt).saturating_mul(crate::tracer::CUBE_BYTES);
    gov.budget().charge(cube_bytes);
    obs.reg.add(Counter::MemCharged, cube_bytes);
    gov.budget().release(cube_bytes);
    obs.emit(Event::MetaDone {
        query: q,
        iter,
        cubes: delta.get(Counter::CubesBuilt),
        wp_hits: delta.get(Counter::WpHits),
        wp_misses: delta.get(Counter::WpMisses),
    });
    obs.emit(Event::Pruned { query: q, iter, cubes: delta.get(Counter::ApproxDrops) });
    debug_assert!(
        phi.eval(&model.assignment),
        "backward analysis failed to eliminate the current abstraction (Theorem 3.1)"
    );
    let viable = Span::enter(&obs.reg, SpanKind::Viable);
    constraints.push(PFormula::not(phi));
    viable.exit(&mut obs.reg);
    gov.budget().release(fwd_bytes);
    StepResult::Refined { param: p, cost: model.cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use pda_analysis::PointsTo;

    fn fixture() -> (pda_lang::Program, PointsTo) {
        let program = pda_lang::parse_program(
            r#"
            fn id(a) { return a; }
            fn main() {
                var x, y, z;
                x = null;
                z = x;
                while (*) { y = id(x); }
                y = x;
                query q1: local y;
                query q2: local z;
                query q3: local x;
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        (program, pa)
    }

    fn queries(
        program: &pda_lang::Program,
        client: &NullClient,
    ) -> Vec<Query<crate::nullcli::NullPrim>> {
        ["q1", "q2", "q3"]
            .iter()
            .map(|l| client.query(program, program.query_by_label(l).unwrap()))
            .collect()
    }

    #[test]
    fn batch_matches_sequential_and_hits_cache() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let seq = BatchConfig { jobs: 1, ..BatchConfig::default() };
        let par = BatchConfig { jobs: 4, ..BatchConfig::default() };
        let (r1, s1) = solve_queries_batch(&program, &callees, &client, &qs, &seq);
        let (r4, s4) = solve_queries_batch(&program, &callees, &client, &qs, &par);
        assert_eq!(s1.queries, 3);
        assert_eq!(s1.cache.lookups(), 0, "jobs=1 must not touch the cache");
        for (a, b) in r1.iter().zip(&r4) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.iterations, b.iterations);
        }
        // Every query's loop starts from the same (empty) assignment, so
        // at least two of the three first iterations must hit the cache.
        assert!(s4.cache.hits >= 2, "expected cross-query sharing, got {}", s4.cache);
        assert_eq!(
            s4.cache.lookups() as usize,
            r4.iter().map(|r| r.iterations).sum::<usize>(),
            "every CEGAR iteration does exactly one forward lookup"
        );
        assert_eq!((s4.engine_faults, s4.deadline_exceeded, s4.resumed), (0, 0, 0));
        assert_eq!(s4.escalations, 0);
    }

    #[test]
    fn forward_cache_memoizes_and_counts() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let cache: ForwardCache<'_, _> = ForwardCache::new();
        let assignment = vec![false; client.n_atoms()];
        let p = client.param_of_model(&assignment);
        let limits = pda_dataflow::RhsLimits::default();
        let mut runs = 0;
        for _ in 0..3 {
            let r = cache
                .forward(&assignment, limits.max_facts, Deadline::NEVER, &AtomicU64::new(0), || {
                    runs += 1;
                    rhs::run(
                        &program,
                        &crate::client::AsAnalysis(&client),
                        &p,
                        client.initial_state(),
                        &callees,
                        limits,
                    )
                })
                .unwrap();
            assert!(r.n_facts() > 0);
        }
        assert_eq!(runs, 1, "compute must execute once per assignment");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn cache_keys_on_fact_budget_and_memoizes_too_big() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let cache: ForwardCache<'_, _> = ForwardCache::new();
        let assignment = vec![false; client.n_atoms()];
        let p = client.param_of_model(&assignment);
        let run_with = |budget: usize, runs: &mut u32| {
            cache.forward(&assignment, budget, Deadline::NEVER, &AtomicU64::new(0), || {
                *runs += 1;
                rhs::run(
                    &program,
                    &crate::client::AsAnalysis(&client),
                    &p,
                    client.initial_state(),
                    &callees,
                    pda_dataflow::RhsLimits { max_facts: budget, ..Default::default() },
                )
            })
        };
        let mut runs = 0;
        // A 1-fact budget fails deterministically — and the failure is
        // memoized under its own key.
        assert!(matches!(run_with(1, &mut runs), Err(Interrupt::TooBig(_))));
        assert!(matches!(run_with(1, &mut runs), Err(Interrupt::TooBig(_))));
        assert_eq!(runs, 1);
        // A generous budget is a distinct key and succeeds.
        assert!(run_with(1_000_000, &mut runs).is_ok());
        assert_eq!(runs, 2);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (2, 1));
    }

    #[test]
    fn cache_does_not_memoize_deadline_aborts() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let cache: ForwardCache<'_, _> = ForwardCache::new();
        let assignment = vec![false; client.n_atoms()];
        let p = client.param_of_model(&assignment);
        let budget = pda_dataflow::RhsLimits::default().max_facts;
        // First caller's run aborts on its expired deadline.
        let expired = Deadline::after(std::time::Duration::ZERO);
        let r = cache.forward(&assignment, budget, expired, &AtomicU64::new(0), || {
            rhs::run(
                &program,
                &crate::client::AsAnalysis(&client),
                &p,
                client.initial_state(),
                &callees,
                pda_dataflow::RhsLimits { max_facts: budget, deadline: expired },
            )
        });
        assert_eq!(r.unwrap_err(), Interrupt::DeadlineExceeded);
        // A healthy second caller recomputes and succeeds — the abort was
        // not cached.
        let r2 = cache.forward(&assignment, budget, Deadline::NEVER, &AtomicU64::new(0), || {
            rhs::run(
                &program,
                &crate::client::AsAnalysis(&client),
                &p,
                client.initial_state(),
                &callees,
                pda_dataflow::RhsLimits { max_facts: budget, ..Default::default() },
            )
        });
        assert!(r2.is_ok());
    }

    #[test]
    fn cache_recovers_from_panicking_compute() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let cache: ForwardCache<'_, _> = ForwardCache::new();
        let assignment = vec![false; client.n_atoms()];
        let p = client.param_of_model(&assignment);
        let budget = pda_dataflow::RhsLimits::default().max_facts;
        let boom = catch_unwind(AssertUnwindSafe(|| {
            cache.forward(&assignment, budget, Deadline::NEVER, &AtomicU64::new(0), || {
                panic!("injected")
            })
        }));
        assert!(boom.is_err());
        // The slot was re-opened: the next caller computes normally.
        let r = cache.forward(&assignment, budget, Deadline::NEVER, &AtomicU64::new(0), || {
            rhs::run(
                &program,
                &crate::client::AsAnalysis(&client),
                &p,
                client.initial_state(),
                &callees,
                pda_dataflow::RhsLimits::default(),
            )
        });
        assert!(r.is_ok());
    }

    #[test]
    fn empty_batch_is_fine() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let (r, s) =
            solve_queries_batch(&program, &callees, &client, &[], &BatchConfig::default());
        assert!(r.is_empty());
        assert_eq!(s.queries, 0);
    }

    /// Satellite regression for the footer unification: `BatchStats`'s
    /// `Display` now routes through `ObsRegistry::render`, and every
    /// field of the frozen two-line footer — including the `meta:` line —
    /// must survive the migration byte for byte.
    #[test]
    fn display_footer_fields_survive_obs_migration() {
        // Solver-phase micros ride the merged per-query registry (not a
        // `BatchStats` scalar) — pin that pass-through too.
        let mut merged = ObsRegistry::default();
        merged.set(Counter::SolverMicros, 13);
        let stats = BatchStats {
            queries: 32,
            jobs: 8,
            cache: CacheStats { hits: 57, misses: 32 },
            wall_micros: 2_000_000,
            engine_faults: 1,
            deadline_exceeded: 2,
            escalations: 3,
            resumed: 4,
            degradations: 5,
            shed: 6,
            retries: 7,
            contention_micros: 9,
            faults_injected: 11,
            io_faults: 10,
            watchdog_fired: 14,
            worker_meta: Vec::new(),
            meta: MetaStats {
                cubes_built: 12,
                subsumption_checks: 20,
                subsumption_fast_rejects: 5,
                wp_hits: 8,
                wp_misses: 2,
                approx_drops: 3,
                mem_evictions: 0,
                micros: 42,
            },
            obs: merged,
        };
        assert_eq!(
            stats.to_string(),
            "32 queries, jobs=8: 16.0 q/s, cache 57/89 hits (64.0%), 57 forward runs saved, \
             faults=1 deadlines=2 escalations=3 retries=7 resumed=4 degradations=5 shed=6 \
             injected=11 io_injected=10 watchdog=14 contention=9µs solver=13µs\n\
             meta: 12 cubes, wp 8/10 memo hits, subsumption 5/20 fast-rejected, 3 drops, 42µs"
        );
        // The meta: line is the MetaStats Display, verbatim.
        assert!(stats.to_string().ends_with(&stats.meta.to_string()));
    }

    #[test]
    fn traced_batch_events_are_job_count_invariant() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let mut streams = Vec::new();
        for jobs in [1, 4] {
            let rec = pda_util::Recorder::default();
            let config = BatchConfig { jobs, ..BatchConfig::default() };
            let (results, _) =
                solve_queries_batch_traced(&program, &callees, &client, &qs, &config, Some(&rec));
            let events = rec.take();
            let starts = events
                .iter()
                .filter(|e| matches!(e, Event::IterationStart { .. }))
                .count();
            assert_eq!(starts, results.iter().map(|r| r.iterations).sum::<usize>());
            let resolved: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    Event::QueryResolved { query, .. } => Some(*query),
                    _ => None,
                })
                .collect();
            assert_eq!(resolved, vec![0, 1, 2], "one query_resolved per query, in order");
            streams.push(events);
        }
        assert_eq!(streams[0], streams[1], "trace must not depend on the job count");
    }

    #[test]
    fn backoff_ladder_is_deterministic_and_monotone() {
        let a = RetryPolicy::deterministic(3);
        let b = RetryPolicy::deterministic(3);
        for q in [0u64, 7, 123] {
            for attempt in 0..3 {
                assert_eq!(a.backoff(q, attempt), b.backoff(q, attempt));
            }
            // Exponential base dominates the sub-base jitter.
            assert!(a.backoff(q, 2) > a.backoff(q, 0));
        }
        assert!(!a.should_retry(&Unresolved::DeadlineExceeded));
        assert!(a.should_retry(&Unresolved::EngineFault("x".into())));
        let daemon = RetryPolicy { retry_deadline: true, ..RetryPolicy::deterministic(1) };
        assert!(daemon.should_retry(&Unresolved::DeadlineExceeded));
    }

    #[test]
    fn retry_recovers_one_shot_fault() {
        use crate::faultcli::{faulty_query, lift_query, Fault, FaultInjectingClient};
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let wrapped = FaultInjectingClient::new(&client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        for jobs in [1, 4] {
            let qs: Vec<_> = queries(&program, &client)
                .into_iter()
                .enumerate()
                .map(|(i, q)| {
                    if i == 1 {
                        faulty_query(q, Fault::Panic("transient".into()))
                    } else {
                        lift_query(q)
                    }
                })
                .collect();
            // Without a policy the one-shot fault is terminal.
            let cold = BatchConfig { jobs, ..BatchConfig::default() };
            let (r, s) = solve_queries_batch(&program, &callees, &wrapped, &qs, &cold);
            assert!(matches!(r[1].outcome, Outcome::Unresolved(Unresolved::EngineFault(_))));
            assert_eq!((s.engine_faults, s.retries), (1, 0));
            // With the ladder, the second attempt finds the trap spent.
            let qs: Vec<_> = queries(&program, &client)
                .into_iter()
                .enumerate()
                .map(|(i, q)| {
                    if i == 1 {
                        faulty_query(q, Fault::Panic("transient".into()))
                    } else {
                        lift_query(q)
                    }
                })
                .collect();
            let retrying = BatchConfig {
                jobs,
                retry: Some(RetryPolicy::deterministic(2)),
                ..BatchConfig::default()
            };
            let (r, s) = solve_queries_batch(&program, &callees, &wrapped, &qs, &retrying);
            assert!(
                matches!(r[1].outcome, Outcome::Proven { .. }),
                "retry should recover the one-shot fault: {:?}",
                r[1].outcome
            );
            assert_eq!(r[1].retries, 1);
            assert_eq!((s.engine_faults, s.retries), (0, 1));
        }
    }

    #[test]
    fn raised_cancel_flag_drains_unstarted_queries() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        for jobs in [1, 4] {
            let flag = Arc::new(AtomicBool::new(true));
            let config =
                BatchConfig { jobs, cancel: Some(Arc::clone(&flag)), ..BatchConfig::default() };
            let sunk = Mutex::new(Vec::new());
            let sink = |i: usize, _r: &QueryResult<pda_util::BitSet>| {
                sunk.lock().unwrap().push(i);
            };
            let (r, s) = run_batch(
                &program,
                &callees,
                &client,
                &qs,
                &config,
                HashMap::new(),
                Some(&sink),
                None,
            );
            assert!(
                r.iter().all(|r| r.outcome == Outcome::Unresolved(Unresolved::Drained)),
                "pre-raised drain flag must stop every query before it starts"
            );
            assert!(
                sunk.lock().unwrap().is_empty(),
                "drained queries must not reach the checkpoint sink"
            );
            assert_eq!(s.retries, 0);
        }
    }

    #[test]
    fn worker_meta_attributes_all_queries() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        for (jobs, pool) in [(1, None), (4, None), (4, Some(1 << 30))] {
            let config = BatchConfig { jobs, pool_budget: pool, ..BatchConfig::default() };
            let (r, s) = solve_queries_batch(&program, &callees, &client, &qs, &config);
            assert!(!s.worker_meta.is_empty());
            assert!(s.worker_meta.len() <= jobs.min(qs.len()));
            assert_eq!(
                s.worker_meta.iter().map(|w| w.queries).sum::<u64>(),
                qs.len() as u64,
                "every solved query is attributed to exactly one worker"
            );
            let attributed: u64 = s.worker_meta.iter().map(|w| w.meta_micros).sum();
            assert_eq!(attributed, r.iter().map(|r| r.meta.micros).sum::<u64>());
        }
    }

    #[test]
    fn warm_intern_cache_matches_cold_outcomes() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        let config = TracerConfig::default();
        let cache: ForwardCache<'_, _> = ForwardCache::new();
        let mut icache = InternCache::default();
        for q in &qs {
            let cold =
                solve_query_cached(&program, &callees, &client, q, &config, &cache, Deadline::NEVER);
            let warm = solve_query_cached_warm(
                &program,
                &callees,
                &client,
                q,
                &config,
                &cache,
                &mut icache,
                Deadline::NEVER,
                &mut QueryObs::untraced(),
            );
            assert_eq!(cold.outcome, warm.outcome);
            assert_eq!(cold.iterations, warm.iterations);
        }
    }

    #[test]
    fn batch_timeout_degrades_whole_batch() {
        let (program, pa) = fixture();
        let client = NullClient::new(&program);
        let qs = queries(&program, &client);
        let callees = |c: CallId| pa.callees(c).to_vec();
        for jobs in [1, 4] {
            let config = BatchConfig {
                jobs,
                batch_timeout: Some(std::time::Duration::ZERO),
                ..BatchConfig::default()
            };
            let (r, s) = solve_queries_batch(&program, &callees, &client, &qs, &config);
            assert!(r
                .iter()
                .all(|r| r.outcome == Outcome::Unresolved(Unresolved::DeadlineExceeded)));
            assert_eq!(s.deadline_exceeded, qs.len());
        }
    }
}
