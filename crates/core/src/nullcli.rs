//! A small self-contained [`TracerClient`]: parametric *definite-null*
//! analysis.
//!
//! The abstract state is the set of variables known to be `null`; the
//! abstraction parameter picks which variables the analysis is allowed to
//! track (cost = number of tracked variables, exactly the shape of the
//! paper's type-state parameter). A `local x` query is read as "prove `x`
//! is definitely null here".
//!
//! This client exists for tests, docs, and benchmarks of the TRACER core
//! without pulling in the full type-state/thread-escape clients; it
//! exercises every part of the pipeline (RHS forward runs, counterexample
//! traces, backward wp, beam, min-cost solving, impossibility).

use crate::client::{Query, QueryLimits, TracerClient};
use pda_lang::{Atom, Program, QueryId, QueryKind, VarId};
use pda_meta::{Formula, Primitive};
use pda_util::BitSet;
use std::collections::BTreeSet;
use std::fmt;

/// Primitives of the definite-null meta-domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NullPrim {
    /// `x ∈ d` — `x` is known null.
    Var(VarId),
    /// `x ∈ p` — `x` is tracked by the abstraction.
    Param(VarId),
}

impl fmt::Display for NullPrim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NullPrim::Var(v) => write!(f, "null(v{v})"),
            NullPrim::Param(v) => write!(f, "track(v{v})"),
        }
    }
}

impl Primitive for NullPrim {
    type Param = BitSet;
    type State = BTreeSet<VarId>;

    fn holds(&self, p: &BitSet, d: &BTreeSet<VarId>) -> bool {
        match self {
            NullPrim::Var(v) => d.contains(v),
            NullPrim::Param(v) => p.contains(v.0 as usize),
        }
    }

    fn eval_state(&self, d: &BTreeSet<VarId>) -> Option<bool> {
        match self {
            NullPrim::Var(v) => Some(d.contains(v)),
            NullPrim::Param(_) => None,
        }
    }

    fn param_atom(&self) -> Option<(usize, bool)> {
        match self {
            NullPrim::Var(_) => None,
            NullPrim::Param(v) => Some((v.0 as usize, true)),
        }
    }
}

/// The definite-null client over one program.
#[derive(Debug, Clone)]
pub struct NullClient {
    n_vars: usize,
}

impl NullClient {
    /// Creates the client for `program`.
    pub fn new(program: &Program) -> NullClient {
        NullClient { n_vars: program.vars.len() }
    }

    /// Builds the TRACER [`Query`] for a `local x` source query: failure
    /// is "`x` not known null at the point".
    ///
    /// # Panics
    ///
    /// Panics if the source query is not a `local` query.
    pub fn query(&self, program: &Program, q: QueryId) -> Query<NullPrim> {
        let decl = &program.queries[q];
        let QueryKind::Local { var } = decl.kind else {
            panic!("NullClient only answers `local` queries");
        };
        Query {
            point: decl.point,
            not_q: Formula::nprim(NullPrim::Var(var)),
            source: Some(q),
            limits: QueryLimits::default(),
        }
    }
}

impl TracerClient for NullClient {
    type Param = BitSet;
    type State = BTreeSet<VarId>;
    type Prim = NullPrim;

    fn transfer(&self, p: &BitSet, atom: &Atom, d: &Self::State) -> Self::State {
        let mut out = d.clone();
        match *atom {
            Atom::Null { dst } => {
                if p.contains(dst.0 as usize) {
                    out.insert(dst);
                } else {
                    out.remove(&dst);
                }
            }
            Atom::Copy { dst, src } => {
                if d.contains(&src) && p.contains(dst.0 as usize) {
                    out.insert(dst);
                } else {
                    out.remove(&dst);
                }
            }
            Atom::New { dst, .. }
            | Atom::Load { dst, .. }
            | Atom::GGet { dst, .. }
            | Atom::Havoc { dst } => {
                out.remove(&dst);
            }
            Atom::Store { .. }
            | Atom::GSet { .. }
            | Atom::Invoke { .. }
            | Atom::Spawn { .. }
            | Atom::Nop => {}
        }
        out
    }

    fn wp_prim(&self, atom: &Atom, prim: &NullPrim) -> Formula<NullPrim> {
        let keep = Formula::prim(*prim);
        let NullPrim::Var(z) = *prim else {
            // Parameters are never changed by commands.
            return keep;
        };
        match *atom {
            Atom::Null { dst } if dst == z => Formula::prim(NullPrim::Param(z)),
            Atom::Copy { dst, src } if dst == z => Formula::and(vec![
                Formula::prim(NullPrim::Var(src)),
                Formula::prim(NullPrim::Param(z)),
            ]),
            Atom::New { dst, .. } | Atom::Load { dst, .. } | Atom::GGet { dst, .. } | Atom::Havoc { dst }
                if dst == z =>
            {
                Formula::False
            }
            _ => keep,
        }
    }

    fn n_atoms(&self) -> usize {
        self.n_vars
    }

    fn param_of_model(&self, assignment: &[bool]) -> BitSet {
        BitSet::from_iter(
            self.n_vars,
            assignment
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| i),
        )
    }

    fn initial_state(&self) -> BTreeSet<VarId> {
        BTreeSet::new()
    }
}

/// Every variable a command mentions (the coarse-refinement heuristic of
/// classic CEGAR baselines; see [`crate::baseline`]).
pub fn vars_mentioned(atom: &Atom) -> Vec<VarId> {
    match *atom {
        Atom::New { dst, .. } | Atom::Null { dst } | Atom::GGet { dst, .. } | Atom::Havoc { dst } => {
            vec![dst]
        }
        Atom::Copy { dst, src } => vec![dst, src],
        Atom::Load { dst, base, .. } => vec![dst, base],
        Atom::Store { base, src, .. } => vec![base, src],
        Atom::GSet { src, .. } | Atom::Spawn { src } => vec![src],
        Atom::Invoke { recv, .. } => vec![recv],
        Atom::Nop => vec![],
    }
}

impl crate::baseline::CoarseAtoms for NullClient {
    fn coarse_atoms(&self, atom: &Atom) -> Vec<usize> {
        vars_mentioned(atom).into_iter().map(|v| v.0 as usize).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::AsMeta;
    use pda_meta::check_wp_exact;

    /// Every atom shape over 4 variables, field 0, site 0 — small enough
    /// to enumerate outright.
    fn all_atoms() -> Vec<Atom> {
        let vs = || (0u32..4).map(VarId);
        let mut out = vec![Atom::Nop];
        for a in vs() {
            out.push(Atom::Null { dst: a });
            out.push(Atom::Havoc { dst: a });
            out.push(Atom::New { dst: a, site: pda_lang::SiteId(0) });
            for b in vs() {
                out.push(Atom::Copy { dst: a, src: b });
                out.push(Atom::Load { dst: a, base: b, field: pda_lang::FieldId(0) });
                out.push(Atom::Store { base: a, field: pda_lang::FieldId(0), src: b });
            }
        }
        out
    }

    /// Requirement (2): the wp of every primitive is the exact preimage of
    /// the forward transfer. The 4-variable universe is small enough to
    /// check *exhaustively*: every atom × parameter × state × primitive.
    #[test]
    fn wp_is_exact() {
        let client = NullClient { n_vars: 4 };
        for atom in all_atoms() {
            for pbits in 0u32..16 {
                let p = BitSet::from_iter(4, (0..4).filter(|i| (pbits >> i) & 1 == 1));
                for dbits in 0u32..16 {
                    let d: BTreeSet<VarId> =
                        (0..4).filter(|i| (dbits >> i) & 1 == 1).map(VarId).collect();
                    for prim_var in 0u32..4 {
                        for prim in [
                            NullPrim::Var(VarId(prim_var)),
                            NullPrim::Param(VarId(prim_var)),
                        ] {
                            check_wp_exact(&AsMeta(&client), &atom, &prim, &p, &d)
                                .unwrap_or_else(|e| panic!("{e}"));
                        }
                    }
                }
            }
        }
    }
}
