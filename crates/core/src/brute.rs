//! Brute-force reference oracle: enumerate the whole abstraction family.
//!
//! Validates TRACER on small programs (`tests/tracer_optimum.rs`): the
//! paper's Definition 2 asks for a *minimum* abstraction or a proof that
//! none exists; this oracle computes the ground truth by running the
//! forward analysis under all `2^N` abstractions.

use crate::client::{AsAnalysis, Query, TracerClient};
use pda_dataflow::{rhs, RhsLimits};
use pda_lang::{CallId, MethodId, Program};

/// Enumerates every abstraction (cheapest first) and returns the first
/// one proving the query, with its cost — or `None` if no abstraction in
/// the family proves it.
///
/// # Panics
///
/// Panics if the client has more than `max_atoms` parameter atoms (the
/// enumeration is exponential) or if a forward run exceeds `limits`.
pub fn brute_force_optimum<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    max_atoms: usize,
    limits: RhsLimits,
) -> Option<(C::Param, u64)> {
    let n = client.n_atoms();
    assert!(n <= max_atoms, "brute force over 2^{n} abstractions refused");
    let mut order: Vec<u64> = (0..(1u64 << n)).collect();
    let cost_of = |bits: u64| -> u64 {
        (0..n)
            .filter(|i| (bits >> i) & 1 == 1)
            .map(|i| client.atom_cost(i))
            .sum()
    };
    order.sort_by_key(|&bits| (cost_of(bits), bits));
    for bits in order {
        let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
        let p = client.param_of_model(&assignment);
        let run = rhs::run(
            program,
            &AsAnalysis(client),
            &p,
            client.initial_state(),
            callees,
            limits,
        )
        .expect("brute-force forward run exceeded limits");
        let failing = run
            .states_at(query.point)
            .into_iter()
            .any(|d| query.not_q.holds(&p, d));
        if !failing {
            return Some((p, cost_of(bits)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use crate::tracer::{solve_query, Outcome, TracerConfig};
    use pda_analysis::PointsTo;

    #[test]
    fn tracer_agrees_with_brute_force() {
        let srcs = [
            // Proven with cost 2.
            r#"fn main() { var x, y, z; x = null; z = x; y = x; query q: local y; }"#,
            // Impossible.
            r#"class C {} fn main() { var y; y = new C; query q: local y; }"#,
            // Proven through a branch: both branches must keep y null.
            r#"fn main() { var x, y; x = null; if (*) { y = x; } else { y = null; } query q: local y; }"#,
            // Impossible: one branch breaks it.
            r#"class C {} fn main() { var x, y; x = null; if (*) { y = x; } else { y = new C; } query q: local y; }"#,
        ];
        for src in srcs {
            let program = pda_lang::parse_program(src).unwrap();
            let pa = PointsTo::analyze(&program);
            let client = NullClient::new(&program);
            let q = program.query_by_label("q").unwrap();
            let query = client.query(&program, q);
            let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
            let truth = brute_force_optimum(
                &program,
                &callees,
                &client,
                &query,
                16,
                pda_dataflow::RhsLimits::default(),
            );
            let got = solve_query(&program, &callees, &client, &query, &TracerConfig::default());
            match (truth, got.outcome) {
                (Some((_, want_cost)), Outcome::Proven { cost, .. }) => {
                    assert_eq!(cost, want_cost, "cost mismatch on {src}")
                }
                (None, Outcome::Impossible) => {}
                (t, g) => panic!("disagreement on {src}: brute={t:?} tracer={g:?}"),
            }
        }
    }
}
