//! **TRACER** — the paper's Algorithm 1: iterative forward–backward search
//! for an *optimum* abstraction.
//!
//! Given a program, a parametric dataflow analysis, and a query, TRACER
//! repeatedly:
//!
//! 1. picks a **minimum-cost** abstraction from the current viable set
//!    (a min-cost SAT query over the parameter atoms, `pda-solver`);
//! 2. runs the **forward** analysis (`pda-dataflow`'s RHS engine) with it;
//! 3. if the query is proven — done: the abstraction is optimum, because
//!    everything cheaper was already proven unviable;
//! 4. otherwise extracts an abstract **counterexample trace** and runs the
//!    **backward meta-analysis** (`pda-meta`) over it, obtaining a formula
//!    describing a whole set of abstractions that are guaranteed to fail
//!    the same way; those are removed from the viable set;
//! 5. if the viable set empties — the query is **impossible** for this
//!    analysis, no abstraction in the (possibly exponential) family can
//!    prove it.
//!
//! The crate is generic over [`TracerClient`]; `pda-typestate` and
//! `pda-escape` implement the paper's two clients, and [`nullcli`]
//! provides a small self-contained demonstration client used in tests and
//! docs.
//!
//! # Example
//!
//! ```
//! use pda_tracer::{nullcli::NullClient, solve_query, Outcome, TracerConfig};
//!
//! let program = pda_lang::parse_program(r#"
//!     fn main() {
//!         var x, y;
//!         x = null;
//!         y = x;
//!         query q: local y;   // prove y is definitely null here
//!     }
//! "#).unwrap();
//! let pa = pda_analysis::PointsTo::analyze(&program);
//! let client = NullClient::new(&program);
//! let q = program.query_by_label("q").unwrap();
//! let query = client.query(&program, q);
//! let result = solve_query(
//!     &program,
//!     &|c| pa.callees(c).to_vec(),
//!     &client,
//!     &query,
//!     &TracerConfig::default(),
//! );
//! // Cheapest abstraction tracks exactly {x, y}.
//! match result.outcome {
//!     Outcome::Proven { cost, .. } => assert_eq!(cost, 2),
//!     other => panic!("expected proof, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod brute;
pub mod client;
pub mod faultcli;
pub mod groups;
pub mod nullcli;
pub mod resilience;
pub mod tracer;

pub use baseline::{solve_query_coarse, CoarseAtoms};
pub use batch::{
    default_jobs, outcome_tag, solve_queries_batch, solve_queries_batch_traced,
    solve_query_cached, solve_query_cached_observed, solve_query_cached_warm, BatchConfig,
    BatchStats, ForwardCache, RetryPolicy, WorkerMeta,
};
pub use brute::brute_force_optimum;
pub use client::{AsAnalysis, AsMeta, Query, QueryLimits, TracerClient};
pub use faultcli::{faulty_query, lift_query, Fault, FaultInjectingClient, FaultPrim};
pub use groups::{solve_queries, GroupStats};
pub use resilience::{
    compact_checkpoint, load_checkpoint, solve_queries_batch_checkpointed,
    solve_queries_batch_checkpointed_traced, CheckpointError, CheckpointWriter, ParamCodec,
};
pub use pda_meta::{InternCache, MetaStats};
pub use tracer::{
    solve_query, solve_query_logged, solve_query_observed, solve_query_within, Escalation,
    IterationLog, MetaKernel, Outcome, QueryObs, QueryResult, TracerConfig, Unresolved,
    ViableEngine,
};
