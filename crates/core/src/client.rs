//! The client interface TRACER is generic over, and adapters into the
//! engine-facing traits of `pda-dataflow` and `pda-meta`.

use pda_dataflow::ParametricAnalysis;
use pda_lang::{Atom, PointId, Program, QueryId};
use pda_meta::{Formula, MetaClient, Primitive};

/// Everything TRACER needs from a parametric analysis:
///
/// * the forward transfer functions (shared verbatim with the engines),
/// * the backward weakest preconditions over the client's [`Primitive`]s,
/// * the parameter universe as solver atoms with costs (the paper's
///   `(P, ⪯)`: an abstraction is an atom assignment, its cost the sum of
///   true atoms' costs), and
/// * the initial abstract state `d_I`.
pub trait TracerClient {
    /// The abstraction parameter `p ∈ P`.
    type Param: Clone + std::fmt::Debug;
    /// The abstract state `d ∈ D`.
    type State: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug;
    /// The meta-analysis primitive alphabet.
    type Prim: Primitive<Param = Self::Param, State = Self::State>;

    /// The forward transfer `⟦atom⟧_p(d)`.
    fn transfer(&self, p: &Self::Param, atom: &Atom, d: &Self::State) -> Self::State;

    /// Exact weakest precondition of a positive primitive across `atom`
    /// (see `pda_meta::MetaClient::wp_prim` for the obligation).
    fn wp_prim(&self, atom: &Atom, prim: &Self::Prim) -> Formula<Self::Prim>;

    /// Size of the parameter-atom universe.
    fn n_atoms(&self) -> usize;

    /// Cost of setting atom `i` true (default 1, matching the paper's
    /// cardinality preorders).
    fn atom_cost(&self, atom: usize) -> u64 {
        let _ = atom;
        1
    }

    /// Decodes a solver model into a parameter value.
    fn param_of_model(&self, assignment: &[bool]) -> Self::Param;

    /// The initial abstract state `d_I` at `main`'s entry.
    fn initial_state(&self) -> Self::State;
}

/// A query: prove that no abstract state satisfying `not_q` reaches
/// `point`.
///
/// `not_q` is the paper's `not(q)` — the weakest condition under which the
/// query *fails*; it must be a state-only formula (independent of the
/// parameter).
#[derive(Debug, Clone)]
pub struct Query<P> {
    /// The program point the query is posed at.
    pub point: PointId,
    /// Failure condition `not(q)` over state primitives.
    pub not_q: Formula<P>,
    /// The source query this corresponds to, if any (labels, reporting).
    pub source: Option<QueryId>,
    /// Per-query overrides of the global resource limits.
    pub limits: QueryLimits,
}

/// Per-query resource-limit overrides.
///
/// The default overrides nothing — the query runs under the global
/// [`crate::tracer::TracerConfig`] limits. Set a field to tighten (or
/// loosen) the limit for this query alone; the fault-injection tests use
/// a zero `timeout` for a deterministic `DeadlineExceeded` and a tiny
/// `max_facts` for a deterministic forced-`TooBig`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Wall-clock budget for this query (`None` = use the global one).
    pub timeout: Option<std::time::Duration>,
    /// Base fact budget for this query's forward runs (`None` = global).
    pub max_facts: Option<usize>,
    /// Memory budget in estimated bytes for this query (`None` = global).
    pub mem_budget: Option<u64>,
}

impl<P: Primitive> Query<P> {
    /// Returns the source label if the query came from source text.
    pub fn label<'a>(&self, program: &'a Program) -> Option<&'a str> {
        self.source.map(|q| program.queries[q].label.as_str())
    }

    /// Returns the query with the given per-query limit overrides.
    pub fn with_limits(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// Adapter: view a [`TracerClient`] as a `pda-dataflow`
/// [`ParametricAnalysis`] for the forward engines.
#[derive(Debug, Clone, Copy)]
pub struct AsAnalysis<'a, C>(pub &'a C);

impl<C: TracerClient> ParametricAnalysis for AsAnalysis<'_, C> {
    type Param = C::Param;
    type State = C::State;
    fn transfer(&self, p: &C::Param, atom: &Atom, d: &C::State) -> C::State {
        self.0.transfer(p, atom, d)
    }
}

/// Adapter: view a [`TracerClient`] as a `pda-meta` [`MetaClient`] for the
/// backward driver.
#[derive(Debug, Clone, Copy)]
pub struct AsMeta<'a, C>(pub &'a C);

impl<C: TracerClient> MetaClient for AsMeta<'_, C> {
    type Prim = C::Prim;
    fn transfer(&self, p: &C::Param, atom: &Atom, d: &C::State) -> C::State {
        self.0.transfer(p, atom, d)
    }
    fn wp_prim(&self, atom: &Atom, prim: &C::Prim) -> Formula<C::Prim> {
        self.0.wp_prim(atom, prim)
    }
}
