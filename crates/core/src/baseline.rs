//! A coarse refinement **baseline**, for comparison with TRACER.
//!
//! The paper's Related Work (Section 7) contrasts its meta-analysis with
//! classic refinement-based analyses that "compute cause-effect
//! dependencies for finding aspects of the abstraction that might be
//! responsible for the failure ... and then refine these aspects", whose
//! drawback is that "they can refine much more than necessary and thereby
//! sacrifice scalability". This module implements that strategy so the
//! benches can measure the contrast:
//!
//! * on failure, every parameter atom *syntactically mentioned* by the
//!   counterexample trace is refined (enabled) — no backward
//!   meta-analysis, no unviability sets;
//! * consequently it cannot return minimum abstractions, and it can
//!   never prove impossibility: when refinement saturates without a
//!   proof it just gives up.

use crate::client::{AsAnalysis, Query, TracerClient};
use crate::tracer::{Outcome, QueryResult, TracerConfig, Unresolved};
use pda_dataflow::rhs;
use pda_lang::{Atom, CallId, MethodId, Program};
use std::time::Instant;

/// Extracts the parameter atoms syntactically relevant to one trace atom.
///
/// This is the "cause-effect" heuristic of coarse refinement: for the
/// type-state client every variable occurring in the command, for the
/// thread-escape client every allocation site occurring in it.
pub trait CoarseAtoms: TracerClient {
    /// Parameter atoms mentioned by `atom`.
    fn coarse_atoms(&self, atom: &Atom) -> Vec<usize>;
}

/// Runs the coarse-refinement baseline on one query.
///
/// Starts from the cheapest abstraction; each failure enables every
/// parameter atom the counterexample trace mentions. Stops on proof,
/// saturation (no new atoms to enable — reported as unresolved, since the
/// baseline cannot distinguish "needs a different abstraction" from
/// "impossible"), or the iteration budget.
pub fn solve_query_coarse<C: CoarseAtoms>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
) -> QueryResult<C::Param> {
    let start = Instant::now();
    let n = client.n_atoms();
    let mut enabled = vec![false; n];
    let mut iterations = 0;
    let outcome = loop {
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        iterations += 1;
        let p = client.param_of_model(&enabled);
        let run = match rhs::run(
            program,
            &AsAnalysis(client),
            &p,
            client.initial_state(),
            callees,
            config.rhs_limits,
        ) {
            Ok(r) => r,
            Err(_) => break Outcome::Unresolved(Unresolved::AnalysisTooBig),
        };
        let failing = |d: &C::State| query.not_q.holds(&p, d);
        let Some(trace) = run.witness(query.point, &failing) else {
            let cost = enabled
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| client.atom_cost(i))
                .sum();
            break Outcome::Proven { param: p, cost };
        };
        let mut grew = false;
        for step in &trace {
            for a in client.coarse_atoms(&step.atom) {
                if !enabled[a] {
                    enabled[a] = true;
                    grew = true;
                }
            }
        }
        if !grew {
            // Refinement saturated without a proof: the baseline cannot
            // conclude impossibility.
            break Outcome::Unresolved(Unresolved::MetaFailure(
                "coarse refinement saturated".to_string(),
            ));
        }
    };
    QueryResult {
        outcome,
        iterations,
        micros: start.elapsed().as_micros(),
        escalations: 0,
        degradations: 0,
        retries: 0,
        meta: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use pda_analysis::PointsTo;

    const SRC: &str = r#"
        fn main() {
            var x, y, junk1, junk2;
            x = null;
            junk1 = x;      // irrelevant to the query, but on the trace
            junk2 = junk1;
            y = x;
            query q: local y;
        }
    "#;

    #[test]
    fn coarse_overshoots_where_tracer_is_optimal() {
        let program = pda_lang::parse_program(SRC).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let config = TracerConfig::default();

        let coarse = solve_query_coarse(&program, &callees, &client, &query, &config);
        let optimal = crate::tracer::solve_query(&program, &callees, &client, &query, &config);

        let Outcome::Proven { cost: coarse_cost, .. } = coarse.outcome else {
            panic!("baseline should still prove this: {:?}", coarse.outcome)
        };
        let Outcome::Proven { cost: optimal_cost, .. } = optimal.outcome else {
            panic!("tracer should prove this")
        };
        assert_eq!(optimal_cost, 2, "optimum tracks x and y only");
        assert!(
            coarse_cost > optimal_cost,
            "coarse refinement should enable the junk variables too \
             (coarse {coarse_cost} vs optimal {optimal_cost})"
        );
        // But it typically converges in fewer forward runs.
        assert!(coarse.iterations <= optimal.iterations);
    }

    #[test]
    fn coarse_cannot_prove_impossibility() {
        let program = pda_lang::parse_program(
            "class C {} fn main() { var y; y = new C; query q: local y; }",
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let r = solve_query_coarse(&program, &callees, &client, &query, &TracerConfig::default());
        assert!(
            matches!(r.outcome, Outcome::Unresolved(Unresolved::MetaFailure(_))),
            "baseline must give up, not claim impossibility: {:?}",
            r.outcome
        );
    }
}
