//! The single-query TRACER loop (Algorithm 1).

use crate::client::{AsMeta, Query, TracerClient};
use pda_dataflow::{rhs, RhsLimits};
use pda_lang::{CallId, MethodId, Program};
use pda_meta::{analyze_trace, restrict, BeamConfig};
use pda_solver::{MinCostSolver, PFormula};
use std::time::Instant;

/// Configuration of one TRACER run.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// The backward beam (the paper's `k`; default 5 per Figure 13).
    pub beam: BeamConfig,
    /// Maximum CEGAR iterations per query (the paper's 1000-minute
    /// timeout analogue).
    pub max_iters: usize,
    /// Forward-engine fact budget.
    pub rhs_limits: RhsLimits,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            beam: BeamConfig::default(),
            max_iters: 200,
            rhs_limits: RhsLimits::default(),
        }
    }
}

/// How a query got resolved (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<Param> {
    /// A cheapest abstraction proving the query.
    Proven {
        /// The optimum abstraction.
        param: Param,
        /// Its cost (`|p|` in the paper's preorders).
        cost: u64,
    },
    /// No abstraction in the family proves the query.
    Impossible,
    /// Budget exhausted before resolution.
    Unresolved(Unresolved),
}

/// Why a query went unresolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unresolved {
    /// Hit the CEGAR iteration budget.
    IterationBudget,
    /// A forward run exceeded its fact budget.
    AnalysisTooBig,
    /// The backward meta-analysis reported an internal soundness failure.
    MetaFailure(String),
}

/// Per-query result plus effort accounting for the experiment tables.
#[derive(Debug, Clone)]
pub struct QueryResult<Param> {
    /// Resolution.
    pub outcome: Outcome<Param>,
    /// CEGAR iterations consumed (forward runs).
    pub iterations: usize,
    /// Wall-clock time spent, microseconds.
    pub micros: u128,
}

/// Runs Algorithm 1 for a single query.
///
/// Starting from the unconstrained viable set, each iteration solves for a
/// minimum-cost abstraction, runs the forward analysis, and on failure
/// prunes the viable set with the backward meta-analysis's unviability
/// formula. Returns [`Outcome::Proven`] with an optimum abstraction,
/// [`Outcome::Impossible`] when the viable set empties, or
/// [`Outcome::Unresolved`] on budget exhaustion.
pub fn solve_query<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
) -> QueryResult<C::Param> {
    let start = Instant::now();
    let mut constraints: Vec<PFormula> = Vec::new();
    let mut iterations = 0;
    let outcome = loop {
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        match step(program, callees, client, query, config, &mut constraints) {
            StepResult::Proven { param, cost } => {
                iterations += 1;
                break Outcome::Proven { param, cost };
            }
            StepResult::Impossible => break Outcome::Impossible,
            StepResult::Refined { .. } => iterations += 1,
            StepResult::Unresolved(u) => {
                iterations += 1;
                break Outcome::Unresolved(u);
            }
        }
    };
    QueryResult { outcome, iterations, micros: start.elapsed().as_micros() }
}

/// One recorded CEGAR iteration of [`solve_query_logged`].
#[derive(Debug, Clone)]
pub struct IterationLog<Param> {
    /// The abstraction tried (a minimum of the viable set at the time).
    pub param: Param,
    /// Its cost.
    pub cost: u64,
    /// The unviability constraint learned from this iteration's
    /// counterexample (`None` on the final, proving iteration).
    pub learned: Option<PFormula>,
}

/// Like [`solve_query`], but records every iteration: which abstraction
/// was tried and what constraint the backward meta-analysis learned —
/// the data behind explanations like the `impossibility` example.
pub fn solve_query_logged<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
) -> (QueryResult<C::Param>, Vec<IterationLog<C::Param>>) {
    let start = Instant::now();
    let mut constraints: Vec<PFormula> = Vec::new();
    let mut log = Vec::new();
    let mut iterations = 0;
    let outcome = loop {
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        match step(program, callees, client, query, config, &mut constraints) {
            StepResult::Proven { param, cost } => {
                iterations += 1;
                log.push(IterationLog { param: param.clone(), cost, learned: None });
                break Outcome::Proven { param, cost };
            }
            StepResult::Impossible => break Outcome::Impossible,
            StepResult::Refined { param, cost } => {
                iterations += 1;
                log.push(IterationLog {
                    param,
                    cost,
                    learned: constraints.last().cloned(),
                });
            }
            StepResult::Unresolved(u) => {
                iterations += 1;
                break Outcome::Unresolved(u);
            }
        }
    };
    (
        QueryResult { outcome, iterations, micros: start.elapsed().as_micros() },
        log,
    )
}

pub(crate) enum StepResult<Param> {
    Proven { param: Param, cost: u64 },
    Impossible,
    Refined { param: Param, cost: u64 },
    Unresolved(Unresolved),
}

/// One CEGAR iteration: pick minimum viable `p`, run forward, either prove
/// or learn a new unviability constraint (pushed onto `constraints`).
pub(crate) fn step<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    constraints: &mut Vec<PFormula>,
) -> StepResult<C::Param> {
    let n = client.n_atoms();
    let costs = (0..n).map(|i| client.atom_cost(i)).collect();
    let mut solver = MinCostSolver::new(n, costs);
    for c in constraints.iter() {
        solver.require(c.clone());
    }
    let Some(model) = solver.solve() else {
        return StepResult::Impossible;
    };
    let p = client.param_of_model(&model.assignment);
    let d0 = client.initial_state();

    let run = match rhs::run(
        program,
        &crate::client::AsAnalysis(client),
        &p,
        d0.clone(),
        callees,
        config.rhs_limits,
    ) {
        Ok(r) => r,
        Err(_) => return StepResult::Unresolved(Unresolved::AnalysisTooBig),
    };

    let failing = |d: &C::State| query.not_q.holds(&p, d);
    let Some(trace) = run.witness(query.point, &failing) else {
        return StepResult::Proven { param: p, cost: model.cost };
    };
    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();

    let dnf = match analyze_trace(&AsMeta(client), &p, &d0, &atoms, &query.not_q, &config.beam) {
        Ok(f) => f,
        Err(e) => return StepResult::Unresolved(Unresolved::MetaFailure(e.to_string())),
    };
    let phi = restrict(&dnf, &d0);
    debug_assert!(
        phi.eval(&model.assignment),
        "backward analysis failed to eliminate the current abstraction (Theorem 3.1)"
    );
    constraints.push(PFormula::not(phi));
    StepResult::Refined { param: p, cost: model.cost }
}

impl<Param> std::fmt::Display for Outcome<Param> {
    /// One-line, user-facing verdict (details via `Debug`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Proven { cost, .. } => write!(f, "proven with optimum |p| = {cost}"),
            Outcome::Impossible => write!(f, "impossible for every abstraction"),
            Outcome::Unresolved(u) => write!(f, "unresolved: {u}"),
        }
    }
}

impl std::fmt::Display for Unresolved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unresolved::IterationBudget => write!(f, "iteration budget exhausted"),
            Unresolved::AnalysisTooBig => write!(f, "forward analysis exceeded its fact budget"),
            Unresolved::MetaFailure(m) => write!(f, "meta-analysis failure: {m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use pda_analysis::PointsTo;

    fn solve(src: &str, label: &str) -> (pda_lang::Program, QueryResult<pda_util::BitSet>) {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label(label).unwrap();
        let query = client.query(&program, q);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        (program, r)
    }

    #[test]
    fn proves_with_minimum_abstraction() {
        let (program, r) = solve(
            r#"
            fn main() {
                var x, y, z;
                x = null;
                z = x;      // tracking z is unnecessary
                y = x;
                query q: local y;
            }
            "#,
            "q",
        );
        match r.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(cost, 2);
                let x = program.main_var("x").unwrap();
                let y = program.main_var("y").unwrap();
                let z = program.main_var("z").unwrap();
                assert!(param.contains(x.0 as usize));
                assert!(param.contains(y.0 as usize));
                assert!(!param.contains(z.0 as usize));
            }
            other => panic!("expected proof, got {other:?}"),
        }
        assert!(r.iterations >= 2); // starts from the empty abstraction
    }

    #[test]
    fn impossible_query_detected() {
        let (_, r) = solve(
            r#"
            class C {}
            fn main() {
                var y;
                y = new C;
                query q: local y;   // y is definitely NOT null
            }
            "#,
            "q",
        );
        assert_eq!(r.outcome, Outcome::Impossible);
    }

    #[test]
    fn trivially_true_query_proved_with_empty_abstraction() {
        let (_, r) = solve(
            r#"
            fn main() {
                var y;
                y = null;
                y = null;
                query q: local y;
            }
            "#,
            "q",
        );
        match r.outcome {
            // Tracking y alone suffices; nothing cheaper can prove it
            // (the empty abstraction can't track y's nullness).
            Outcome::Proven { cost, .. } => assert_eq!(cost, 1),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn proof_through_call_and_loop() {
        let (program, r) = solve(
            r#"
            fn id(a) { return a; }
            fn main() {
                var x, y;
                x = null;
                while (*) { y = id(x); }
                y = x;
                query q: local y;
            }
            "#,
            "q",
        );
        match r.outcome {
            Outcome::Proven { param, .. } => {
                let x = program.main_var("x").unwrap();
                assert!(param.contains(x.0 as usize));
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn logged_run_has_monotone_costs_and_learned_constraints() {
        let (program, _) = solve(
            r#"
            fn main() {
                var x, y, z;
                x = null;
                z = x;
                y = x;
                query q: local y;
            }
            "#,
            "q",
        );
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let (r, log) = crate::tracer::solve_query_logged(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        assert!(matches!(r.outcome, Outcome::Proven { .. }));
        assert_eq!(log.len(), r.iterations);
        // Every non-final iteration learned a constraint; the final did not.
        for (i, entry) in log.iter().enumerate() {
            assert_eq!(entry.learned.is_none(), i + 1 == log.len());
        }
        // Minimum viable cost can only grow as the viable set shrinks.
        assert!(log.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn iteration_budget_reported() {
        let program = pda_lang::parse_program(
            r#"
            fn main() {
                var x, y;
                x = null;
                y = x;
                query q: local y;
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let config = TracerConfig { max_iters: 1, ..TracerConfig::default() };
        let r = solve_query(&program, &|c| pa.callees(c).to_vec(), &client, &query, &config);
        assert_eq!(r.outcome, Outcome::Unresolved(Unresolved::IterationBudget));
    }
}
