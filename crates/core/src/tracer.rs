//! The single-query TRACER loop (Algorithm 1).

use crate::client::{AsMeta, Query, TracerClient};
use pda_dataflow::{rhs, Interrupt, RhsLimits};
use pda_lang::{CallId, MethodId, Program};
use pda_meta::{
    analyze_trace_interned_jobs, analyze_trace_obs, restrict, BeamConfig, InternCache, MetaStats,
    Primitive,
};
use pda_solver::{Bdd, MinCostSolver, Model, PFormula};
use pda_util::{
    fault_point, Counter, Deadline, DeadlineExceeded, Event, MemBudget, ObsRegistry, Span,
    SpanKind,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-query observability context threaded through the CEGAR loop: a
/// counter/span registry plus an ordered buffer of trace [`Event`]s.
///
/// Events are *buffered*, not written — the batch driver drains each
/// query's buffer to the [`pda_util::TraceSink`] in query-index order, so
/// the emitted stream is deterministic across worker schedules. With
/// `trace` off, [`QueryObs::emit`] is a no-op and the buffer stays empty.
#[derive(Debug, Clone)]
pub struct QueryObs {
    /// Counter and span registry for this query.
    pub reg: ObsRegistry,
    /// Buffered trace events, in emission order.
    pub events: Vec<Event>,
    /// The query's index within its batch (0 for lone queries).
    pub query: u64,
    trace: bool,
}

impl QueryObs {
    /// A context for query number `query`. `trace` enables event
    /// buffering; `timed` enables span wall-clock measurement (counters
    /// are always collected).
    pub fn new(query: u64, trace: bool, timed: bool) -> QueryObs {
        let mut reg = ObsRegistry::default();
        reg.set_timed(timed);
        QueryObs { reg, events: Vec::new(), query, trace }
    }

    /// A context that collects counters only (no events, no span timing).
    pub fn untraced() -> QueryObs {
        QueryObs::new(0, false, false)
    }

    /// Whether event buffering is on.
    pub fn tracing(&self) -> bool {
        self.trace
    }

    /// Buffers `ev` if tracing is enabled.
    pub fn emit(&mut self, ev: Event) {
        if self.trace {
            self.events.push(ev);
        }
    }
}

/// Renders a solver model's assignment as a `01` bitstring for the
/// `param_chosen` trace event (`assignment[i]` is bit `i`, printed left to
/// right).
fn bitstring(assignment: &[bool]) -> String {
    assignment.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Which implementation of the backward meta-analysis the driver runs.
///
/// Both produce bit-identical learned constraints (and hence outcomes) —
/// the tree kernel is the reference semantics retained as a differential
/// oracle, the interned kernel is the production hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetaKernel {
    /// Packed-cube kernel with intern table, subsumption signatures, and
    /// the per-trace wp memo ([`pda_meta::analyze_trace_interned`]).
    #[default]
    Interned,
    /// The tree-`Formula` reference path ([`pda_meta::analyze_trace`]).
    Tree,
}

/// Which engine maintains the viable set (`⋀ᵢ ¬φᵢ`) and extracts its
/// minimum-cost models.
///
/// Both engines are bit-identical on verdicts, iteration counts, and
/// chosen optimum models: they share the canonical tie-break (the
/// lexicographically least assignment among equal-cost minima), so the
/// choice is purely a performance/memory trade-off. DPLL rebuilds a CNF
/// per CEGAR iteration; the BDD stays resident across iterations and
/// absorbs each learned constraint with an incremental conjoin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViableEngine {
    /// Per-iteration Tseitin CNF + DPLL branch and bound
    /// ([`MinCostSolver`]). The reference engine and the memory-pressure
    /// fallback.
    #[default]
    Dpll,
    /// Resident ROBDD over the parameter atoms ([`Bdd`]): conjoin-only
    /// updates, constant-time emptiness, cached min-cost sweep.
    Bdd,
}

impl ViableEngine {
    /// Parses the `--viable-engine` / `PDA_VIABLE_ENGINE` spelling.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<ViableEngine, String> {
        match s {
            "dpll" => Ok(ViableEngine::Dpll),
            "bdd" => Ok(ViableEngine::Bdd),
            other => Err(format!("unknown viable engine '{other}' (expected dpll|bdd)")),
        }
    }
}

impl std::fmt::Display for ViableEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViableEngine::Dpll => write!(f, "dpll"),
            ViableEngine::Bdd => write!(f, "bdd"),
        }
    }
}

/// Per-query viable-set solver state, threaded through the CEGAR loop so
/// the BDD engine's graph survives across iterations. The constraint
/// `Vec` stays the source of truth — the BDD mirrors it conjoin-by-conjoin
/// (`synced` counts how many constraints are already absorbed), which is
/// also what lets the governor drop the whole arena and fall back to DPLL
/// mid-query without losing anything.
pub(crate) struct ViableState {
    engine: ViableEngine,
    bdd: Option<Bdd>,
    synced: usize,
}

impl ViableState {
    pub(crate) fn new(engine: ViableEngine) -> ViableState {
        ViableState { engine, bdd: None, synced: 0 }
    }

    /// Estimated retained bytes of the resident BDD (0 under DPLL);
    /// folded into the governor's retained-state accounting each
    /// iteration boundary.
    pub(crate) fn approx_bytes(&self) -> u64 {
        self.bdd.as_ref().map_or(0, |b| b.approx_bytes() as u64)
    }

    /// Memory-governor degradation: drop the BDD arena and run the rest
    /// of the query on DPLL. Returns whether anything changed.
    pub(crate) fn degrade_to_dpll(&mut self) -> bool {
        let changed = self.engine == ViableEngine::Bdd;
        self.engine = ViableEngine::Dpll;
        self.bdd = None;
        self.synced = 0;
        changed
    }

    /// Minimum-cost model of `⋀ constraints` (canonical tie-break), or
    /// `None` when the viable set is empty.
    ///
    /// Under [`ViableEngine::Bdd`] only constraints beyond `synced` are
    /// conjoined (the resident graph already holds the prefix) and the
    /// cached cost sweep re-runs only after a conjoin; node growth is
    /// reported to [`Counter::SolverNodes`] for parity with the DPLL
    /// search-node counter.
    ///
    /// # Errors
    ///
    /// Returns [`DeadlineExceeded`] when `deadline` expires mid-solve.
    pub(crate) fn solve<C: crate::client::TracerClient>(
        &mut self,
        client: &C,
        constraints: &[PFormula],
        deadline: Deadline,
        obs: &mut ObsRegistry,
        budget: &MemBudget,
    ) -> Result<Option<Model>, DeadlineExceeded> {
        let n = client.n_atoms();
        match self.engine {
            ViableEngine::Dpll => {
                let costs = (0..n).map(|i| client.atom_cost(i)).collect();
                let mut solver = MinCostSolver::new(n, costs);
                for c in constraints.iter() {
                    solver.require(c.clone());
                }
                solver.solve_within_budgeted(deadline, obs, Some(budget))
            }
            ViableEngine::Bdd => {
                let span = Span::enter(obs, SpanKind::Solver);
                let result = (|| {
                    if deadline.expired() {
                        return Err(DeadlineExceeded);
                    }
                    let bdd = self.bdd.get_or_insert_with(|| {
                        Bdd::new(n, (0..n).map(|i| client.atom_cost(i)).collect())
                    });
                    let before = bdd.node_count();
                    for c in &constraints[self.synced..] {
                        bdd.conjoin(c);
                    }
                    self.synced = constraints.len();
                    obs.add(Counter::SolverNodes, (bdd.node_count() - before) as u64);
                    if deadline.expired() {
                        return Err(DeadlineExceeded);
                    }
                    Ok(bdd.solve())
                })();
                span.exit(obs);
                result
            }
        }
    }
}

/// Configuration of one TRACER run.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// The backward beam (the paper's `k`; default 5 per Figure 13).
    pub beam: BeamConfig,
    /// Maximum CEGAR iterations per query (the paper's 1000-minute
    /// timeout analogue).
    pub max_iters: usize,
    /// Forward-engine fact budget.
    pub rhs_limits: RhsLimits,
    /// Per-query wall-clock budget (the paper's Section 6 timeout); the
    /// loop, tabulation, and solver all poll the same deadline. `None`
    /// (the default) means no wall-clock limit.
    pub timeout: Option<Duration>,
    /// Fact-budget escalation ladder applied on forward-run `TooBig`.
    pub escalation: Escalation,
    /// Backward meta-analysis kernel (default: interned).
    pub kernel: MetaKernel,
    /// Per-query memory budget in estimated bytes. Under sustained
    /// pressure the memory governor walks its degradation ladder (evict
    /// memos, shrink the beam, shrink the fact budget) before resolving
    /// as [`Unresolved::MemBudgetExceeded`]. `None` (the default) keeps
    /// byte accounting on but never degrades.
    pub mem_budget: Option<u64>,
    /// In-query data-parallelism degree for the interned kernel's cube
    /// loops (`--meta-jobs` / `PDA_META_JOBS`). `1` (the default) is the
    /// fully serial kernel; higher values fan the widest cube products
    /// and subsumption scans out over a scoped thread pool with a
    /// deterministic merge, so results stay bit-identical at any value.
    /// The tree kernel ignores it.
    pub meta_jobs: usize,
    /// Viable-set engine (`--viable-engine` / `PDA_VIABLE_ENGINE`;
    /// default DPLL). Bit-identical outcomes either way — see
    /// [`ViableEngine`].
    pub viable_engine: ViableEngine,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            beam: BeamConfig::default(),
            max_iters: 200,
            rhs_limits: RhsLimits::default(),
            timeout: None,
            escalation: Escalation::default(),
            kernel: MetaKernel::default(),
            mem_budget: None,
            meta_jobs: 1,
            viable_engine: ViableEngine::default(),
        }
    }
}

/// Geometric fact-budget escalation: when a forward run returns `TooBig`,
/// retry the same CEGAR step under `base * factor^attempt` facts, up to
/// `retries` retries. The ladder is deterministic, so escalated runs stay
/// reproducible (and cacheable) across schedules.
///
/// The default performs no retries, preserving the pre-escalation
/// behaviour; `Escalation::standard()` is the 1x → 4x → 16x ladder from
/// the issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Escalation {
    /// Number of retries after the initial attempt (0 = no escalation).
    pub retries: u32,
    /// Geometric growth factor per retry (≥ 2 to make progress).
    pub factor: u32,
}

impl Default for Escalation {
    fn default() -> Self {
        Escalation { retries: 0, factor: 4 }
    }
}

impl Escalation {
    /// The 1x → 4x → 16x ladder: two retries, factor 4.
    pub fn standard() -> Self {
        Escalation { retries: 2, factor: 4 }
    }

    /// Fact budget for the given attempt (0 = the initial run), with the
    /// growth saturating instead of overflowing.
    pub fn budget(&self, base: usize, attempt: u32) -> usize {
        (self.factor as usize)
            .checked_pow(attempt)
            .and_then(|m| base.checked_mul(m))
            .unwrap_or(usize::MAX)
    }
}

/// How a query got resolved (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<Param> {
    /// A cheapest abstraction proving the query.
    Proven {
        /// The optimum abstraction.
        param: Param,
        /// Its cost (`|p|` in the paper's preorders).
        cost: u64,
    },
    /// No abstraction in the family proves the query.
    Impossible,
    /// Budget exhausted before resolution.
    Unresolved(Unresolved),
}

/// Why a query went unresolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unresolved {
    /// Hit the CEGAR iteration budget.
    IterationBudget,
    /// A forward run exceeded its fact budget (after any escalation).
    AnalysisTooBig,
    /// The backward meta-analysis reported an internal soundness failure.
    MetaFailure(String),
    /// The query's wall-clock deadline expired.
    DeadlineExceeded,
    /// The engine or client panicked while solving this query; the
    /// payload message is preserved. Produced only by the batch driver's
    /// panic isolation — a lone [`solve_query`] still propagates panics.
    EngineFault(String),
    /// The memory governor exhausted its degradation ladder (memo
    /// eviction, beam shrinking, fact-budget shrinking) and the query
    /// still exceeded its byte budget — or, in a batch, the query's
    /// reservation can never fit the shared pool.
    MemBudgetExceeded,
    /// The batch was draining (graceful shutdown) before this query
    /// started; no work was attempted. Drained queries are never written
    /// to a checkpoint, so a resumed run solves them afresh and its
    /// outcome lines match an uninterrupted run's.
    Drained,
}

/// Per-query result plus effort accounting for the experiment tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult<Param> {
    /// Resolution.
    pub outcome: Outcome<Param>,
    /// CEGAR iterations consumed (forward runs).
    pub iterations: usize,
    /// Wall-clock time spent, microseconds.
    pub micros: u128,
    /// Fact-budget escalation retries consumed across all iterations.
    pub escalations: u32,
    /// Memory-governor degradation-ladder steps applied (0 when the
    /// query never came under memory pressure).
    pub degradations: u32,
    /// Transient-fault retry attempts consumed before this result (the
    /// batch scheduler's deterministic backoff ladder; 0 outside
    /// retry-enabled drivers).
    pub retries: u32,
    /// Backward/meta-phase effort counters summed over all iterations
    /// (all-zero except `micros` under [`MetaKernel::Tree`]).
    pub meta: MetaStats,
}

/// Runs Algorithm 1 for a single query.
///
/// Starting from the unconstrained viable set, each iteration solves for a
/// minimum-cost abstraction, runs the forward analysis, and on failure
/// prunes the viable set with the backward meta-analysis's unviability
/// formula. Returns [`Outcome::Proven`] with an optimum abstraction,
/// [`Outcome::Impossible`] when the viable set empties, or
/// [`Outcome::Unresolved`] on budget exhaustion.
pub fn solve_query<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
) -> QueryResult<C::Param> {
    solve_query_within(program, callees, client, query, config, Deadline::NEVER)
}

/// The deadline a query actually runs under: the earliest of the
/// configured per-query timeout, the query's own limit override, and an
/// outer (batch) deadline.
pub(crate) fn effective_deadline<P>(
    query: &Query<P>,
    config: &TracerConfig,
    outer: Deadline,
) -> Deadline {
    Deadline::timeout(config.timeout)
        .min(Deadline::timeout(query.limits.timeout))
        .min(outer)
}

/// The memory budget a query actually runs under: the query's own limit
/// override, else the configured per-query budget.
pub(crate) fn effective_mem_budget<P>(query: &Query<P>, config: &TracerConfig) -> Option<u64> {
    query.limits.mem_budget.or(config.mem_budget)
}

/// Deterministic node-count byte estimate of a learned constraint.
fn pformula_bytes(f: &PFormula) -> u64 {
    fn nodes(f: &PFormula) -> u64 {
        match f {
            PFormula::True | PFormula::False | PFormula::Lit { .. } => 1,
            PFormula::Not(g) => 1u64.saturating_add(nodes(g)),
            PFormula::And(fs) | PFormula::Or(fs) => {
                fs.iter().fold(1u64, |a, g| a.saturating_add(nodes(g)))
            }
        }
    }
    nodes(f).saturating_mul(std::mem::size_of::<PFormula>() as u64)
}

/// Rough per-cube byte estimate used to account the backward kernels'
/// transient cube traffic (both kernels report [`Counter::CubesBuilt`]).
pub(crate) const CUBE_BYTES: u64 = 96;

/// The last rung of the degradation ladder; sustained pressure past it
/// resolves the query as [`Unresolved::MemBudgetExceeded`].
const LADDER_RUNGS: u32 = 8;

/// The per-query memory governor: owns the query's byte budget (possibly
/// cascading into a shared batch pool), polls it at CEGAR iteration
/// boundaries, and under pressure walks a deterministic degradation
/// ladder — (1) evict `Unstable` wp-memo entries, (2) reset the
/// [`InternCache`], (3–4) quarter `max_cubes`, (5–6) halve the beam `k`
/// (both sound by Theorem 3: a narrower beam can cost precision of the
/// *optimum*, never soundness of a verdict), (7–8) shrink the base fact
/// budget — before giving up.
///
/// The ladder escalates only under *sustained* pressure: a rung whose
/// relief lasts until the next boundary restarts the ladder at eviction,
/// so transient spikes cost cache warmth, not beam width. Every pressure
/// decision is a pure function of deterministic byte estimates, so
/// governed runs reproduce bit-identically.
pub(crate) struct Governor {
    budget: MemBudget,
    level: u32,
    prev_pressure: bool,
    /// Ladder rungs applied so far (mirrors [`Counter::Degradations`]).
    pub(crate) degradations: u32,
    /// The effective (possibly shrunken) backward beam.
    pub(crate) beam: BeamConfig,
    /// The effective (possibly shrunken) base fact budget.
    pub(crate) base_facts: usize,
    factor: usize,
    last_retained: u64,
}

impl Governor {
    /// A governor for one query: `pool` is the shared batch pool charges
    /// cascade into (admission control reads it; it never throttles a
    /// running query).
    pub(crate) fn new<P>(
        query: &Query<P>,
        config: &TracerConfig,
        pool: Option<Arc<MemBudget>>,
    ) -> Governor {
        let limit = effective_mem_budget(query, config);
        let budget = match pool {
            Some(p) => MemBudget::with_parent(limit, p),
            None => MemBudget::new(limit),
        };
        Governor {
            budget,
            level: 0,
            prev_pressure: false,
            degradations: 0,
            beam: config.beam,
            base_facts: query.limits.max_facts.unwrap_or(config.rhs_limits.max_facts),
            factor: (config.escalation.factor as usize).max(2),
            last_retained: 0,
        }
    }

    pub(crate) fn budget(&self) -> &MemBudget {
        &self.budget
    }

    /// Re-estimates the bytes retained across iterations (the intern
    /// cache, the learned constraint set, and the viable engine's
    /// resident BDD arena if any) and charges/releases the delta, so the
    /// ledger's `used()` tracks retained state between boundaries while
    /// transient charges come and go on top of it.
    pub(crate) fn account_retained<P: Primitive>(
        &mut self,
        icache: &InternCache<P>,
        constraints: &[PFormula],
        viable: &ViableState,
        obs: &mut ObsRegistry,
    ) {
        let retained = icache
            .approx_bytes()
            .saturating_add(
                constraints.iter().fold(0u64, |acc, c| acc.saturating_add(pformula_bytes(c))),
            )
            .saturating_add(viable.approx_bytes());
        if retained > self.last_retained {
            let delta = retained - self.last_retained;
            self.budget.charge(delta);
            obs.add(Counter::MemCharged, delta);
        } else {
            self.budget.release(self.last_retained - retained);
        }
        self.last_retained = retained;
    }

    /// Polls the consumed pressure signal at an iteration boundary and
    /// applies at most one ladder rung. Returns `true` when the ladder is
    /// exhausted (the caller resolves [`Unresolved::MemBudgetExceeded`]).
    pub(crate) fn poll<P: Primitive>(
        &mut self,
        icache: &mut InternCache<P>,
        viable: &mut ViableState,
        obs: &mut ObsRegistry,
    ) -> bool {
        if !self.budget.take_pressure() {
            self.prev_pressure = false;
            return false;
        }
        // Escalate only when the previous boundary was also under
        // pressure; relieved pressure restarts the ladder at eviction.
        self.level = if self.prev_pressure { self.level + 1 } else { 1 };
        self.prev_pressure = true;
        match self.level {
            1 => {
                let evicted = icache.evict_unstable();
                obs.add(Counter::MemEvictions, evicted);
            }
            2 => {
                // Drop both caches rebuilt on demand: the intern table and
                // the viable engine's BDD arena (the engine falls back to
                // DPLL for the rest of the query — sound, it re-solves the
                // same constraint Vec, just non-incrementally).
                fault_point("intern.reset");
                *icache = InternCache::new();
                if viable.degrade_to_dpll() {
                    obs.inc(Counter::MemEvictions);
                }
                obs.inc(Counter::MemEvictions);
            }
            3 | 4 => self.beam.max_cubes = (self.beam.max_cubes / 4).max(1),
            5 | 6 => self.beam.k = (self.beam.k / 2).max(1),
            7..=LADDER_RUNGS => self.base_facts = (self.base_facts / self.factor).max(1),
            _ => return true,
        }
        self.degradations += 1;
        obs.inc(Counter::Degradations);
        fault_point("governor.rung");
        false
    }
}

impl Drop for Governor {
    fn drop(&mut self) {
        // Whatever is still outstanding — retained-state charges, or
        // transient charges stranded by a panic — leaves the ledger (and,
        // via the cascade, the shared batch pool) when the query ends, so
        // a faulted query can never pin pool capacity.
        let outstanding = self.budget.used();
        self.budget.release(outstanding);
    }
}

/// Like [`solve_query`], but also bounded by an externally imposed
/// `outer` deadline (the batch driver's whole-batch budget).
pub fn solve_query_within<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    outer: Deadline,
) -> QueryResult<C::Param> {
    solve_query_observed(program, callees, client, query, config, outer, &mut QueryObs::untraced())
}

/// Like [`solve_query_within`], but collects spans, counters, and (if
/// enabled on `obs`) buffered trace events into the caller's [`QueryObs`].
///
/// The returned [`QueryResult::meta`] reflects only this call's counter
/// deltas, so an `obs` reused across queries still yields per-query stats.
pub fn solve_query_observed<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    outer: Deadline,
    obs: &mut QueryObs,
) -> QueryResult<C::Param> {
    solve_query_pooled(program, callees, client, query, config, outer, obs, None)
}

/// [`solve_query_observed`] with the query's byte charges additionally
/// cascading into a shared batch `pool` (admission-control accounting;
/// the pool never influences the running query's decisions).
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_query_pooled<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    outer: Deadline,
    obs: &mut QueryObs,
    pool: Option<Arc<MemBudget>>,
) -> QueryResult<C::Param> {
    let start = Instant::now();
    let entry = obs.reg.clone();
    let deadline = effective_deadline(query, config, outer);
    // Publish the query's deadline for out-of-band sleepers (injected
    // stalls, `Fault::Stall` clients) that sit outside the limit structs.
    let _ambient = deadline.enter_ambient();
    let mut constraints: Vec<PFormula> = Vec::new();
    let mut iterations = 0;
    let mut escalations = 0;
    let mut icache = InternCache::default();
    let mut viable = ViableState::new(config.viable_engine);
    let mut gov = Governor::new(query, config, pool);
    let outcome = loop {
        // One watchdog heartbeat per CEGAR iteration: a request that
        // stops beating is non-cooperatively stuck, not merely slow.
        pda_util::heartbeat::beat();
        if deadline.expired() {
            break Outcome::Unresolved(Unresolved::DeadlineExceeded);
        }
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        match step(
            program,
            callees,
            client,
            query,
            config,
            &mut constraints,
            deadline,
            &mut escalations,
            &mut icache,
            &mut viable,
            &mut gov,
            obs,
            iterations,
        ) {
            StepResult::Proven { param, cost } => {
                iterations += 1;
                break Outcome::Proven { param, cost };
            }
            StepResult::Impossible => break Outcome::Impossible,
            StepResult::Refined { .. } => {
                iterations += 1;
                gov.account_retained(&icache, &constraints, &viable, &mut obs.reg);
                if gov.poll(&mut icache, &mut viable, &mut obs.reg) {
                    break Outcome::Unresolved(Unresolved::MemBudgetExceeded);
                }
            }
            StepResult::Unresolved(u) => {
                iterations += 1;
                break Outcome::Unresolved(u);
            }
        }
    };
    obs.reg.add(Counter::Iterations, iterations as u64);
    obs.reg.add(Counter::Escalations, escalations as u64);
    let meta = MetaStats::from_obs(&obs.reg.since(&entry));
    QueryResult {
        outcome,
        iterations,
        micros: start.elapsed().as_micros(),
        escalations,
        degradations: gov.degradations,
        retries: 0,
        meta,
    }
}

/// One recorded CEGAR iteration of [`solve_query_logged`].
#[derive(Debug, Clone)]
pub struct IterationLog<Param> {
    /// The abstraction tried (a minimum of the viable set at the time).
    pub param: Param,
    /// Its cost.
    pub cost: u64,
    /// The unviability constraint learned from this iteration's
    /// counterexample (`None` on the final, proving iteration).
    pub learned: Option<PFormula>,
    /// Memory-governor ladder rungs applied at this iteration's boundary.
    pub degradations: u32,
    /// Backward/meta-phase effort counters for this iteration alone.
    pub meta: MetaStats,
}

/// Like [`solve_query`], but records every iteration: which abstraction
/// was tried and what constraint the backward meta-analysis learned —
/// the data behind explanations like the `impossibility` example.
pub fn solve_query_logged<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
) -> (QueryResult<C::Param>, Vec<IterationLog<C::Param>>) {
    let start = Instant::now();
    let deadline = effective_deadline(query, config, Deadline::NEVER);
    let mut constraints: Vec<PFormula> = Vec::new();
    let mut log = Vec::new();
    let mut iterations = 0;
    let mut escalations = 0;
    let mut obs = QueryObs::untraced();
    let mut icache = InternCache::default();
    let mut viable = ViableState::new(config.viable_engine);
    let mut gov = Governor::new(query, config, None);
    let outcome = loop {
        if deadline.expired() {
            break Outcome::Unresolved(Unresolved::DeadlineExceeded);
        }
        if iterations >= config.max_iters {
            break Outcome::Unresolved(Unresolved::IterationBudget);
        }
        let before = obs.reg.clone();
        match step(
            program,
            callees,
            client,
            query,
            config,
            &mut constraints,
            deadline,
            &mut escalations,
            &mut icache,
            &mut viable,
            &mut gov,
            &mut obs,
            iterations,
        ) {
            StepResult::Proven { param, cost } => {
                iterations += 1;
                log.push(IterationLog {
                    param: param.clone(),
                    cost,
                    learned: None,
                    degradations: 0,
                    meta: MetaStats::from_obs(&obs.reg.since(&before)),
                });
                break Outcome::Proven { param, cost };
            }
            StepResult::Impossible => break Outcome::Impossible,
            StepResult::Refined { param, cost } => {
                iterations += 1;
                let deg_before = gov.degradations;
                gov.account_retained(&icache, &constraints, &viable, &mut obs.reg);
                let exhausted = gov.poll(&mut icache, &mut viable, &mut obs.reg);
                log.push(IterationLog {
                    param,
                    cost,
                    learned: constraints.last().cloned(),
                    degradations: gov.degradations - deg_before,
                    meta: MetaStats::from_obs(&obs.reg.since(&before)),
                });
                if exhausted {
                    break Outcome::Unresolved(Unresolved::MemBudgetExceeded);
                }
            }
            StepResult::Unresolved(u) => {
                iterations += 1;
                break Outcome::Unresolved(u);
            }
        }
    };
    (
        QueryResult {
            outcome,
            iterations,
            micros: start.elapsed().as_micros(),
            escalations,
            degradations: gov.degradations,
            retries: 0,
            meta: MetaStats::from_obs(&obs.reg),
        },
        log,
    )
}

pub(crate) enum StepResult<Param> {
    Proven { param: Param, cost: u64 },
    Impossible,
    Refined { param: Param, cost: u64 },
    Unresolved(Unresolved),
}

/// The backward phase of one CEGAR iteration: meta-analyze the
/// counterexample trace under the configured kernel and restrict to a
/// parameter formula. Shared by the sequential and cached drivers; the
/// elapsed time and kernel counters accumulate into `obs`
/// ([`Counter::MetaMicros`] plus the kernel effort counters), and the
/// interned kernel's closure/memo state persists in `icache` across
/// iterations (the tree kernel ignores it).
#[allow(clippy::too_many_arguments)]
pub(crate) fn backward_phase<C: TracerClient>(
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    beam: &BeamConfig,
    p: &C::Param,
    d0: &C::State,
    atoms: &[pda_lang::Atom],
    icache: &mut InternCache<C::Prim>,
    obs: &mut ObsRegistry,
) -> Result<PFormula, pda_meta::MetaError> {
    let t0 = Instant::now();
    let phi = match config.kernel {
        MetaKernel::Interned => analyze_trace_interned_jobs(
            &AsMeta(client),
            p,
            d0,
            atoms,
            &query.not_q,
            beam,
            icache,
            obs,
            // Clamped to the machine, exactly like the batch scheduler's
            // worker count: on a box with fewer cores than the requested
            // degree, extra kernel threads only time-share and stretch
            // every wall-clock span (the jobs>1 meta-inflation pathology
            // this knob must never reintroduce). Direct kernel calls
            // stay unclamped so tests can exercise the parallel merge
            // paths on any machine.
            config.meta_jobs.min(crate::batch::default_jobs()),
        )
        .map(|out| out.restrict()),
        MetaKernel::Tree => {
            analyze_trace_obs(&AsMeta(client), p, d0, atoms, &query.not_q, beam, obs)
                .map(|dnf| restrict(&dnf, d0))
        }
    };
    // The backward phase is always timed (the perf acceptance criterion
    // compares kernels on it), so the span reuses the same measurement
    // instead of taking a second clock reading.
    let us = t0.elapsed().as_micros() as u64;
    obs.add(Counter::MetaMicros, us);
    obs.record_span_micros(SpanKind::Backward, us);
    phi
}

/// One CEGAR iteration: pick minimum viable `p`, run forward, either prove
/// or learn a new unviability constraint (pushed onto `constraints`).
///
/// `iter` is the zero-based iteration index, used only to tag trace
/// events; `obs` collects spans, counters, and buffered events. The
/// `iteration_start` event is emitted only once the solver has produced a
/// model, so its stream count equals the driver's iteration counter.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    query: &Query<C::Prim>,
    config: &TracerConfig,
    constraints: &mut Vec<PFormula>,
    deadline: Deadline,
    escalations: &mut u32,
    icache: &mut InternCache<C::Prim>,
    viable: &mut ViableState,
    gov: &mut Governor,
    obs: &mut QueryObs,
    iter: usize,
) -> StepResult<C::Param> {
    // The solver phase is always timed (like the backward phase): the
    // viable-engine acceptance criterion compares engines on it, so the
    // split must be visible in footers even with span timing off.
    let t0 = Instant::now();
    let solved = viable.solve(client, constraints, deadline, &mut obs.reg, gov.budget());
    obs.reg.add(Counter::SolverMicros, t0.elapsed().as_micros() as u64);
    let model = match solved {
        Ok(Some(m)) => m,
        Ok(None) => return StepResult::Impossible,
        Err(_) => return StepResult::Unresolved(Unresolved::DeadlineExceeded),
    };
    let q = obs.query;
    let iter = iter as u64;
    obs.emit(Event::IterationStart { query: q, iter });
    obs.emit(Event::ParamChosen {
        query: q,
        iter,
        cost: model.cost,
        param: bitstring(&model.assignment),
    });
    let p = client.param_of_model(&model.assignment);
    let d0 = client.initial_state();

    // Forward run under the escalation ladder: on TooBig, retry the same
    // abstraction with a geometrically larger fact budget while retries
    // remain and the deadline is alive. The governor may have shrunk the
    // base below the configured/query budget (ladder rungs 7–8).
    let base_facts = gov.base_facts;
    let mut attempt: u32 = 0;
    let fwd = Span::enter(&obs.reg, SpanKind::Forward);
    let run = loop {
        let limits = RhsLimits {
            max_facts: config.escalation.budget(base_facts, attempt),
            deadline,
        };
        match rhs::run(
            program,
            &crate::client::AsAnalysis(client),
            &p,
            d0.clone(),
            callees,
            limits,
        ) {
            Ok(r) => break r,
            Err(Interrupt::DeadlineExceeded) => {
                fwd.exit(&mut obs.reg);
                return StepResult::Unresolved(Unresolved::DeadlineExceeded);
            }
            Err(Interrupt::TooBig(_)) => {
                if attempt < config.escalation.retries && !deadline.expired() {
                    attempt += 1;
                    *escalations += 1;
                } else {
                    fwd.exit(&mut obs.reg);
                    return StepResult::Unresolved(Unresolved::AnalysisTooBig);
                }
            }
        }
    };
    fwd.exit(&mut obs.reg);
    obs.reg.inc(Counter::ForwardRuns);
    obs.emit(Event::ForwardDone { query: q, iter, facts: run.n_facts() as u64 });
    // The fact/reason tables live until the end of this step; charge them
    // so the boundary poll sees the iteration's true working set.
    let fwd_bytes = run.approx_bytes();
    gov.budget().charge(fwd_bytes);
    obs.reg.add(Counter::MemCharged, fwd_bytes);

    let failing = |d: &C::State| query.not_q.holds(&p, d);
    let Some(trace) = run.witness(query.point, &failing) else {
        gov.budget().release(fwd_bytes);
        return StepResult::Proven { param: p, cost: model.cost };
    };
    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();

    let before = obs.reg.clone();
    let phi = match backward_phase(
        client,
        query,
        config,
        &gov.beam,
        &p,
        &d0,
        &atoms,
        icache,
        &mut obs.reg,
    ) {
        Ok(phi) => phi,
        Err(e) => {
            gov.budget().release(fwd_bytes);
            return StepResult::Unresolved(Unresolved::MetaFailure(e.to_string()));
        }
    };
    let delta = obs.reg.since(&before);
    // Transient cube traffic of the backward phase, as a deterministic
    // per-cube estimate (charged and released in one breath — the peak
    // tracker still observes it).
    let cube_bytes = delta.get(Counter::CubesBuilt).saturating_mul(CUBE_BYTES);
    gov.budget().charge(cube_bytes);
    obs.reg.add(Counter::MemCharged, cube_bytes);
    gov.budget().release(cube_bytes);
    obs.emit(Event::MetaDone {
        query: q,
        iter,
        cubes: delta.get(Counter::CubesBuilt),
        wp_hits: delta.get(Counter::WpHits),
        wp_misses: delta.get(Counter::WpMisses),
    });
    obs.emit(Event::Pruned { query: q, iter, cubes: delta.get(Counter::ApproxDrops) });
    debug_assert!(
        phi.eval(&model.assignment),
        "backward analysis failed to eliminate the current abstraction (Theorem 3.1)"
    );
    let viable = Span::enter(&obs.reg, SpanKind::Viable);
    constraints.push(PFormula::not(phi));
    viable.exit(&mut obs.reg);
    gov.budget().release(fwd_bytes);
    StepResult::Refined { param: p, cost: model.cost }
}

impl<Param> std::fmt::Display for Outcome<Param> {
    /// One-line, user-facing verdict (details via `Debug`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Proven { cost, .. } => write!(f, "proven with optimum |p| = {cost}"),
            Outcome::Impossible => write!(f, "impossible for every abstraction"),
            Outcome::Unresolved(u) => write!(f, "unresolved: {u}"),
        }
    }
}

impl std::fmt::Display for Unresolved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unresolved::IterationBudget => write!(f, "iteration budget exhausted"),
            Unresolved::AnalysisTooBig => write!(f, "forward analysis exceeded its fact budget"),
            Unresolved::MetaFailure(m) => write!(f, "meta-analysis failure: {m}"),
            Unresolved::DeadlineExceeded => write!(f, "wall-clock deadline exceeded"),
            Unresolved::EngineFault(m) => write!(f, "engine fault: {m}"),
            Unresolved::MemBudgetExceeded => write!(f, "memory budget exceeded"),
            Unresolved::Drained => write!(f, "drained before start"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use pda_analysis::PointsTo;

    fn solve(src: &str, label: &str) -> (pda_lang::Program, QueryResult<pda_util::BitSet>) {
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label(label).unwrap();
        let query = client.query(&program, q);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        (program, r)
    }

    #[test]
    fn proves_with_minimum_abstraction() {
        let (program, r) = solve(
            r#"
            fn main() {
                var x, y, z;
                x = null;
                z = x;      // tracking z is unnecessary
                y = x;
                query q: local y;
            }
            "#,
            "q",
        );
        match r.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(cost, 2);
                let x = program.main_var("x").unwrap();
                let y = program.main_var("y").unwrap();
                let z = program.main_var("z").unwrap();
                assert!(param.contains(x.0 as usize));
                assert!(param.contains(y.0 as usize));
                assert!(!param.contains(z.0 as usize));
            }
            other => panic!("expected proof, got {other:?}"),
        }
        assert!(r.iterations >= 2); // starts from the empty abstraction
    }

    #[test]
    fn impossible_query_detected() {
        let (_, r) = solve(
            r#"
            class C {}
            fn main() {
                var y;
                y = new C;
                query q: local y;   // y is definitely NOT null
            }
            "#,
            "q",
        );
        assert_eq!(r.outcome, Outcome::Impossible);
    }

    #[test]
    fn trivially_true_query_proved_with_empty_abstraction() {
        let (_, r) = solve(
            r#"
            fn main() {
                var y;
                y = null;
                y = null;
                query q: local y;
            }
            "#,
            "q",
        );
        match r.outcome {
            // Tracking y alone suffices; nothing cheaper can prove it
            // (the empty abstraction can't track y's nullness).
            Outcome::Proven { cost, .. } => assert_eq!(cost, 1),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn proof_through_call_and_loop() {
        let (program, r) = solve(
            r#"
            fn id(a) { return a; }
            fn main() {
                var x, y;
                x = null;
                while (*) { y = id(x); }
                y = x;
                query q: local y;
            }
            "#,
            "q",
        );
        match r.outcome {
            Outcome::Proven { param, .. } => {
                let x = program.main_var("x").unwrap();
                assert!(param.contains(x.0 as usize));
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn logged_run_has_monotone_costs_and_learned_constraints() {
        let (program, _) = solve(
            r#"
            fn main() {
                var x, y, z;
                x = null;
                z = x;
                y = x;
                query q: local y;
            }
            "#,
            "q",
        );
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let (r, log) = crate::tracer::solve_query_logged(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        assert!(matches!(r.outcome, Outcome::Proven { .. }));
        assert_eq!(log.len(), r.iterations);
        // Every non-final iteration learned a constraint; the final did not.
        for (i, entry) in log.iter().enumerate() {
            assert_eq!(entry.learned.is_none(), i + 1 == log.len());
        }
        // Minimum viable cost can only grow as the viable set shrinks.
        assert!(log.windows(2).all(|w| w[0].cost <= w[1].cost));
    }

    #[test]
    fn iteration_budget_reported() {
        let program = pda_lang::parse_program(
            r#"
            fn main() {
                var x, y;
                x = null;
                y = x;
                query q: local y;
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let config = TracerConfig { max_iters: 1, ..TracerConfig::default() };
        let r = solve_query(&program, &|c| pa.callees(c).to_vec(), &client, &query, &config);
        assert_eq!(r.outcome, Outcome::Unresolved(Unresolved::IterationBudget));
    }

    const SIMPLE: &str = r#"
        fn main() {
            var x, y;
            x = null;
            y = x;
            query q: local y;
        }
    "#;

    fn simple_setup() -> (pda_lang::Program, PointsTo, NullClient) {
        let program = pda_lang::parse_program(SIMPLE).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        (program, pa, client)
    }

    #[test]
    fn zero_timeout_is_deterministic_deadline_exceeded() {
        let (program, pa, client) = simple_setup();
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        let config = TracerConfig {
            timeout: Some(std::time::Duration::ZERO),
            ..TracerConfig::default()
        };
        let r = solve_query(&program, &|c| pa.callees(c).to_vec(), &client, &query, &config);
        assert_eq!(r.outcome, Outcome::Unresolved(Unresolved::DeadlineExceeded));
        // Expired before any iteration: nothing was attempted.
        assert_eq!(r.iterations, 0);
        assert_eq!(r.escalations, 0);
    }

    #[test]
    fn query_limit_timeout_overrides_config() {
        let (program, pa, client) = simple_setup();
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q).with_limits(crate::client::QueryLimits {
            timeout: Some(std::time::Duration::ZERO),
            max_facts: None,
            mem_budget: None,
        });
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Unresolved(Unresolved::DeadlineExceeded));
    }

    #[test]
    fn escalation_ladder_recovers_from_too_big() {
        let (program, pa, client) = simple_setup();
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q).with_limits(crate::client::QueryLimits {
            timeout: None,
            max_facts: Some(1),
            mem_budget: None,
        });
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        // Without escalation a 1-fact budget is hopeless.
        let r = solve_query(&program, &callees, &client, &query, &TracerConfig::default());
        assert_eq!(r.outcome, Outcome::Unresolved(Unresolved::AnalysisTooBig));
        assert_eq!(r.escalations, 0);
        // With the ladder (1, 4, 16, ... facts) it climbs until the run fits.
        let config = TracerConfig {
            escalation: Escalation { retries: 10, factor: 4 },
            ..TracerConfig::default()
        };
        let r = solve_query(&program, &callees, &client, &query, &config);
        assert!(matches!(r.outcome, Outcome::Proven { .. }), "got {:?}", r.outcome);
        assert!(r.escalations > 0);
        // The baseline (no overrides) proves the same query without retries.
        let plain = client.query(&program, q);
        let r0 = solve_query(&program, &callees, &client, &plain, &config);
        assert_eq!(r0.escalations, 0);
        assert_eq!(r0.outcome, r.outcome);
    }

    #[test]
    fn escalation_budget_saturates() {
        let e = Escalation { retries: 200, factor: 4 };
        assert_eq!(e.budget(10, 0), 10);
        assert_eq!(e.budget(10, 1), 40);
        assert_eq!(e.budget(10, 2), 160);
        assert_eq!(e.budget(usize::MAX, 3), usize::MAX);
        assert_eq!(e.budget(10, 200), usize::MAX);
        assert_eq!(Escalation::standard(), Escalation { retries: 2, factor: 4 });
    }
}
