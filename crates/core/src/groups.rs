//! Multi-query solving with the paper's query-group optimization
//! (Section 6): queries whose accumulated unviable-abstraction sets are
//! identical share forward runs. "All queries start in the same group ...
//! but split into separate groups when different sets of unviable
//! abstractions are computed for them."

use crate::client::{Query, TracerClient};
use crate::tracer::{backward_phase, Outcome, QueryResult, TracerConfig, Unresolved};
use pda_dataflow::rhs;
use pda_lang::{CallId, MethodId, Program};
use pda_meta::{InternCache, MetaStats};
use pda_solver::{MinCostSolver, PFormula};
use std::collections::HashMap;
use std::time::Instant;

/// Effort accounting across a grouped run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Total forward (RHS) runs — with grouping this is shared across
    /// queries, the point of the optimization.
    pub forward_runs: usize,
    /// Total backward meta-analysis runs (one per failing query per
    /// iteration).
    pub backward_runs: usize,
    /// Maximum number of live groups observed.
    pub peak_groups: usize,
    /// Meta-kernel effort counters summed over the whole run (unlike the
    /// per-lineage [`QueryResult::meta`], nothing is double-counted).
    pub meta: MetaStats,
}

struct Group<P> {
    constraints: Vec<PFormula>,
    members: Vec<usize>,
    iters: usize,
    /// Accumulated wall time attributed to this group lineage, µs.
    micros: u128,
    /// Accumulated meta-kernel counters for this group lineage.
    meta: MetaStats,
    _marker: std::marker::PhantomData<P>,
}

/// Solves many queries of one client instance, sharing forward runs among
/// queries with identical constraint sets.
///
/// Returns one [`QueryResult`] per input query (same order) plus
/// [`GroupStats`]. Iteration counts and times are per group lineage: a
/// query resolved in a group that ran `n` forward analyses reports `n`
/// iterations, matching the paper's effect of "running our technique
/// separately for each query" while sharing the work.
pub fn solve_queries<C: TracerClient>(
    program: &Program,
    callees: &dyn Fn(CallId) -> Vec<MethodId>,
    client: &C,
    queries: &[Query<C::Prim>],
    config: &TracerConfig,
) -> (Vec<QueryResult<C::Param>>, GroupStats) {
    let mut results: Vec<Option<QueryResult<C::Param>>> = vec![None; queries.len()];
    let mut stats = GroupStats::default();
    // One interned-kernel cache for the whole grouped run: all queries
    // share the client, so the closure and wp memo amortize across
    // members and group lineages alike.
    let mut icache: InternCache<C::Prim> = InternCache::new();
    let mut active: Vec<Group<C::Prim>> = Vec::new();
    if !queries.is_empty() {
        active.push(Group {
            constraints: Vec::new(),
            members: (0..queries.len()).collect(),
            iters: 0,
            micros: 0,
            meta: MetaStats::default(),
            _marker: std::marker::PhantomData,
        });
    }

    while let Some(mut group) = active.pop() {
        stats.peak_groups = stats.peak_groups.max(active.len() + 1);
        let started = Instant::now();

        let resolve = |results: &mut Vec<Option<QueryResult<C::Param>>>,
                       q: usize,
                       outcome: Outcome<C::Param>,
                       group: &Group<C::Prim>,
                       extra: u128| {
            results[q] = Some(QueryResult {
                outcome,
                iterations: group.iters,
                micros: group.micros + extra,
                escalations: 0,
                degradations: 0,
                retries: 0,
                meta: group.meta,
            });
        };

        // Viable-set check.
        let n = client.n_atoms();
        let costs = (0..n).map(|i| client.atom_cost(i)).collect();
        let mut solver = MinCostSolver::new(n, costs);
        for c in &group.constraints {
            solver.require(c.clone());
        }
        let Some(model) = solver.solve() else {
            let extra = started.elapsed().as_micros();
            for &q in &group.members {
                resolve(&mut results, q, Outcome::Impossible, &group, extra);
            }
            continue;
        };

        if group.iters >= config.max_iters {
            let extra = started.elapsed().as_micros();
            for &q in &group.members {
                resolve(
                    &mut results,
                    q,
                    Outcome::Unresolved(Unresolved::IterationBudget),
                    &group,
                    extra,
                );
            }
            continue;
        }

        // One shared forward run.
        let p = client.param_of_model(&model.assignment);
        let d0 = client.initial_state();
        group.iters += 1;
        stats.forward_runs += 1;
        let run = match rhs::run(
            program,
            &crate::client::AsAnalysis(client),
            &p,
            d0.clone(),
            callees,
            config.rhs_limits,
        ) {
            Ok(r) => r,
            Err(interrupt) => {
                let u = match interrupt {
                    pda_dataflow::Interrupt::TooBig(_) => Unresolved::AnalysisTooBig,
                    pda_dataflow::Interrupt::DeadlineExceeded => Unresolved::DeadlineExceeded,
                };
                let extra = started.elapsed().as_micros();
                for &q in &group.members {
                    resolve(&mut results, q, Outcome::Unresolved(u.clone()), &group, extra);
                }
                continue;
            }
        };

        // Judge each member; failing members learn their own constraint.
        let mut buckets: HashMap<String, (PFormula, Vec<usize>)> = HashMap::new();
        let mut member_outcomes: Vec<(usize, Option<Outcome<C::Param>>)> = Vec::new();
        let mut obs = pda_util::ObsRegistry::default();
        for &q in &group.members {
            let query = &queries[q];
            let failing = |d: &C::State| query.not_q.holds(&p, d);
            match run.witness(query.point, &failing) {
                None => {
                    member_outcomes.push((
                        q,
                        Some(Outcome::Proven { param: p.clone(), cost: model.cost }),
                    ));
                }
                Some(trace) => {
                    let atoms: Vec<pda_lang::Atom> = trace.iter().map(|s| s.atom).collect();
                    stats.backward_runs += 1;
                    match backward_phase(
                        client,
                        query,
                        config,
                        &config.beam,
                        &p,
                        &d0,
                        &atoms,
                        &mut icache,
                        &mut obs,
                    ) {
                        Ok(phi) => {
                            let constraint = PFormula::not(phi);
                            let key = format!("{constraint:?}");
                            buckets
                                .entry(key)
                                .or_insert_with(|| (constraint, Vec::new()))
                                .1
                                .push(q);
                            member_outcomes.push((q, None));
                        }
                        Err(e) => {
                            member_outcomes.push((
                                q,
                                Some(Outcome::Unresolved(Unresolved::MetaFailure(e.to_string()))),
                            ));
                        }
                    }
                }
            }
        }

        group.micros += started.elapsed().as_micros();
        let delta = MetaStats::from_obs(&obs);
        group.meta.merge(&delta);
        stats.meta.merge(&delta);
        for (q, outcome) in member_outcomes {
            if let Some(o) = outcome {
                resolve(&mut results, q, o, &group, 0);
            }
        }
        // Spawn successor groups, sorted for determinism.
        let mut succ: Vec<(String, (PFormula, Vec<usize>))> = buckets.into_iter().collect();
        succ.sort_by(|a, b| a.0.cmp(&b.0));
        for (_, (constraint, members)) in succ {
            let mut constraints = group.constraints.clone();
            constraints.push(constraint);
            active.push(Group {
                constraints,
                members,
                iters: group.iters,
                micros: group.micros,
                meta: group.meta,
                _marker: std::marker::PhantomData,
            });
        }
    }

    (
        results
            .into_iter()
            .map(|r| r.expect("every query resolved or budgeted"))
            .collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::NullClient;
    use pda_analysis::PointsTo;

    #[test]
    fn grouped_matches_individual_and_shares_runs() {
        let program = pda_lang::parse_program(
            r#"
            class C {}
            fn main() {
                var x, y, z, w;
                x = null;
                y = x;
                z = x;
                w = new C;
                query q1: local y;
                query q2: local z;
                query q3: local w;
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let queries: Vec<_> = program
            .queries
            .iter_enumerated()
            .map(|(qid, _)| client.query(&program, qid))
            .collect();
        let config = TracerConfig::default();
        let (grouped, stats) =
            solve_queries(&program, &|c| pa.callees(c).to_vec(), &client, &queries, &config);

        // Individual runs agree on outcomes.
        for (query, gr) in queries.iter().zip(&grouped) {
            let ind = crate::tracer::solve_query(
                &program,
                &|c| pa.callees(c).to_vec(),
                &client,
                query,
                &config,
            );
            match (&ind.outcome, &gr.outcome) {
                (Outcome::Proven { cost: a, .. }, Outcome::Proven { cost: b, .. }) => {
                    assert_eq!(a, b)
                }
                (x, y) => assert_eq!(x, y),
            }
        }
        // Grouping shares at least the first forward run among all three
        // queries.
        let individual_runs: usize = queries
            .iter()
            .map(|q| {
                crate::tracer::solve_query(
                    &program,
                    &|c| pa.callees(c).to_vec(),
                    &client,
                    q,
                    &config,
                )
                .iterations
            })
            .sum();
        assert!(stats.forward_runs < individual_runs);
        assert!(stats.peak_groups >= 2); // q3 (impossible) splits from q1/q2
    }

    #[test]
    fn empty_query_set() {
        let program = pda_lang::parse_program("fn main() { }").unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let (results, stats) = solve_queries(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &[],
            &TracerConfig::default(),
        );
        assert!(results.is_empty());
        assert_eq!(stats.forward_runs, 0);
    }
}
