//! Fault injection for exercising TRACER's failure paths.
//!
//! Production clients don't panic, diverge, or return unsound weakest
//! preconditions — so the resilience machinery (panic isolation,
//! deadlines, [`crate::tracer::Unresolved::MetaFailure`]) would otherwise
//! go untested. [`FaultInjectingClient`] wraps any [`TracerClient`] and
//! misbehaves *on demand*, per query:
//!
//! * [`Fault::Panic`] — the first evaluation of the query's failure
//!   condition panics, as a buggy client `transfer`/`holds` would;
//! * [`Fault::Stall`] — the first evaluation sleeps, simulating a
//!   diverging client so wall-clock deadlines have something to catch;
//! * [`Fault::BreakWp`] — the weakest precondition of the tripped
//!   primitive is unsound (constant `true`), which the backward
//!   meta-analysis detects as a broken Theorem 3 membership invariant and
//!   reports as [`MetaFailure`](crate::tracer::Unresolved::MetaFailure).
//!
//! Faults are carried *inside the query formula* (a [`FaultPrim::Trip`]
//! wrapper around each primitive), so one batch can mix healthy and
//! faulty queries against a single client instance: healthy queries see
//! primitives and weakest preconditions structurally identical to the
//! inner client's (modulo the [`FaultPrim::Inner`] constructor, which is
//! transparent to evaluation), which is what the determinism tests rely
//! on. A separate [`FaultInjectingClient::transfer_bomb`] makes every
//! *forward transfer* panic, planting the fault inside the RHS engine —
//! and, in batch mode, inside the shared forward cache's compute closure.

use crate::client::{Query, TracerClient};
use pda_lang::Atom;
use pda_meta::{Formula, Primitive};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injected misbehaviour; fires at most once per [`Query`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fault {
    /// Panic with this message on first evaluation.
    Panic(String),
    /// Sleep this long on first evaluation (pair with a query timeout).
    Stall(Duration),
    /// Report an unsound weakest precondition for the tripped primitive,
    /// which the meta-analysis rejects as a membership-invariant break.
    BreakWp,
}

/// A client primitive, possibly booby-trapped.
///
/// The `fired` flag is *shared across clones* (formulas clone primitives
/// freely), which is what makes the fault one-shot per query; it is
/// deliberately excluded from equality/ordering/hashing so tripped and
/// untripped copies of the same primitive stay interchangeable inside
/// cubes and DNFs.
#[derive(Debug, Clone)]
pub enum FaultPrim<P> {
    /// A plain primitive of the inner client.
    Inner(P),
    /// A primitive that fires `fault` on first evaluation.
    Trip {
        /// The underlying primitive (evaluation delegates to it).
        inner: P,
        /// What goes wrong.
        fault: Fault,
        /// Whether the fault has already fired (shared across clones).
        fired: Arc<AtomicBool>,
    },
}

impl<P> FaultPrim<P> {
    fn key(&self) -> (&P, Option<&Fault>) {
        match self {
            FaultPrim::Inner(p) => (p, None),
            FaultPrim::Trip { inner, fault, .. } => (inner, Some(fault)),
        }
    }
}

impl<P: PartialEq> PartialEq for FaultPrim<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<P: Eq> Eq for FaultPrim<P> {}
impl<P: PartialOrd> PartialOrd for FaultPrim<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.key().partial_cmp(&other.key())
    }
}
impl<P: Ord> Ord for FaultPrim<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}
impl<P: std::hash::Hash> std::hash::Hash for FaultPrim<P> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl<P: fmt::Display> fmt::Display for FaultPrim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPrim::Inner(p) => write!(f, "{p}"),
            FaultPrim::Trip { inner, .. } => write!(f, "trip({inner})"),
        }
    }
}

impl<P: Primitive> FaultPrim<P> {
    fn spring(&self) {
        let FaultPrim::Trip { fault, fired, .. } = self else { return };
        if fired.swap(true, Ordering::SeqCst) {
            return;
        }
        match fault {
            Fault::Panic(msg) => panic!("{msg}"),
            // Sleep in small slices polling the ambient deadline, so a
            // cooperative timeout shorter than the stall still fires at
            // the engine's next poll instead of waiting out the whole
            // sleep. With no deadline in scope the stall runs in full —
            // the non-cooperative case the serve watchdog exists for.
            Fault::Stall(d) => pda_util::faultplane::stall(*d),
            Fault::BreakWp => {}
        }
    }
}

impl<P: Primitive> Primitive for FaultPrim<P> {
    type Param = P::Param;
    type State = P::State;

    fn holds(&self, p: &P::Param, d: &P::State) -> bool {
        self.spring();
        match self {
            FaultPrim::Inner(x) | FaultPrim::Trip { inner: x, .. } => x.holds(p, d),
        }
    }

    fn eval_state(&self, d: &P::State) -> Option<bool> {
        self.spring();
        match self {
            FaultPrim::Inner(x) | FaultPrim::Trip { inner: x, .. } => x.eval_state(d),
        }
    }

    fn param_atom(&self) -> Option<(usize, bool)> {
        match self {
            FaultPrim::Inner(x) | FaultPrim::Trip { inner: x, .. } => x.param_atom(),
        }
    }

    fn implies(&self, other: &Self) -> bool {
        let (a, af) = self.key();
        let (b, bf) = other.key();
        af == bf && a.implies(b)
    }

    fn contradicts(&self, other: &Self) -> bool {
        self.key().0.contradicts(other.key().0)
    }
}

/// Maps a formula over inner primitives into the fault alphabet.
pub fn lift_formula<P: Primitive>(f: Formula<P>) -> Formula<FaultPrim<P>> {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Prim(p) => Formula::Prim(FaultPrim::Inner(p)),
        Formula::Not(inner) => Formula::Not(Box::new(lift_formula(*inner))),
        Formula::And(parts) => Formula::And(parts.into_iter().map(lift_formula).collect()),
        Formula::Or(parts) => Formula::Or(parts.into_iter().map(lift_formula).collect()),
    }
}

fn map_prims<P: Primitive>(
    f: Formula<P>,
    wrap: &impl Fn(P) -> FaultPrim<P>,
) -> Formula<FaultPrim<P>> {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Prim(p) => Formula::Prim(wrap(p)),
        Formula::Not(inner) => Formula::Not(Box::new(map_prims(*inner, wrap))),
        Formula::And(parts) => Formula::And(parts.into_iter().map(|g| map_prims(g, wrap)).collect()),
        Formula::Or(parts) => Formula::Or(parts.into_iter().map(|g| map_prims(g, wrap)).collect()),
    }
}

/// Lifts a healthy query into the fault alphabet unchanged.
pub fn lift_query<P: Primitive>(q: Query<P>) -> Query<FaultPrim<P>> {
    Query { point: q.point, not_q: lift_formula(q.not_q), source: q.source, limits: q.limits }
}

/// Booby-traps a query: every primitive of its failure condition fires
/// `fault` (once, whichever primitive is evaluated first — they share one
/// flag).
pub fn faulty_query<P: Primitive>(q: Query<P>, fault: Fault) -> Query<FaultPrim<P>> {
    let fired = Arc::new(AtomicBool::new(false));
    let wrap = move |p: P| FaultPrim::Trip { inner: p, fault: fault.clone(), fired: fired.clone() };
    Query { point: q.point, not_q: map_prims(q.not_q, &wrap), source: q.source, limits: q.limits }
}

/// Wraps a [`TracerClient`], delegating everything but the injected
/// faults.
#[derive(Debug, Clone)]
pub struct FaultInjectingClient<'c, C> {
    inner: &'c C,
    /// If set, *every* forward transfer panics with this message — the
    /// fault lives inside the RHS engine (and the batch forward cache),
    /// unlike per-query trips.
    pub transfer_bomb: Option<String>,
}

impl<'c, C: TracerClient> FaultInjectingClient<'c, C> {
    /// A transparent wrapper: no faults until configured.
    pub fn new(inner: &'c C) -> Self {
        FaultInjectingClient { inner, transfer_bomb: None }
    }

    /// Makes every forward transfer panic with `msg`.
    #[must_use]
    pub fn with_transfer_bomb(mut self, msg: &str) -> Self {
        self.transfer_bomb = Some(msg.to_string());
        self
    }
}

impl<C: TracerClient> TracerClient for FaultInjectingClient<'_, C> {
    type Param = C::Param;
    type State = C::State;
    type Prim = FaultPrim<C::Prim>;

    fn transfer(&self, p: &C::Param, atom: &Atom, d: &C::State) -> C::State {
        if let Some(msg) = &self.transfer_bomb {
            panic!("{msg}");
        }
        self.inner.transfer(p, atom, d)
    }

    fn wp_prim(&self, atom: &Atom, prim: &Self::Prim) -> Formula<Self::Prim> {
        match prim {
            FaultPrim::Inner(p) => lift_formula(self.inner.wp_prim(atom, p)),
            // Unsound on purpose: query failure conditions carry their
            // primitives *negatively* (`¬null(x)`), and the meta-analysis
            // computes `wp(¬π) = ¬wp(π)`; a constant-`true` precondition
            // therefore collapses the cube to `false`, and the Theorem 3
            // membership check catches it as `MembershipLost`. (`false`
            // here would negate to `true` and corrupt *silently* — the
            // failure mode this fault exists to distinguish.)
            FaultPrim::Trip { fault: Fault::BreakWp, .. } => Formula::True,
            FaultPrim::Trip { inner, .. } => lift_formula(self.inner.wp_prim(atom, inner)),
        }
    }

    fn n_atoms(&self) -> usize {
        self.inner.n_atoms()
    }

    fn atom_cost(&self, atom: usize) -> u64 {
        self.inner.atom_cost(atom)
    }

    fn param_of_model(&self, assignment: &[bool]) -> C::Param {
        self.inner.param_of_model(assignment)
    }

    fn initial_state(&self) -> C::State {
        self.inner.initial_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullcli::{NullClient, NullPrim};
    use crate::tracer::{solve_query, TracerConfig};
    use pda_analysis::PointsTo;
    use pda_lang::VarId;

    fn setup() -> (pda_lang::Program, PointsTo, NullClient, Query<NullPrim>) {
        let program = pda_lang::parse_program(
            "fn main() { var x, y; x = null; y = x; query q: local y; }",
        )
        .unwrap();
        let pa = PointsTo::analyze(&program);
        let client = NullClient::new(&program);
        let q = program.query_by_label("q").unwrap();
        let query = client.query(&program, q);
        (program, pa, client, query)
    }

    #[test]
    fn lifted_query_solves_identically() {
        let (program, pa, client, query) = setup();
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let config = TracerConfig::default();
        let plain = solve_query(&program, &callees, &client, &query, &config);
        let wrapped = FaultInjectingClient::new(&client);
        let lifted = solve_query(&program, &callees, &wrapped, &lift_query(query), &config);
        assert_eq!(plain.outcome, lifted.outcome);
        assert_eq!(plain.iterations, lifted.iterations);
    }

    #[test]
    fn fault_prim_identity_ignores_fired_flag() {
        let a = FaultPrim::Trip {
            inner: NullPrim::Var(VarId(0)),
            fault: Fault::BreakWp,
            fired: Arc::new(AtomicBool::new(false)),
        };
        let b = FaultPrim::Trip {
            inner: NullPrim::Var(VarId(0)),
            fault: Fault::BreakWp,
            fired: Arc::new(AtomicBool::new(true)),
        };
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_ne!(a, FaultPrim::Inner(NullPrim::Var(VarId(0))));
    }

    /// Faulty weakest preconditions must be rejected identically by both
    /// meta-kernels: the interned kernel evaluates `eval_state`/`holds`
    /// eagerly at kernel-build time, which may *spring* one-shot traps
    /// earlier than the lazy tree path, but the observable verdict (the
    /// Theorem 3 membership break) has to be the same.
    #[test]
    fn broken_wp_is_rejected_by_both_kernels() {
        use crate::tracer::{MetaKernel, Outcome, Unresolved};
        let (program, pa, client, query) = setup();
        let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
        let wrapped = FaultInjectingClient::new(&client);
        let mut outcomes = vec![];
        for kernel in [MetaKernel::Tree, MetaKernel::Interned] {
            let config = TracerConfig { kernel, ..TracerConfig::default() };
            let faulty = faulty_query(query.clone(), Fault::BreakWp);
            let r = solve_query(&program, &callees, &wrapped, &faulty, &config);
            assert!(
                matches!(r.outcome, Outcome::Unresolved(Unresolved::MetaFailure(_))),
                "{kernel:?}: {:?}",
                r.outcome
            );
            outcomes.push((r.outcome, r.iterations));
        }
        assert_eq!(outcomes[0], outcomes[1]);

        // And a healthy lifted query is kernel-invariant too.
        let mut healthy = vec![];
        for kernel in [MetaKernel::Tree, MetaKernel::Interned] {
            let config = TracerConfig { kernel, ..TracerConfig::default() };
            let r = solve_query(&program, &callees, &wrapped, &lift_query(query.clone()), &config);
            healthy.push((r.outcome, r.iterations));
        }
        assert_eq!(healthy[0], healthy[1]);
    }

    #[test]
    fn panic_fault_fires_once_through_the_formula() {
        let (_, _, _, query) = setup();
        let faulty = faulty_query(query, Fault::Panic("injected".into()));
        let err = std::panic::catch_unwind(|| {
            let d: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
            faulty.not_q.holds(&pda_util::BitSet::new(2), &d);
        })
        .unwrap_err();
        assert_eq!(err.downcast_ref::<String>().map(String::as_str), Some("injected"));
        // The shared flag is spent: a second evaluation is healthy.
        let d: std::collections::BTreeSet<VarId> = std::collections::BTreeSet::new();
        assert!(faulty.not_q.holds(&pda_util::BitSet::new(2), &d));
    }
}
