//! Andersen-style, flow-insensitive, field-based points-to analysis with an
//! on-the-fly 0-CFA call graph.

use pda_lang::{Atom, CallId, CallKind, MethodId, Node, Program, SiteId, VarId};
use pda_util::{BitSet, Idx, IdxVec};
use std::collections::HashMap;

/// The result of the points-to / call-graph analysis.
///
/// Points-to sets are computed for local variables, globals, and fields
/// (field-based: one set per field name, merged over all base objects,
/// matching the heap treatment of the paper's Figure 5). Virtual calls are
/// resolved on the fly: discovering that `recv` may point to a site of
/// class `C` adds `C.m` as a target, whose parameter/return constraints
/// are then added, which may discover more targets, until fixpoint.
#[derive(Debug, Clone)]
pub struct PointsTo {
    n_vars: usize,
    n_globals: usize,
    /// Per-node points-to sets over sites; nodes are vars ++ globals ++ fields.
    pts: Vec<BitSet>,
    /// Resolved targets per call (sorted, deduped).
    targets: IdxVec<CallId, Vec<MethodId>>,
}

/// Dense node numbering: locals, then globals, then fields.
fn var_node(v: VarId) -> usize {
    v.index()
}

impl PointsTo {
    /// Runs the analysis to fixpoint over the whole program.
    pub fn analyze(program: &Program) -> PointsTo {
        Solver::new(program).run()
    }

    /// The points-to set (over allocation sites) of local variable `v`.
    pub fn pts_var(&self, v: VarId) -> &BitSet {
        &self.pts[var_node(v)]
    }

    /// Returns `true` if `v` may point to an object allocated at `h`.
    ///
    /// This is the may-alias oracle used by the stress type-state property
    /// of the paper's Section 6.
    pub fn may_alias(&self, v: VarId, h: SiteId) -> bool {
        self.pts[var_node(v)].contains(h.index())
    }

    /// The resolved callees of call `c` (empty for unresolvable virtual
    /// calls and calls to bodyless methods only... bodyless targets are
    /// included; the engines decide how to treat them).
    pub fn callees(&self, c: CallId) -> &[MethodId] {
        &self.targets[c]
    }

    /// Number of globals tracked (for diagnostics).
    pub fn n_globals(&self) -> usize {
        self.n_globals
    }

    /// Number of locals tracked (for diagnostics).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }
}

struct Solver<'a> {
    program: &'a Program,
    pts: Vec<BitSet>,
    /// Subset edges `from -> to` (pts(from) ⊆ pts(to)).
    succs: Vec<Vec<usize>>,
    /// Calls to (re-)resolve when the receiver's set grows.
    recv_watch: HashMap<usize, Vec<CallId>>,
    targets: IdxVec<CallId, Vec<MethodId>>,
    worklist: Vec<usize>,
    on_list: Vec<bool>,
}

impl<'a> Solver<'a> {
    fn new(program: &'a Program) -> Self {
        let n_vars = program.vars.len();
        let n_globals = program.globals.len();
        let n_fields = program.fields.len();
        let n_nodes = n_vars + n_globals + n_fields;
        let n_sites = program.sites.len();
        Solver {
            program,
            pts: vec![BitSet::new(n_sites); n_nodes],
            succs: vec![Vec::new(); n_nodes],
            recv_watch: HashMap::new(),
            targets: (0..program.calls.len()).map(|_| Vec::new()).collect(),
            worklist: Vec::new(),
            on_list: vec![false; n_nodes],
        }
    }

    fn global_node(&self, g: pda_lang::GlobalId) -> usize {
        self.program.vars.len() + g.index()
    }

    fn field_node(&self, f: pda_lang::FieldId) -> usize {
        self.program.vars.len() + self.program.globals.len() + f.index()
    }

    fn push(&mut self, n: usize) {
        if !self.on_list[n] {
            self.on_list[n] = true;
            self.worklist.push(n);
        }
    }

    fn add_site(&mut self, n: usize, h: SiteId) {
        if self.pts[n].insert(h.index()) {
            self.push(n);
        }
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if from == to || self.succs[from].contains(&to) {
            return;
        }
        self.succs[from].push(to);
        if !self.pts[from].is_empty() {
            self.push(from);
        }
    }

    fn seed(&mut self) {
        let program = self.program;
        for (_, m) in program.methods.iter_enumerated() {
            for (_, node) in m.cfg.iter() {
                match &node.kind {
                    Node::Atom(a, _) => self.seed_atom(a),
                    Node::Call(c) => self.seed_call(*c),
                    _ => {}
                }
            }
        }
    }

    fn seed_atom(&mut self, a: &Atom) {
        match *a {
            Atom::New { dst, site } => self.add_site(var_node(dst), site),
            Atom::Copy { dst, src } => self.add_edge(var_node(src), var_node(dst)),
            Atom::Load { dst, field, .. } => {
                let f = self.field_node(field);
                self.add_edge(f, var_node(dst));
            }
            Atom::Store { field, src, .. } => {
                let f = self.field_node(field);
                self.add_edge(var_node(src), f);
            }
            Atom::GSet { global, src } => {
                let g = self.global_node(global);
                self.add_edge(var_node(src), g);
            }
            Atom::GGet { dst, global } => {
                let g = self.global_node(global);
                self.add_edge(g, var_node(dst));
            }
            // Invoke is handled at the call, Havoc introduces no site.
            Atom::Invoke { .. }
            | Atom::Spawn { .. }
            | Atom::Havoc { .. }
            | Atom::Null { .. }
            | Atom::Nop => {}
        }
    }

    fn seed_call(&mut self, c: CallId) {
        match self.program.calls[c].kind {
            CallKind::Static(target) => self.add_target(c, target, None),
            CallKind::Virtual { recv, .. } => {
                let rn = var_node(recv);
                self.recv_watch.entry(rn).or_default().push(c);
                self.resolve_virtual(c);
            }
        }
    }

    /// Adds `target` as a callee of `c`, wiring argument/return edges.
    ///
    /// For virtual calls `site` is the receiver site that discovered the
    /// target; it seeds the callee's `this` parameter.
    fn add_target(&mut self, c: CallId, target: MethodId, site: Option<SiteId>) {
        let info = &self.program.calls[c];
        let m = &self.program.methods[target];
        let is_new = !self.targets[c].contains(&target);
        if is_new {
            self.targets[c].push(target);
            // Arguments -> parameters (skipping `this` for virtual calls).
            let skip = usize::from(m.class.is_some());
            for (formal, actual) in m.params.iter().skip(skip).zip(info.args.clone()) {
                self.add_edge(var_node(actual), var_node(*formal));
            }
            if let (Some(dst), Some(ret)) = (info.dst, m.ret) {
                self.add_edge(var_node(ret), var_node(dst));
            }
        }
        if let Some(h) = site {
            let this = self.program.methods[target].params[0];
            self.add_site(var_node(this), h);
        }
    }

    fn resolve_virtual(&mut self, c: CallId) {
        let CallKind::Virtual { recv, method } = self.program.calls[c].kind else {
            return;
        };
        let sites: Vec<SiteId> = self.pts[var_node(recv)]
            .iter()
            .map(SiteId::from_usize)
            .collect();
        for h in sites {
            let class = self.program.sites[h].class;
            if let Some(&target) = self.program.classes[class].methods.get(&method) {
                if self.program.methods[target].body.is_some() {
                    self.add_target(c, target, Some(h));
                } else if !self.targets[c].contains(&target) {
                    // Bodyless (atomic) methods are recorded as targets so
                    // clients can see them, but get no flow edges.
                    self.targets[c].push(target);
                }
            }
        }
    }

    fn run(mut self) -> PointsTo {
        self.seed();
        while let Some(n) = self.worklist.pop() {
            self.on_list[n] = false;
            // Propagate to successors.
            let succs = self.succs[n].clone();
            let src = self.pts[n].clone();
            for s in succs {
                let before = self.pts[s].count();
                self.pts[s] = self.pts[s].union(&src);
                if self.pts[s].count() != before {
                    self.push(s);
                }
            }
            // Re-resolve virtual calls watching this receiver.
            if let Some(calls) = self.recv_watch.get(&n).cloned() {
                for c in calls {
                    self.resolve_virtual(c);
                }
            }
        }
        for t in self.targets.iter_enumerated().map(|(i, _)| i).collect::<Vec<_>>() {
            self.targets[t].sort();
            self.targets[t].dedup();
        }
        PointsTo {
            n_vars: self.program.vars.len(),
            n_globals: self.program.globals.len(),
            pts: self.pts,
            targets: self.targets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::parse_program;

    #[test]
    fn copies_propagate() {
        let p = parse_program("class C {} fn main() { var x, y; x = new C; y = x; }").unwrap();
        let pa = PointsTo::analyze(&p);
        assert!(pa.may_alias(p.main_var("x").unwrap(), SiteId(0)));
        assert!(pa.may_alias(p.main_var("y").unwrap(), SiteId(0)));
    }

    #[test]
    fn flow_insensitive_order_does_not_matter() {
        let p = parse_program("class C {} fn main() { var x, y; y = x; x = new C; }").unwrap();
        let pa = PointsTo::analyze(&p);
        assert!(pa.may_alias(p.main_var("y").unwrap(), SiteId(0)));
    }

    #[test]
    fn field_based_heap() {
        let p = parse_program(
            r#"
            class C { field f; }
            fn main() {
                var a, b, r;
                a = new C;      // h0
                b = new C;      // h1
                a.f = a;
                r = b.f;        // field-based: r may see h0
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        let r = p.main_var("r").unwrap();
        assert!(pa.may_alias(r, SiteId(0)));
        assert!(!pa.may_alias(r, SiteId(1)));
    }

    #[test]
    fn globals_flow() {
        let p = parse_program(
            "global g; class C {} fn main() { var x, y; x = new C; g = x; y = g; }",
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        assert!(pa.may_alias(p.main_var("y").unwrap(), SiteId(0)));
    }

    #[test]
    fn static_call_binds_params_and_return() {
        let p = parse_program(
            "class C {} fn id(a) { return a; } fn main() { var x, y; x = new C; y = id(x); }",
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        assert!(pa.may_alias(p.main_var("y").unwrap(), SiteId(0)));
        assert_eq!(pa.callees(CallId(0)).len(), 1);
    }

    #[test]
    fn virtual_dispatch_is_receiver_sensitive() {
        let p = parse_program(
            r#"
            class A { fn m() { } }
            class B { fn m() { } }
            fn main() {
                var a, b;
                a = new A;
                b = new B;
                a.m();
                b.m();
            }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        // Each call resolves to exactly its own class's method.
        let t0 = pa.callees(CallId(0));
        let t1 = pa.callees(CallId(1));
        assert_eq!(t0.len(), 1);
        assert_eq!(t1.len(), 1);
        assert_ne!(t0[0], t1[0]);
    }

    #[test]
    fn this_receives_receiver_sites() {
        let p = parse_program(
            r#"
            global g;
            class A { fn m() { g = this; } }
            fn main() { var a, r; a = new A; a.m(); r = g; }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        assert!(pa.may_alias(p.main_var("r").unwrap(), SiteId(0)));
    }

    #[test]
    fn chained_discovery_reaches_fixpoint() {
        // Dispatch target discovered only after flow through a call.
        let p = parse_program(
            r#"
            class A { fn m() { } }
            fn mk() { var t; t = new A; return t; }
            fn main() { var x; x = mk(); x.m(); }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        let vcall = p
            .calls
            .iter_enumerated()
            .find(|(_, c)| matches!(c.kind, CallKind::Virtual { .. }))
            .unwrap()
            .0;
        assert_eq!(pa.callees(vcall).len(), 1);
    }

    #[test]
    fn bodyless_targets_recorded_without_flow() {
        let p = parse_program(
            r#"
            class F { fn open(); }
            fn main() { var x; x = new F; x.open(); }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        assert_eq!(pa.callees(CallId(0)).len(), 1);
    }

    #[test]
    fn null_and_havoc_have_empty_pts() {
        let p = parse_program(
            r#"
            class F { fn get(); }
            fn main() { var x, y, z; x = new F; y = x.get(); z = null; }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        assert!(pa.pts_var(p.main_var("y").unwrap()).is_empty());
        assert!(pa.pts_var(p.main_var("z").unwrap()).is_empty());
    }
}
