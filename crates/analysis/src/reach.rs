//! Method reachability over the resolved call graph.

use crate::PointsTo;
use pda_lang::{MethodId, Node, Program};
use pda_util::{BitSet, Idx};

/// Methods reachable from `main` via the 0-CFA call graph.
///
/// Used by the experiment harness to reproduce Table 1 (benchmark
/// statistics count entities "in reachable methods") and by query
/// generation ("we generated queries pervasively ... of each benchmark"
/// restricted to reachable application code).
#[derive(Debug, Clone)]
pub struct Reachability {
    reachable: BitSet,
}

impl Reachability {
    /// Computes reachability from `program.main`.
    pub fn compute(program: &Program, pa: &PointsTo) -> Reachability {
        let mut reachable = BitSet::new(program.methods.len());
        let mut stack = vec![program.main];
        reachable.insert(program.main.index());
        while let Some(m) = stack.pop() {
            for (_, node) in program.methods[m].cfg.iter() {
                if let Node::Call(c) = node.kind {
                    for &callee in pa.callees(c) {
                        if reachable.insert(callee.index()) {
                            stack.push(callee);
                        }
                    }
                }
            }
        }
        Reachability { reachable }
    }

    /// Is method `m` reachable from `main`?
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable.contains(m.index())
    }

    /// All reachable methods, ascending.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.reachable.iter().map(MethodId::from_usize)
    }

    /// Number of reachable methods.
    pub fn count(&self) -> usize {
        self.reachable.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::parse_program;

    #[test]
    fn unreachable_methods_excluded() {
        let p = parse_program(
            r#"
            class A { fn used() { } fn unused() { } }
            fn dead() { }
            fn main() { var a; a = new A; a.used(); }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        let r = Reachability::compute(&p, &pa);
        assert_eq!(r.count(), 2); // main + A.used
        assert!(r.is_reachable(p.main));
    }

    #[test]
    fn transitive_calls_reachable() {
        let p = parse_program(
            r#"
            fn a() { b(); }
            fn b() { c(); }
            fn c() { }
            fn main() { a(); }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        let r = Reachability::compute(&p, &pa);
        assert_eq!(r.count(), 4);
    }

    #[test]
    fn dispatch_limits_reachability() {
        let p = parse_program(
            r#"
            class A { fn m() { } }
            class B { fn m() { } }
            fn main() { var a; a = new A; a.m(); }
            "#,
        )
        .unwrap();
        let pa = PointsTo::analyze(&p);
        let r = Reachability::compute(&p, &pa);
        // B.m is never a dispatch target.
        assert_eq!(r.count(), 2);
    }
}
