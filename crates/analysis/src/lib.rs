//! Whole-program pre-analyses for Jaylite: Andersen-style points-to with an
//! on-the-fly 0-CFA call graph, a may-alias oracle, and reachability.
//!
//! The paper's evaluation (Section 6) relies on a 0-CFA call-graph
//! analysis twice: to build the interprocedural control structure both
//! client analyses run over, and as the *may-alias* oracle of the
//! stress-test type-state property ("v may point to an object created at
//! site h according to a 0-CFA may-alias analysis"). This crate is the
//! from-scratch substitute for Chord's versions of those components.
//!
//! # Example
//!
//! ```
//! let p = pda_lang::parse_program(r#"
//!     class C { fn m() { } }
//!     fn main() { var x; x = new C; x.m(); }
//! "#).unwrap();
//! let pa = pda_analysis::PointsTo::analyze(&p);
//! let x = p.main_var("x").unwrap();
//! assert!(pa.may_alias(x, pda_lang::SiteId(0)));
//! assert_eq!(pa.callees(pda_lang::CallId(0)).len(), 1);
//! ```

#![warn(missing_docs)]

mod pointsto;
mod reach;

pub use pointsto::PointsTo;
pub use reach::Reachability;
