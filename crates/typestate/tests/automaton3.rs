//! Exhaustive requirement-(2) validation and end-to-end runs on a richer,
//! three-state automaton (the File automaton of Figure 1 has only two
//! states; this exercises multi-target preimages in the Figure 10
//! equations, including implicit `Stay` self-loops).

use pda_analysis::PointsTo;
use pda_lang::{Atom, SiteId};
use pda_meta::check_wp_exact;
use pda_tracer::{brute_force_optimum, solve_query, AsMeta, Outcome, TracerConfig, TracerClient};
use pda_typestate::{TsPrim, TsState, TypestateClient};
use pda_util::BitSet;
use std::collections::BTreeSet;

const SRC: &str = r#"
    class Conn { fn open(); fn send(); fn close(); fn ping(); }
    typestate Conn {
        init fresh;
        fresh -> open -> ready;
        ready -> send -> ready;
        ready -> close -> done;
        done -> send -> error;
        fresh -> send -> error;
        fresh -> close -> error;
        done -> close -> error;
        done -> open -> error;
        ready -> open -> error;
    }
    fn main() {
        var c, alias, spare;
        c = new Conn;
        c.open();
        alias = c;
        while (*) { alias.send(); }
        alias.close();
        query ok: state c in { done };
        query wrong: state c in { fresh };
    }
"#;

#[test]
fn wp_exact_on_three_state_automaton() {
    let program = pda_lang::parse_program(SRC).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = TypestateClient::for_declared_automaton(&program, &pa, SiteId(0)).unwrap();
    let c = program.main_var("c").unwrap();
    let alias = program.main_var("alias").unwrap();
    let spare = program.main_var("spare").unwrap();
    let vars = [c, alias, spare];
    let methods: Vec<_> = ["open", "send", "close", "ping"]
        .iter()
        .map(|m| program.names.get(m).unwrap())
        .collect();

    let mut atoms = vec![
        Atom::New { dst: c, site: SiteId(0) },
        Atom::Copy { dst: alias, src: c },
        Atom::Copy { dst: c, src: spare },
        Atom::Null { dst: alias },
        Atom::Havoc { dst: c },
    ];
    for &m in &methods {
        for &recv in &vars {
            atoms.push(Atom::Invoke { recv, method: m });
        }
    }
    let mut prims = vec![TsPrim::Err, TsPrim::Unalloc];
    for v in vars {
        prims.push(TsPrim::Var(v));
        prims.push(TsPrim::Param(v));
    }
    for s in 0..3 {
        prims.push(TsPrim::Type(s));
    }

    // Every state over 3 automaton states and 3 variables.
    let mut states = vec![TsState::Unalloc, TsState::Top];
    for tsbits in 1u32..8 {
        for vsbits in 0u32..8 {
            let ts: BTreeSet<u32> = (0..3).filter(|i| (tsbits >> i) & 1 == 1).collect();
            let vs: BTreeSet<_> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| (vsbits >> i) & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            states.push(TsState::Obj { ts, vs });
        }
    }

    for atom in &atoms {
        for prim in &prims {
            for pbits in 0u32..8 {
                let p = BitSet::from_iter(
                    program.vars.len(),
                    vars.iter()
                        .enumerate()
                        .filter(|(i, _)| (pbits >> i) & 1 == 1)
                        .map(|(_, &v)| v.0 as usize),
                );
                for d in &states {
                    check_wp_exact(&AsMeta(&client), atom, prim, &p, d).unwrap();
                }
            }
        }
    }
}

#[test]
fn protocol_through_alias_and_loop() {
    let program = pda_lang::parse_program(SRC).unwrap();
    let pa = PointsTo::analyze(&program);
    let client = TypestateClient::for_declared_automaton(&program, &pa, SiteId(0)).unwrap();
    let callees = |cid: pda_lang::CallId| pa.callees(cid).to_vec();

    // `ok` is provable: must track c and alias through the send-loop.
    let q = program.query_by_label("ok").unwrap();
    let query = client.state_query(q);
    let r = solve_query(&program, &callees, &client, &query, &TracerConfig::default());
    let Outcome::Proven { param, cost } = &r.outcome else {
        panic!("ok should be proven: {:?}", r.outcome);
    };
    let c = program.main_var("c").unwrap();
    let alias = program.main_var("alias").unwrap();
    assert!(param.contains(c.0 as usize) && param.contains(alias.0 as usize));
    assert_eq!(*cost, 2);

    // Brute force agrees (the variable universe is small enough).
    assert!(client.n_atoms() <= 16);
    let truth = brute_force_optimum(
        &program,
        &callees,
        &client,
        &query,
        16,
        pda_dataflow::RhsLimits::default(),
    )
    .expect("provable");
    assert_eq!(truth.1, 2);

    // `wrong` asks for the initial state at the end: impossible.
    let q2 = program.query_by_label("wrong").unwrap();
    let r2 = solve_query(&program, &callees, &client, &client.state_query(q2), &TracerConfig::default());
    assert_eq!(r2.outcome, Outcome::Impossible);
}
