//! Forward transfer functions (Figure 4) and backward weakest
//! preconditions (Figure 10) of the type-state client.

use crate::automaton::{Automaton, Transition};
use crate::prim::{TsPrim, TsState};
use pda_analysis::PointsTo;
use pda_lang::{Atom, NameId, PointId, Program, QueryId, QueryKind, SiteId, VarId};
use pda_meta::Formula;
use pda_tracer::{Query, QueryLimits, TracerClient};
use pda_util::BitSet;
use std::collections::HashSet;

/// Which type-state property the client checks.
#[derive(Debug, Clone)]
pub enum TsMode {
    /// A declared automaton (e.g. the `File` protocol of Figure 1).
    Automaton(Automaton),
    /// The paper's stress property (Section 6): any may-aliased virtual
    /// call without must-alias knowledge drives the object to error.
    /// Method names in `skip` (e.g. synthetic library entry points) are
    /// exempt.
    Stress {
        /// Method names whose calls never transition.
        skip: HashSet<NameId>,
    },
}

impl TsMode {
    /// The stress mode with no exempt methods.
    pub fn stress() -> TsMode {
        TsMode::Stress { skip: HashSet::new() }
    }

    fn init_state(&self) -> u32 {
        match self {
            TsMode::Automaton(a) => a.init(),
            TsMode::Stress { .. } => 0,
        }
    }
}

/// The type-state [`TracerClient`] for one tracked allocation site.
///
/// The abstraction parameter is a [`BitSet`] over the program's local
/// variables (`p ⊆ Vars`, cost `|p|`); the abstract state is a
/// [`TsState`]. One client instance answers all queries about objects
/// allocated at its `site`.
#[derive(Debug, Clone)]
pub struct TypestateClient<'a> {
    program: &'a Program,
    may: &'a PointsTo,
    site: SiteId,
    mode: TsMode,
    /// Maps (possibly inliner-extended) variables to original variables;
    /// identity when absent.
    var_origin: Option<Vec<VarId>>,
}

impl<'a> TypestateClient<'a> {
    /// Creates the client tracking `site` under the given mode.
    pub fn new(program: &'a Program, may: &'a PointsTo, site: SiteId, mode: TsMode) -> Self {
        TypestateClient { program, may, site, mode, var_origin: None }
    }

    /// Creates the client for the automaton declared on `site`'s class.
    ///
    /// Returns `None` if the class has no `typestate` declaration.
    pub fn for_declared_automaton(
        program: &'a Program,
        may: &'a PointsTo,
        site: SiteId,
    ) -> Option<Self> {
        let a = Automaton::for_class(program, program.sites[site].class)?;
        Some(TypestateClient::new(program, may, site, TsMode::Automaton(a)))
    }

    /// Adapts the client to the extended variable universe of an inlined
    /// program (for the exact term engine): clone variables inherit the
    /// tracking status and aliasing of their originals.
    pub fn with_extended_vars(mut self, inlined: &pda_lang::InlinedProgram) -> Self {
        self.var_origin = Some(inlined.var_origin.clone());
        self
    }

    /// The tracked allocation site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    fn origin(&self, v: VarId) -> VarId {
        match &self.var_origin {
            Some(map) => map[v.0 as usize],
            None => v,
        }
    }

    fn tracked(&self, p: &BitSet, v: VarId) -> bool {
        p.contains(self.origin(v).0 as usize)
    }

    fn may_alias(&self, v: VarId) -> bool {
        self.may.may_alias(self.origin(v), self.site)
    }

    /// Does this `Invoke` drive the tracked object's automaton?
    fn relevant(&self, recv: VarId, method: NameId) -> bool {
        if !self.may_alias(recv) {
            return false;
        }
        match &self.mode {
            TsMode::Automaton(a) => a.handles(method),
            TsMode::Stress { skip } => !skip.contains(&method),
        }
    }

    /// Builds the TRACER query for a source-level
    /// `query l: state x in { ... }` declaration: failure is `⊤` or any
    /// type-state outside the allowed set.
    ///
    /// # Panics
    ///
    /// Panics if the query is not a `state` query, or (in automaton mode)
    /// if an allowed state name is not a state of the automaton.
    pub fn state_query(&self, q: QueryId) -> Query<TsPrim> {
        let decl = &self.program.queries[q];
        let QueryKind::State { allowed, .. } = &decl.kind else {
            panic!("state_query called on a non-state query");
        };
        let allowed_ids: Vec<u32> = match &self.mode {
            TsMode::Automaton(a) => allowed
                .iter()
                .map(|&n| {
                    a.state_by_name(n).unwrap_or_else(|| {
                        panic!(
                            "`{}` is not a state of the automaton",
                            self.program.names.resolve(n)
                        )
                    })
                })
                .collect(),
            TsMode::Stress { .. } => vec![0],
        };
        let n_states = match &self.mode {
            TsMode::Automaton(a) => a.n_states() as u32,
            TsMode::Stress { .. } => 1,
        };
        let mut fails = vec![Formula::prim(TsPrim::Err)];
        for s in 0..n_states {
            if !allowed_ids.contains(&s) {
                fails.push(Formula::prim(TsPrim::Type(s)));
            }
        }
        Query { point: decl.point, not_q: Formula::or(fails), source: Some(q), limits: QueryLimits::default() }
    }

    /// Builds the stress-property query at a call point: failure is `⊤`.
    pub fn stress_query(&self, point: PointId) -> Query<TsPrim> {
        Query { point, not_q: Formula::prim(TsPrim::Err), source: None, limits: QueryLimits::default() }
    }
}

impl TracerClient for TypestateClient<'_> {
    type Param = BitSet;
    type State = TsState;
    type Prim = TsPrim;

    fn transfer(&self, p: &BitSet, atom: &Atom, d: &TsState) -> TsState {
        if matches!(d, TsState::Top) {
            return TsState::Top; // ⊤ is absorbing.
        }
        match *atom {
            Atom::New { dst, site } if site == self.site => match d {
                TsState::Unalloc => {
                    TsState::fresh(self.mode.init_state(), self.tracked(p, dst).then_some(dst))
                }
                TsState::Obj { ts, vs } => {
                    // A later allocation at the same site: `dst` now points
                    // to a different object than the tracked (first) one.
                    let mut vs = vs.clone();
                    vs.remove(&dst);
                    TsState::Obj { ts: ts.clone(), vs }
                }
                TsState::Top => unreachable!(),
            },
            Atom::New { dst, .. }
            | Atom::Null { dst }
            | Atom::Load { dst, .. }
            | Atom::GGet { dst, .. }
            | Atom::Havoc { dst } => match d {
                TsState::Obj { ts, vs } => {
                    let mut vs = vs.clone();
                    vs.remove(&dst);
                    TsState::Obj { ts: ts.clone(), vs }
                }
                other => other.clone(),
            },
            Atom::Copy { dst, src } => match d {
                TsState::Obj { ts, vs } => {
                    let mut vs = vs.clone();
                    if vs.contains(&src) && self.tracked(p, dst) {
                        vs.insert(dst);
                    } else {
                        vs.remove(&dst);
                    }
                    TsState::Obj { ts: ts.clone(), vs }
                }
                other => other.clone(),
            },
            Atom::Invoke { recv, method } if self.relevant(recv, method) => match d {
                TsState::Unalloc => TsState::Unalloc,
                TsState::Obj { ts, vs } => match &self.mode {
                    TsMode::Stress { .. } => {
                        if vs.contains(&recv) {
                            d.clone()
                        } else {
                            TsState::Top
                        }
                    }
                    TsMode::Automaton(a) => {
                        if ts.iter().any(|&s| a.step(s, method) == Transition::Error) {
                            return TsState::Top;
                        }
                        let targets: std::collections::BTreeSet<u32> = ts
                            .iter()
                            .map(|&s| match a.step(s, method) {
                                Transition::Stay => s,
                                Transition::To(t) => t,
                                Transition::Error => unreachable!(),
                            })
                            .collect();
                        if vs.contains(&recv) {
                            TsState::Obj { ts: targets, vs: vs.clone() }
                        } else {
                            TsState::Obj { ts: ts.union(&targets).copied().collect(), vs: vs.clone() }
                        }
                    }
                },
                TsState::Top => unreachable!(),
            },
            _ => d.clone(),
        }
    }

    fn wp_prim(&self, atom: &Atom, prim: &TsPrim) -> Formula<TsPrim> {
        use Formula as F;
        let keep = F::prim(*prim);
        if matches!(prim, TsPrim::Param(_)) {
            return keep; // Commands never change the abstraction.
        }
        match *atom {
            Atom::New { dst, site } if site == self.site => match *prim {
                TsPrim::Err => F::prim(TsPrim::Err),
                TsPrim::Unalloc => F::False,
                TsPrim::Var(z) if z == dst => F::and(vec![
                    F::prim(TsPrim::Unalloc),
                    F::prim(TsPrim::Param(self.origin(dst))),
                ]),
                TsPrim::Var(_) => keep,
                TsPrim::Type(s) if s == self.mode.init_state() => {
                    F::or(vec![F::prim(TsPrim::Unalloc), keep])
                }
                TsPrim::Type(_) => keep,
                TsPrim::Param(_) => unreachable!(),
            },
            Atom::New { dst, .. }
            | Atom::Null { dst }
            | Atom::Load { dst, .. }
            | Atom::GGet { dst, .. }
            | Atom::Havoc { dst } => match *prim {
                TsPrim::Var(z) if z == dst => F::False,
                _ => keep,
            },
            Atom::Copy { dst, src } => match *prim {
                TsPrim::Var(z) if z == dst => F::and(vec![
                    F::prim(TsPrim::Var(src)),
                    F::prim(TsPrim::Param(self.origin(dst))),
                ]),
                _ => keep,
            },
            Atom::Invoke { recv, method } if self.relevant(recv, method) => match &self.mode {
                TsMode::Stress { .. } => match *prim {
                    TsPrim::Err => F::or(vec![
                        F::prim(TsPrim::Err),
                        F::and(vec![
                            F::nprim(TsPrim::Var(recv)),
                            F::nprim(TsPrim::Err),
                            F::nprim(TsPrim::Unalloc),
                        ]),
                    ]),
                    TsPrim::Unalloc => keep,
                    TsPrim::Var(z) => {
                        F::and(vec![F::prim(TsPrim::Var(recv)), F::prim(TsPrim::Var(z))])
                    }
                    TsPrim::Type(s) => {
                        F::and(vec![F::prim(TsPrim::Var(recv)), F::prim(TsPrim::Type(s))])
                    }
                    TsPrim::Param(_) => unreachable!(),
                },
                TsMode::Automaton(a) => {
                    let errs = a.error_states(method);
                    let no_err_pre = F::and(
                        errs.iter().map(|&s| F::nprim(TsPrim::Type(s))).collect(),
                    );
                    match *prim {
                        TsPrim::Err => F::or(
                            std::iter::once(F::prim(TsPrim::Err))
                                .chain(errs.iter().map(|&s| F::prim(TsPrim::Type(s))))
                                .collect(),
                        ),
                        TsPrim::Unalloc => keep,
                        TsPrim::Var(z) => {
                            F::and(vec![F::prim(TsPrim::Var(z)), no_err_pre])
                        }
                        TsPrim::Type(s) => {
                            let strong_or_weak = F::or(
                                a.preimage(s, method)
                                    .into_iter()
                                    .map(|s2| F::prim(TsPrim::Type(s2)))
                                    .chain(std::iter::once(F::and(vec![
                                        F::nprim(TsPrim::Var(recv)),
                                        F::prim(TsPrim::Type(s)),
                                    ])))
                                    .collect(),
                            );
                            F::and(vec![no_err_pre, strong_or_weak])
                        }
                        TsPrim::Param(_) => unreachable!(),
                    }
                }
            },
            // Store, GSet, Spawn, Nop, irrelevant Invoke: identity.
            _ => keep,
        }
    }

    fn n_atoms(&self) -> usize {
        self.program.vars.len()
    }

    fn param_of_model(&self, assignment: &[bool]) -> BitSet {
        BitSet::from_iter(
            self.program.vars.len(),
            assignment
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| i),
        )
    }

    fn initial_state(&self) -> TsState {
        TsState::Unalloc
    }
}

impl pda_tracer::CoarseAtoms for TypestateClient<'_> {
    /// Classic coarse refinement for must-alias tracking: every variable
    /// the counterexample mentions becomes tracked.
    fn coarse_atoms(&self, atom: &Atom) -> Vec<usize> {
        pda_tracer::nullcli::vars_mentioned(atom)
            .into_iter()
            .map(|v| self.origin(v).0 as usize)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_meta::check_wp_exact;
    use pda_tracer::{brute_force_optimum, solve_query, AsMeta, Outcome, TracerConfig};
    use std::collections::BTreeSet;

    const FIG1: &str = r#"
        class File { fn open(); fn close(); }
        class C {}
        typestate File {
            init closed;
            closed -> open -> opened;
            opened -> close -> closed;
            opened -> open -> error;
            closed -> close -> error;
        }
        fn main() {
            var x, y, z;
            x = new File;
            y = x;
            if (*) { z = x; }
            x.open();
            y.close();
            if (*) { query check1: state x in { closed }; }
            else { query check2: state x in { opened }; }
        }
    "#;

    fn fixture() -> (Program, PointsTo) {
        let p = pda_lang::parse_program(FIG1).unwrap();
        let pa = PointsTo::analyze(&p);
        (p, pa)
    }

    /// Every state over 2 automaton states and 3 variables.
    fn all_states(vars: &[VarId]) -> Vec<TsState> {
        let mut out = vec![TsState::Unalloc, TsState::Top];
        for tsbits in 0u32..4 {
            for vsbits in 0u32..(1 << vars.len()) {
                let ts: BTreeSet<u32> = (0..2).filter(|i| (tsbits >> i) & 1 == 1).collect();
                if ts.is_empty() {
                    continue;
                }
                let vs: BTreeSet<VarId> = vars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (vsbits >> i) & 1 == 1)
                    .map(|(_, &v)| v)
                    .collect();
                out.push(TsState::Obj { ts, vs });
            }
        }
        out
    }

    /// Exhaustive requirement-(2) check over both modes: wp of every
    /// primitive is the exact preimage of the forward transfer, for every
    /// atom shape, state, and abstraction.
    #[test]
    fn wp_is_exact_exhaustively() {
        let (program, pa) = fixture();
        let x = program.main_var("x").unwrap();
        let y = program.main_var("y").unwrap();
        let z = program.main_var("z").unwrap();
        let vars = [x, y, z];
        let open_m = program.names.get("open").unwrap();
        let close_m = program.names.get("close").unwrap();
        let field0 = pda_lang::FieldId(0);
        let atoms = vec![
            Atom::New { dst: x, site: SiteId(0) }, // tracked site
            Atom::New { dst: y, site: SiteId(1) }, // other site
            Atom::Copy { dst: y, src: x },
            Atom::Copy { dst: x, src: z },
            Atom::Null { dst: x },
            Atom::Load { dst: y, base: x, field: field0 },
            Atom::Store { base: x, field: field0, src: y },
            Atom::GSet { global: pda_lang::GlobalId(0), src: x },
            Atom::Havoc { dst: z },
            Atom::Invoke { recv: x, method: open_m },  // may-alias
            Atom::Invoke { recv: y, method: close_m }, // may-alias
            Atom::Invoke { recv: z, method: open_m },  // z may-aliases too (z = x)
            Atom::Spawn { src: x },
            Atom::Nop,
        ];
        let mut prims = vec![TsPrim::Err, TsPrim::Unalloc];
        for v in vars {
            prims.push(TsPrim::Var(v));
            prims.push(TsPrim::Param(v));
        }
        for s in 0..2 {
            prims.push(TsPrim::Type(s));
        }
        for mode in [
            TsMode::Automaton(Automaton::for_class(&program, pda_lang::ClassId(0)).unwrap()),
            TsMode::stress(),
        ] {
            let client = TypestateClient::new(&program, &pa, SiteId(0), mode);
            for atom in &atoms {
                for prim in &prims {
                    for pbits in 0u32..8 {
                        let p = BitSet::from_iter(
                            program.vars.len(),
                            vars.iter()
                                .enumerate()
                                .filter(|(i, _)| (pbits >> i) & 1 == 1)
                                .map(|(_, &v)| v.0 as usize),
                        );
                        for d in all_states(&vars) {
                            check_wp_exact(&AsMeta(&client), atom, prim, &p, &d).unwrap();
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn figure1_check1_proven_with_x_y() {
        let (program, pa) = fixture();
        let client =
            TypestateClient::for_declared_automaton(&program, &pa, SiteId(0)).unwrap();
        let q = program.query_by_label("check1").unwrap();
        let query = client.state_query(q);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        match r.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(cost, 2, "cheapest abstraction is {{x, y}}");
                let x = program.main_var("x").unwrap();
                let y = program.main_var("y").unwrap();
                let z = program.main_var("z").unwrap();
                assert!(param.contains(x.0 as usize));
                assert!(param.contains(y.0 as usize));
                assert!(!param.contains(z.0 as usize), "z must not be tracked");
            }
            other => panic!("expected proof, got {other:?}"),
        }
        assert!(r.iterations <= 4);
    }

    #[test]
    fn figure1_check2_impossible() {
        let (program, pa) = fixture();
        let client =
            TypestateClient::for_declared_automaton(&program, &pa, SiteId(0)).unwrap();
        let q = program.query_by_label("check2").unwrap();
        let query = client.state_query(q);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Impossible);
        assert!(r.iterations <= 4, "paper resolves check2 in 2 iterations");
    }

    #[test]
    fn figure1_agrees_with_brute_force() {
        let (program, pa) = fixture();
        let client =
            TypestateClient::for_declared_automaton(&program, &pa, SiteId(0)).unwrap();
        for label in ["check1", "check2"] {
            let q = program.query_by_label(label).unwrap();
            let query = client.state_query(q);
            let callees = |c: pda_lang::CallId| pa.callees(c).to_vec();
            let truth = brute_force_optimum(
                &program,
                &callees,
                &client,
                &query,
                16,
                pda_dataflow::RhsLimits::default(),
            );
            let got = solve_query(&program, &callees, &client, &query, &TracerConfig::default());
            match (truth, got.outcome) {
                (Some((_, want)), Outcome::Proven { cost, .. }) => assert_eq!(cost, want),
                (None, Outcome::Impossible) => {}
                (t, g) => panic!("disagreement on {label}: brute={t:?} tracer={g:?}"),
            }
        }
    }

    #[test]
    fn stress_mode_errors_without_must_alias() {
        let src = r#"
            class W { fn work(); }
            fn main() {
                var a, b;
                a = new W;
                b = a;
                a.work();
                query q: state b in { };
            }
        "#;
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        let client = TypestateClient::new(&program, &pa, SiteId(0), TsMode::stress());
        let q = program.query_by_label("q").unwrap();
        let point = program.queries[q].point;
        let query = client.stress_query(point);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        // Tracking a rescues the weak update: cheapest abstraction is {a}.
        match r.outcome {
            Outcome::Proven { param, cost } => {
                assert_eq!(cost, 1);
                let a = program.main_var("a").unwrap();
                assert!(param.contains(a.0 as usize));
            }
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn reallocation_in_loop_unbinds_variable() {
        // After a second allocation at the tracked site, x no longer
        // must-alias the first object; the stress property then errors.
        let src = r#"
            class W { fn work(); }
            fn main() {
                var x;
                x = new W;
                while (*) { x = new W; }
                x.work();
                query q: state x in { };
            }
        "#;
        let program = pda_lang::parse_program(src).unwrap();
        let pa = PointsTo::analyze(&program);
        // Track the FIRST site (outside the loop). Re-allocation happens at
        // the second site, which kills x from the must-alias set, so no
        // abstraction can prove the query for site 0 objects... except that
        // tracking x still proves it for the path without the loop; with
        // the loop taken, x points elsewhere, and the weak update errs.
        let client = TypestateClient::new(&program, &pa, SiteId(0), TsMode::stress());
        let q = program.query_by_label("q").unwrap();
        let query = client.stress_query(program.queries[q].point);
        let r = solve_query(
            &program,
            &|c| pa.callees(c).to_vec(),
            &client,
            &query,
            &TracerConfig::default(),
        );
        assert_eq!(r.outcome, Outcome::Impossible);
    }
}
