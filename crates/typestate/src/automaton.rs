//! Type-state automata, built from Jaylite `typestate` declarations.

use pda_lang::{NameId, Program, TypestateDecl};
use std::collections::HashMap;

/// Outcome of one automaton transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No transition declared for this (state, method): the object stays.
    Stay,
    /// Move to the given state.
    To(u32),
    /// The call is a protocol violation (the paper's `⊤` outcome).
    Error,
}

/// A deterministic type-state automaton for one class.
///
/// States are dense indices; `delta` maps method names to per-state
/// transitions (`Stay` for undeclared pairs, matching the Fink et al.
/// convention that unspecified calls do not change the type-state).
#[derive(Debug, Clone)]
pub struct Automaton {
    state_names: Vec<NameId>,
    init: u32,
    delta: HashMap<NameId, Vec<Transition>>,
}

impl Automaton {
    /// Builds the automaton from a resolved declaration.
    ///
    /// State indices are assigned in order of first mention (initial state
    /// first); the reserved target name `error` becomes
    /// [`Transition::Error`].
    pub fn from_decl(decl: &TypestateDecl) -> Automaton {
        let mut state_names = Vec::new();
        let mut index: HashMap<NameId, u32> = HashMap::new();
        let mut state_of = |n: NameId, names: &mut Vec<NameId>| -> u32 {
            *index.entry(n).or_insert_with(|| {
                names.push(n);
                (names.len() - 1) as u32
            })
        };
        let init = state_of(decl.init, &mut state_names);
        // First pass: register all non-error states.
        for &(from, _, to) in &decl.transitions {
            state_of(from, &mut state_names);
            if to != decl.error_name {
                state_of(to, &mut state_names);
            }
        }
        let n = state_names.len();
        let mut delta: HashMap<NameId, Vec<Transition>> = HashMap::new();
        for &(from, method, to) in &decl.transitions {
            let row = delta.entry(method).or_insert_with(|| vec![Transition::Stay; n]);
            let f = state_of(from, &mut state_names) as usize;
            row[f] = if to == decl.error_name {
                Transition::Error
            } else {
                Transition::To(state_of(to, &mut state_names))
            };
        }
        Automaton { state_names, init, delta }
    }

    /// Builds the automaton for the (unique) declaration covering `class`,
    /// if any.
    pub fn for_class(program: &Program, class: pda_lang::ClassId) -> Option<Automaton> {
        program
            .typestates
            .iter()
            .find(|d| d.class == class)
            .map(Automaton::from_decl)
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.state_names.len()
    }

    /// The initial state index.
    pub fn init(&self) -> u32 {
        self.init
    }

    /// The name of state `s` (for display).
    pub fn state_name(&self, s: u32) -> NameId {
        self.state_names[s as usize]
    }

    /// The state index for a name, if it is a state of this automaton.
    pub fn state_by_name(&self, n: NameId) -> Option<u32> {
        self.state_names.iter().position(|&x| x == n).map(|i| i as u32)
    }

    /// Returns `true` if the automaton reacts to method `m` at all.
    pub fn handles(&self, m: NameId) -> bool {
        self.delta.contains_key(&m)
    }

    /// The transition for `(state, method)`.
    pub fn step(&self, s: u32, m: NameId) -> Transition {
        match self.delta.get(&m) {
            Some(row) => row[s as usize],
            None => Transition::Stay,
        }
    }

    /// States from which calling `m` errors.
    pub fn error_states(&self, m: NameId) -> Vec<u32> {
        (0..self.n_states() as u32)
            .filter(|&s| self.step(s, m) == Transition::Error)
            .collect()
    }

    /// States `s'` with `step(s', m) = s` (including `Stay` self-loops).
    pub fn preimage(&self, s: u32, m: NameId) -> Vec<u32> {
        (0..self.n_states() as u32)
            .filter(|&s2| match self.step(s2, m) {
                Transition::Stay => s2 == s,
                Transition::To(t) => t == s,
                Transition::Error => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pda_lang::parse_program;

    fn file_automaton() -> (pda_lang::Program, Automaton) {
        let p = parse_program(
            r#"
            class File { fn open(); fn close(); fn read(); }
            typestate File {
                init closed;
                closed -> open -> opened;
                opened -> close -> closed;
                opened -> open -> error;
                closed -> close -> error;
            }
            fn main() { var x; x = new File; }
            "#,
        )
        .unwrap();
        let a = Automaton::for_class(&p, pda_lang::ClassId(0)).unwrap();
        (p, a)
    }

    #[test]
    fn builds_states_and_transitions() {
        let (p, a) = file_automaton();
        assert_eq!(a.n_states(), 2);
        let closed = a.init();
        let open_m = p.names.get("open").unwrap();
        let close_m = p.names.get("close").unwrap();
        let opened = match a.step(closed, open_m) {
            Transition::To(s) => s,
            other => panic!("expected To, got {other:?}"),
        };
        assert_ne!(closed, opened);
        assert_eq!(a.step(opened, close_m), Transition::To(closed));
        assert_eq!(a.step(opened, open_m), Transition::Error);
        assert_eq!(a.step(closed, close_m), Transition::Error);
    }

    #[test]
    fn unlisted_methods_stay() {
        let (p, a) = file_automaton();
        let read_m = p.names.get("read").unwrap();
        assert!(!a.handles(read_m));
        assert_eq!(a.step(a.init(), read_m), Transition::Stay);
        assert!(a.error_states(read_m).is_empty());
    }

    #[test]
    fn error_states_and_preimage() {
        let (p, a) = file_automaton();
        let open_m = p.names.get("open").unwrap();
        let closed = a.init();
        let opened = 1 - closed; // two states
        assert_eq!(a.error_states(open_m), vec![opened]);
        // preimage of opened under open: closed (To) — opened errors.
        assert_eq!(a.preimage(opened, open_m), vec![closed]);
        // preimage of closed under open: nothing.
        assert!(a.preimage(closed, open_m).is_empty());
    }

    #[test]
    fn no_declaration_gives_none() {
        let p = parse_program("class C {} fn main() { var x; x = new C; }").unwrap();
        assert!(Automaton::for_class(&p, pda_lang::ClassId(0)).is_none());
    }
}
