//! Abstract states and meta-primitives of the type-state client
//! (Figures 4 and 9).

use pda_lang::VarId;
use pda_meta::Primitive;
use pda_util::BitSet;
use std::collections::BTreeSet;
use std::fmt;

/// A type-state abstract state `d ∈ D` for one tracked allocation site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TsState {
    /// The tracked site has not allocated yet on this path.
    Unalloc,
    /// The tracked object exists: possible type-states and must-alias set.
    Obj {
        /// Over-approximation of the object's possible type-states
        /// (automaton state indices; the stress mode uses the single
        /// state `0`).
        ts: BTreeSet<u32>,
        /// Variables that *must* point to the object. Always a subset of
        /// the abstraction parameter.
        vs: BTreeSet<VarId>,
    },
    /// A type-state error may have occurred (the paper's `⊤`).
    Top,
}

impl TsState {
    /// The state right after the tracked site allocates into `dst`.
    pub fn fresh(init: u32, dst: Option<VarId>) -> TsState {
        TsState::Obj {
            ts: BTreeSet::from([init]),
            vs: dst.into_iter().collect(),
        }
    }
}

/// Primitive formulas of the type-state meta-domain (Figure 9, extended
/// with `unalloc` for the pre-allocation regime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TsPrim {
    /// `d = ⊤`.
    Err,
    /// `d = Unalloc`.
    Unalloc,
    /// `d = (ts, vs)` and `x ∈ vs`.
    Var(VarId),
    /// `d = (ts, vs)` and `s ∈ ts`.
    Type(u32),
    /// `x ∈ p` — the abstraction tracks `x`.
    Param(VarId),
}

impl fmt::Display for TsPrim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsPrim::Err => write!(f, "err"),
            TsPrim::Unalloc => write!(f, "unalloc"),
            TsPrim::Var(x) => write!(f, "var(v{x})"),
            TsPrim::Type(s) => write!(f, "type(s{s})"),
            TsPrim::Param(x) => write!(f, "param(v{x})"),
        }
    }
}

impl Primitive for TsPrim {
    type Param = BitSet;
    type State = TsState;

    fn holds(&self, p: &BitSet, d: &TsState) -> bool {
        match self {
            TsPrim::Param(x) => p.contains(x.0 as usize),
            TsPrim::Err => matches!(d, TsState::Top),
            TsPrim::Unalloc => matches!(d, TsState::Unalloc),
            TsPrim::Var(x) => matches!(d, TsState::Obj { vs, .. } if vs.contains(x)),
            TsPrim::Type(s) => matches!(d, TsState::Obj { ts, .. } if ts.contains(s)),
        }
    }

    fn eval_state(&self, d: &TsState) -> Option<bool> {
        match self {
            TsPrim::Param(_) => None,
            TsPrim::Err => Some(matches!(d, TsState::Top)),
            TsPrim::Unalloc => Some(matches!(d, TsState::Unalloc)),
            TsPrim::Var(x) => Some(matches!(d, TsState::Obj { vs, .. } if vs.contains(x))),
            TsPrim::Type(s) => Some(matches!(d, TsState::Obj { ts, .. } if ts.contains(s))),
        }
    }

    fn param_atom(&self) -> Option<(usize, bool)> {
        match self {
            TsPrim::Param(x) => Some((x.0 as usize, true)),
            _ => None,
        }
    }

    fn contradicts(&self, other: &Self) -> bool {
        use TsPrim::*;
        // The three state shapes (⊤ / Unalloc / Obj) are mutually
        // exclusive; Var/Type assert the Obj shape.
        let shape = |p: &TsPrim| match p {
            Err => Some(0u8),
            Unalloc => Some(1),
            Var(_) | Type(_) => Some(2),
            Param(_) => None,
        };
        match (shape(self), shape(other)) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_matches_shapes() {
        let p = BitSet::from_iter(4, [1]);
        let obj = TsState::Obj { ts: BTreeSet::from([0, 2]), vs: BTreeSet::from([VarId(1)]) };
        assert!(TsPrim::Var(VarId(1)).holds(&p, &obj));
        assert!(!TsPrim::Var(VarId(0)).holds(&p, &obj));
        assert!(TsPrim::Type(2).holds(&p, &obj));
        assert!(!TsPrim::Err.holds(&p, &obj));
        assert!(TsPrim::Err.holds(&p, &TsState::Top));
        assert!(TsPrim::Unalloc.holds(&p, &TsState::Unalloc));
        assert!(TsPrim::Param(VarId(1)).holds(&p, &obj));
        assert!(!TsPrim::Param(VarId(0)).holds(&p, &obj));
    }

    #[test]
    fn eval_state_none_only_for_param() {
        let d = TsState::Top;
        assert_eq!(TsPrim::Err.eval_state(&d), Some(true));
        assert_eq!(TsPrim::Var(VarId(0)).eval_state(&d), Some(false));
        assert_eq!(TsPrim::Param(VarId(0)).eval_state(&d), None);
    }

    /// Same contract the interned meta-kernel relies on as
    /// `pda-escape`'s `intern_contract_holds_exhaustively`: the
    /// intern-time-cached `param_atom`/`eval_state` and the precomputed
    /// `implies`/`contradicts` matrices must be pure, symmetric
    /// (contradiction), and sound against `holds`.
    #[test]
    fn intern_contract_holds_on_samples() {
        let prims = [
            TsPrim::Err,
            TsPrim::Unalloc,
            TsPrim::Var(VarId(0)),
            TsPrim::Var(VarId(1)),
            TsPrim::Type(0),
            TsPrim::Type(1),
            TsPrim::Param(VarId(0)),
            TsPrim::Param(VarId(1)),
        ];
        let states = [
            TsState::Top,
            TsState::Unalloc,
            TsState::fresh(0, None),
            TsState::fresh(0, Some(VarId(0))),
            TsState::Obj { ts: BTreeSet::from([0, 1]), vs: BTreeSet::from([VarId(0), VarId(1)]) },
        ];
        let params: Vec<BitSet> =
            (0..4u32).map(|bits| BitSet::from_iter(2, (0..2).filter(|i| (bits >> i) & 1 == 1))).collect();
        for a in &prims {
            assert_eq!(a.param_atom(), a.param_atom());
            for d in &states {
                assert_eq!(a.eval_state(d), a.eval_state(d));
            }
            for b in &prims {
                assert_eq!(a.contradicts(b), b.contradicts(a), "{a} vs {b}");
                if a.contradicts(b) {
                    for p in &params {
                        for d in &states {
                            assert!(
                                !(a.holds(p, d) && b.holds(p, d)),
                                "{a} and {b} both hold under p={p}, d={d:?}"
                            );
                        }
                    }
                }
                if a.implies(b) {
                    for p in &params {
                        for d in &states {
                            assert!(!a.holds(p, d) || b.holds(p, d), "{a} ⇒ {b} broken");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shape_contradictions() {
        assert!(TsPrim::Err.contradicts(&TsPrim::Unalloc));
        assert!(TsPrim::Err.contradicts(&TsPrim::Var(VarId(0))));
        assert!(TsPrim::Unalloc.contradicts(&TsPrim::Type(0)));
        assert!(!TsPrim::Var(VarId(0)).contradicts(&TsPrim::Type(1)));
        assert!(!TsPrim::Param(VarId(0)).contradicts(&TsPrim::Err));
    }
}
