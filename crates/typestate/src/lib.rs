//! The parametric **type-state analysis** client (the paper's Figures 4,
//! 9, and 10, after Fink et al.).
//!
//! The analysis tracks, for one allocation site `h`, an abstract object
//! with state `(ts, vs)`: `ts` over-approximates the possible type-states
//! and `vs` is a *must-alias set* — variables definitely pointing to the
//! object. The abstraction parameter `p ⊆ Vars` limits which variables may
//! ever enter `vs`; tracking fewer variables is cheaper but forces weak
//! updates at method calls. `⊤` records that a type-state error may have
//! occurred. We add an explicit `Unalloc` state for the program prefix
//! before the tracked site first allocates (the paper leaves this regime
//! implicit), with a matching meta-primitive so weakest preconditions stay
//! exact.
//!
//! Two modes reproduce the paper's usage:
//!
//! * [`TsMode::Automaton`] — a real type-state automaton (e.g. the `File`
//!   open/close protocol of Figure 1), declared in Jaylite with
//!   `typestate C { ... }`.
//! * [`TsMode::Stress`] — the evaluation's "fictitious" property
//!   (Section 6): any virtual call `v.m()` whose receiver *may* point to
//!   `h` (0-CFA) but is not in the must-alias set drives the object to
//!   error. This stress-tests must-alias precision exactly as the paper's
//!   experiments do.

#![warn(missing_docs)]

mod automaton;
mod client;
mod prim;

pub use automaton::{Automaton, Transition};
pub use client::{TsMode, TypestateClient};
pub use prim::{TsPrim, TsState};
