//! Small shared utilities for the `optimum-pda` workspace.
//!
//! This crate is dependency-free and provides the plumbing every other crate
//! in the workspace leans on:
//!
//! * [`BitSet`] — a growable bit set used for abstraction parameters
//!   (sets of tracked variables, site→`L` maps) and worklists.
//! * [`define_idx!`] — typed index newtypes plus [`IdxVec`], a vector
//!   indexed by such a newtype, mirroring the arena style common in
//!   compiler IRs.
//! * [`Summary`] — a min/max/mean accumulator used when reproducing the
//!   paper's tables.
//! * [`CacheStats`] — hit/miss counters with rate reporting, shared by the
//!   batch scheduler's forward-run cache and the experiment drivers.
//! * [`SplitMix64`] — a tiny deterministic PRNG, replacing the external
//!   `rand` crate so the workspace builds offline.
//! * [`Deadline`] — a cooperative wall-clock cancel token polled by the
//!   tabulation and solver inner loops.
//! * [`MemBudget`] — a deterministic atomic byte ledger charged at the
//!   engines' allocation hot spots and polled by the TRACER memory
//!   governor's degradation ladder.
//! * [`obs`] — structured observability: the [`ObsRegistry`]
//!   counter/span registry, the typed [`Event`] trace stream, and the
//!   [`TraceSink`] implementations behind `--trace`/`--metrics`.
//! * [`json`] — the shared hand-rolled JSONL codec (flat objects) used by
//!   both the batch checkpoint format and the trace-event stream.
//! * [`faultplane`] — the deterministic fault-point injection plane:
//!   named seams ([`fault_point`]) armed by a [`FaultPlan`]
//!   (`--fault-plan`/`PDA_FAULT_PLAN`) that panics, stalls, IO-fails, or
//!   aborts at exact, reproducible visits.
//! * [`heartbeat`] — the thread-local progress counter the serve
//!   watchdog uses to tell a slow request from a non-cooperative stall.
//! * [`par`] — `std`-only work-pool and lock-striping helpers
//!   ([`scoped_chunk_map`], [`StripedLock`]) behind the batch scheduler's
//!   sharded forward cache and the meta-kernel's data-parallel paths.
//!
//! # Examples
//!
//! ```
//! use pda_util::BitSet;
//! let mut s = BitSet::new(8);
//! s.insert(3);
//! assert!(s.contains(3) && !s.contains(4));
//! assert_eq!(s.count(), 1);
//! ```

#![warn(missing_docs)]

mod bitset;
mod deadline;
pub mod faultplane;
pub mod heartbeat;
mod idx;
pub mod json;
mod membudget;
pub mod obs;
pub mod par;
mod rng;
mod stats;

pub use bitset::BitSet;
pub use deadline::{AmbientDeadlineGuard, Deadline, DeadlineExceeded};
pub use faultplane::{fault_point, fault_point_io, FaultFile, FaultPlan};
pub use heartbeat::{beat, install_heartbeat, HeartbeatGuard};
pub use idx::IdxVec;
pub use membudget::{parse_bytes, MemBudget};
pub use obs::{
    Counter, Event, FileSink, NullSink, ObsRegistry, Recorder, Span, SpanKind, SpanStats,
    TraceSink,
};
pub use par::{fnv1a, scoped_chunk_map, StripedLock};
pub use rng::SplitMix64;
pub use stats::{CacheStats, Summary};

/// Types usable as dense arena indices.
///
/// Implemented by the newtypes generated with [`define_idx!`]; the trait is
/// what lets [`IdxVec`] be indexed type-safely.
pub trait Idx: Copy + Eq + Ord + core::hash::Hash + core::fmt::Debug {
    /// Wraps a raw `usize` index.
    fn from_usize(i: usize) -> Self;
    /// Unwraps to the raw `usize` index.
    fn index(self) -> usize;
}
