//! A compact growable bit set.

use std::fmt;

/// A fixed-universe bit set over `0..len`.
///
/// Used throughout the workspace for abstraction parameters: the type-state
/// client stores "which variables may appear in must-alias sets" and the
/// thread-escape client stores "which allocation sites are summarized by
/// `L`" as `BitSet`s.
///
/// # Examples
///
/// ```
/// use pda_util::BitSet;
/// let mut a = BitSet::new(10);
/// a.insert(1);
/// a.insert(9);
/// let b = BitSet::from_iter(10, [1, 2]);
/// assert!(!a.is_subset(&b));
/// assert_eq!(a.union(&b).count(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates a set with universe `0..len` containing the given elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= len`.
    pub fn from_iter<I: IntoIterator<Item = usize>>(len: usize, iter: I) -> Self {
        let mut s = BitSet::new(len);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Creates a set containing every element of the universe.
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = !0;
        }
        s.clear_tail();
        s
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The universe size (`0..len`), not the number of elements.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Returns `true` if `i` is in the set.
    ///
    /// Elements outside the universe are reported absent rather than
    /// panicking, which keeps membership tests total.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= universe()`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of universe {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bit set universes differ");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Set union, leaving both operands untouched.
    pub fn union(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bit set universes differ");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        BitSet {
            len: self.len,
            words,
        }
    }

    /// Set intersection, leaving both operands untouched.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bit set universes differ");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a & b)
            .collect();
        BitSet {
            len: self.len,
            words,
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if (w >> b) & 1 == 1 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = BitSet::new(3);
        assert!(!s.contains(100));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_insert_panics() {
        let mut s = BitSet::new(3);
        s.insert(3);
    }

    #[test]
    fn full_respects_tail() {
        let s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn subset_union_intersection() {
        let a = BitSet::from_iter(8, [1, 2, 3]);
        let b = BitSet::from_iter(8, [2, 3]);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.union(&b), a);
        assert_eq!(a.intersection(&b), b);
    }

    #[test]
    fn iter_in_order() {
        let a = BitSet::from_iter(200, [5, 64, 199]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 64, 199]);
    }

    #[test]
    fn display_and_debug() {
        let a = BitSet::from_iter(8, [1, 3]);
        assert_eq!(format!("{a}"), "{1, 3}");
        assert_eq!(format!("{a:?}"), "{1, 3}");
        assert_eq!(format!("{}", BitSet::new(4)), "{}");
    }
}
