//! A tiny deterministic PRNG so the workspace needs no external `rand`.
//!
//! The generator is Sebastiano Vigna's **SplitMix64**: one 64-bit word of
//! state, an additive Weyl sequence, and a two-round mix. It passes BigCrush,
//! is trivially seedable (every seed, including 0, is fine), and — crucial
//! for this repository — the same seed reproduces the same stream on every
//! platform and toolchain, which keeps the generated benchmark suite and the
//! randomized tests byte-for-byte deterministic.
//!
//! This is **not** a cryptographic generator; it is for benchmark synthesis
//! and randomized testing only.

/// Deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use pda_util::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is valid.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `lo..hi` (half-open).
    ///
    /// Uses Lemire's widening-multiply range reduction; the modulo bias is
    /// at most 2⁻⁶⁴ per draw, which is far below anything the tests or the
    /// benchmark generator could observe.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range requires lo < hi, got {lo}..{hi}");
        let span = (hi - lo) as u64;
        let r = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + r as usize
    }

    /// Uniform `usize` in `lo..=hi` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "gen_range_inclusive requires lo <= hi");
        self.gen_range(lo, hi + 1)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of mantissa: uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// A reference to a uniformly chosen element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_range(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_reference_values() {
        // First outputs for seed 0, from the SplitMix64 reference
        // implementation — guards against silent drift of the constants.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SplitMix64::new(123);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = r.gen_range(2, 7);
            assert!((2..7).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..7 drawn");
        for _ in 0..50 {
            let x = r.gen_range_inclusive(1, 3);
            assert!((1..=3).contains(&x));
        }
        assert_eq!(r.gen_range(4, 5), 4);
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut r = SplitMix64::new(9);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let heads = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "p=0.5 wildly off: {heads}");
    }

    #[test]
    fn pick_returns_members() {
        let mut r = SplitMix64::new(1);
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn empty_range_panics() {
        SplitMix64::new(0).gen_range(3, 3);
    }
}
