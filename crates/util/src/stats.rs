//! Minimal statistics accumulator for the experiment tables.

use std::fmt;

/// Accumulates min / max / mean of a stream of samples.
///
/// The paper's Tables 2 and 3 report `min max avg` triples per benchmark;
/// this is the accumulator behind those columns.
///
/// # Examples
///
/// ```
/// use pda_util::Summary;
/// let s: Summary = [2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(4.0));
/// assert_eq!(s.mean(), Some(3.0));
/// assert_eq!(format!("{s}"), "2 4 3.0");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl fmt::Display for Summary {
    /// Formats as `min max avg` in the paper's table style (`-` if empty).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.max(), self.mean()) {
            (Some(lo), Some(hi), Some(avg)) => write!(f, "{lo:.0} {hi:.0} {avg:.1}"),
            _ => write!(f, "- - -"),
        }
    }
}

/// Hit/miss counters for a memoizing cache.
///
/// Used by the batch scheduler's shared forward-run cache and aggregated
/// across benchmarks by the experiment drivers.
///
/// # Examples
///
/// ```
/// use pda_util::CacheStats;
/// let mut c = CacheStats::default();
/// c.hit();
/// c.miss();
/// c.hit();
/// assert_eq!(c.hits, 2);
/// assert_eq!(c.lookups(), 3);
/// assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(format!("{c}"), "2/3 hits (66.7%)");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populate) an entry.
    pub misses: u64,
}

impl CacheStats {
    /// Records one hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Accumulates another counter pair into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl fmt::Display for CacheStats {
    /// Formats as `hits/lookups hits (rate%)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} hits ({:.1}%)",
            self.hits,
            self.lookups(),
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_merge_and_rate() {
        let mut a = CacheStats { hits: 1, misses: 3 };
        a.merge(CacheStats { hits: 2, misses: 0 });
        assert_eq!(a, CacheStats { hits: 3, misses: 3 });
        assert_eq!(a.hit_rate(), 0.5);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(format!("{}", CacheStats::default()), "0/0 hits (0.0%)");
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(format!("{s}"), "- - -");
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.add(5.0);
        assert_eq!((s.min(), s.max(), s.mean()), (Some(5.0), Some(5.0), Some(5.0)));
    }

    #[test]
    fn negative_and_positive() {
        let s: Summary = [-1.0, 0.0, 7.0].into_iter().collect();
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.0));
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.count(), 3);
    }
}
