//! Deterministic fault-point injection plane.
//!
//! A **fault point** is a named seam in the engine — `cache.slot_fill`,
//! `journal.append`, `bdd.conjoin` — where a crash, stall, or I/O error
//! is physically possible in production. Code marks the seam with a call
//! to [`fault_point`] (or [`fault_point_io`] for seams that can surface a
//! structured [`std::io::Error`]); the call is a single relaxed atomic
//! load when no plan is armed, so shipping the markers costs nothing.
//!
//! A [`FaultPlan`] arms the plane. Plans are parsed from a spec string
//! (`--fault-plan` / `PDA_FAULT_PLAN`) with this grammar:
//!
//! ```text
//! plan     := entry (';' entry)*
//! entry    := point '@' hit '=' action     fire at the hit-th visit (1-based)
//!           | point '=' action             fire at every visit
//!           | 'seed:' u64 [':' permille]   seeded mode: each visit fires with
//!                                          probability permille/1000 (default 10),
//!                                          action drawn from {panic, stall:1, ioerr}
//!           | 'record'                     record-only: count visits, fire nothing
//! action   := 'panic' | 'stall:' ms | 'ioerr' [':' kind] | 'abort' | 'shortwrite'
//! kind     := 'notfound' | 'perm' | 'interrupted' | 'brokenpipe' | 'timedout' | 'other'
//! ```
//!
//! Everything is deterministic: explicit entries key on per-point visit
//! counters, and seeded mode hashes `(seed, point name, visit ordinal)`
//! through [`SplitMix64`], so the same plan against the same workload
//! fires at the same seams on every run.
//!
//! Action semantics at a [`fault_point`] (non-I/O seam):
//!
//! * `panic` — panics with a tagged message; the engine's panic-isolation
//!   boundary turns it into a structured `EngineFault`.
//! * `stall:ms` — sleeps non-cooperatively, in small slices that observe
//!   the ambient [`Deadline`] (see [`Deadline::enter_ambient`]) so a
//!   cooperative timeout shorter than the stall still fires.
//! * `ioerr` / `shortwrite` — no real I/O to fail here, so they panic
//!   with an `injected io error` tag (and count in [`io_faults`]).
//! * `abort` — [`std::process::abort`]: the crash-class action, for
//!   kill-at-point torture of checkpoint/journal recovery.
//!
//! At a [`fault_point_io`] or inside a [`FaultFile`], `ioerr` surfaces as
//! a real `Err(std::io::Error)` and `shortwrite` writes only a prefix of
//! the buffer before failing — the signature of a torn record.
//!
//! [`FaultFile`] wraps a [`File`] so every write syscall of a checkpoint
//! or journal writer routes through the plane without touching callers.
//!
//! The plane keeps global counters ([`faults_injected`], [`io_faults`])
//! and per-point visit counts ([`hits`]); a `record` plan makes a dry run
//! enumerate every seam a workload crosses, which is what the crash-point
//! torture harness replays one fault at a time.

use crate::{Deadline, SplitMix64};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed fault point does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a tagged message (absorbed by panic isolation).
    Panic,
    /// Sleep this long, non-cooperatively but in deadline-observing
    /// slices.
    Stall(Duration),
    /// Fail with this I/O error kind (a tagged panic at non-I/O seams).
    IoErr(io::ErrorKind),
    /// Abort the whole process — the crash-class action.
    Abort,
    /// Write only a prefix of the buffer, then fail (I/O seams only;
    /// behaves as `ioerr` elsewhere).
    ShortWrite,
}

/// One armed entry: fire `action` at the `hit`-th visit (0 = every
/// visit).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Arm {
    hit: u64,
    action: FaultAction,
}

/// A parsed, deterministic fault plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Explicit arms per point name.
    arms: BTreeMap<String, Vec<Arm>>,
    /// Seeded mode: `(seed, permille)`.
    seeded: Option<(u64, u64)>,
    /// Record-only mode requested.
    record: bool,
}

impl FaultPlan {
    /// Parses a plan spec (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            if entry == "record" {
                plan.record = true;
                continue;
            }
            if let Some(rest) = entry.strip_prefix("seed:") {
                let mut parts = rest.splitn(2, ':');
                let seed: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("bad seed in `{entry}`"))?;
                let permille: u64 = match parts.next() {
                    None => 10,
                    Some(p) => p.parse().map_err(|_| format!("bad permille in `{entry}`"))?,
                };
                plan.seeded = Some((seed, permille.min(1000)));
                continue;
            }
            let (target, action) = entry
                .split_once('=')
                .ok_or_else(|| format!("`{entry}`: expected point[@hit]=action"))?;
            let action = parse_action(action).ok_or_else(|| {
                format!("`{entry}`: unknown action `{action}` (panic|stall:MS|ioerr[:KIND]|abort|shortwrite)")
            })?;
            let (point, hit) = match target.split_once('@') {
                None => (target, 0),
                Some((p, h)) => {
                    let h: u64 =
                        h.parse().map_err(|_| format!("`{entry}`: bad hit ordinal `{h}`"))?;
                    if h == 0 {
                        return Err(format!("`{entry}`: hit ordinals are 1-based"));
                    }
                    (p, h)
                }
            };
            if point.is_empty() {
                return Err(format!("`{entry}`: empty point name"));
            }
            plan.arms.entry(point.to_string()).or_default().push(Arm { hit, action });
        }
        Ok(plan)
    }

    /// True if the plan does nothing at all.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty() && self.seeded.is_none() && !self.record
    }

    /// The action to fire at the `hit`-th (1-based) visit of `point`, if
    /// any.
    fn action_for(&self, point: &str, hit: u64) -> Option<FaultAction> {
        if let Some(arms) = self.arms.get(point) {
            for arm in arms {
                if arm.hit == 0 || arm.hit == hit {
                    return Some(arm.action.clone());
                }
            }
        }
        if let Some((seed, permille)) = self.seeded {
            let mut rng = SplitMix64::new(
                seed ^ crate::fnv1a(point.as_bytes())
                    ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let draw = rng.next_u64();
            if draw % 1000 < permille {
                // The crash-class Abort is deliberately excluded from
                // seeded mode: a seeded sweep should exercise recoverable
                // faults, not kill the process at a random seam.
                return Some(match (draw >> 32) % 3 {
                    0 => FaultAction::Panic,
                    1 => FaultAction::Stall(Duration::from_millis(1)),
                    _ => FaultAction::IoErr(io::ErrorKind::Other),
                });
            }
        }
        None
    }
}

fn parse_action(s: &str) -> Option<FaultAction> {
    match s {
        "panic" => Some(FaultAction::Panic),
        "abort" => Some(FaultAction::Abort),
        "shortwrite" => Some(FaultAction::ShortWrite),
        "ioerr" => Some(FaultAction::IoErr(io::ErrorKind::Other)),
        _ => {
            if let Some(ms) = s.strip_prefix("stall:") {
                return Some(FaultAction::Stall(Duration::from_millis(ms.parse().ok()?)));
            }
            if let Some(kind) = s.strip_prefix("ioerr:") {
                let kind = match kind {
                    "notfound" => io::ErrorKind::NotFound,
                    "perm" => io::ErrorKind::PermissionDenied,
                    "interrupted" => io::ErrorKind::Interrupted,
                    "brokenpipe" => io::ErrorKind::BrokenPipe,
                    "timedout" => io::ErrorKind::TimedOut,
                    "other" => io::ErrorKind::Other,
                    _ => return None,
                };
                return Some(FaultAction::IoErr(kind));
            }
            None
        }
    }
}

/// Global plane state: the armed plan plus per-point visit counters.
struct PlaneState {
    plan: FaultPlan,
    hits: BTreeMap<String, u64>,
}

/// Fast-path gate: true iff a plan is installed. The *only* cost a
/// disabled fault point pays is one relaxed load of this flag.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<PlaneState>> = Mutex::new(None);
/// Total faults fired (all actions, including I/O ones).
static FAULTS_INJECTED: AtomicU64 = AtomicU64::new(0);
/// Faults of the I/O class (`ioerr`/`shortwrite`), wherever fired.
static IO_FAULTS: AtomicU64 = AtomicU64::new(0);

fn lock_state() -> std::sync::MutexGuard<'static, Option<PlaneState>> {
    // A panic *action* fired while a sibling thread holds the lock can
    // never happen (actions fire after the guard drops), but a panicking
    // test elsewhere must not wedge the plane — recover from poisoning.
    STATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Installs (arms) a fault plan parsed from `spec`, replacing any
/// previous plan and resetting per-point visit counters.
///
/// # Errors
///
/// The parse error for a malformed spec; the previous plan stays armed.
pub fn install(spec: &str) -> Result<(), String> {
    let plan = FaultPlan::parse(spec)?;
    let mut state = lock_state();
    if plan.is_empty() {
        *state = None;
        ARMED.store(false, Ordering::Release);
    } else {
        *state = Some(PlaneState { plan, hits: BTreeMap::new() });
        ARMED.store(true, Ordering::Release);
    }
    Ok(())
}

/// Arms the plan from `PDA_FAULT_PLAN`, if set. Returns whether a plan
/// was installed.
///
/// # Errors
///
/// The parse error for a malformed spec.
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var("PDA_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => install(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// Disarms the plane entirely (visit counters are kept readable until
/// the next [`install`]).
pub fn clear() {
    let mut state = lock_state();
    if let Some(s) = state.as_mut() {
        s.plan = FaultPlan::default();
    }
    ARMED.store(false, Ordering::Release);
}

/// True iff a plan is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Total faults fired since process start (monotonic; callers snapshot
/// and diff).
pub fn faults_injected() -> u64 {
    FAULTS_INJECTED.load(Ordering::Relaxed)
}

/// I/O-class faults fired since process start (monotonic).
pub fn io_faults() -> u64 {
    IO_FAULTS.load(Ordering::Relaxed)
}

/// Per-point visit counts accumulated since the last [`install`] —
/// the `record` plan's output, enumerating every seam a workload
/// crossed and how often.
pub fn hits() -> Vec<(String, u64)> {
    lock_state()
        .as_ref()
        .map(|s| s.hits.iter().map(|(k, &v)| (k.clone(), v)).collect())
        .unwrap_or_default()
}

/// Looks up (and counts) a visit, returning the action to fire, if any.
fn check(point: &str) -> Option<FaultAction> {
    let mut state = lock_state();
    let s = state.as_mut()?;
    let hit = {
        let h = s.hits.entry(point.to_string()).or_insert(0);
        *h += 1;
        *h
    };
    s.plan.action_for(point, hit)
    // The guard drops here: actions (sleep! panic!) never run under the
    // plane lock.
}

fn count_fault(io_class: bool) {
    FAULTS_INJECTED.fetch_add(1, Ordering::Relaxed);
    if io_class {
        IO_FAULTS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Sleeps `d` in small slices, returning early once the ambient
/// [`Deadline`] expires — so a cooperative timeout shorter than an
/// injected stall still fires at the engine's next poll.
pub fn stall(d: Duration) {
    let deadline = Deadline::ambient();
    let slice = Duration::from_millis(1).min(d);
    let until = std::time::Instant::now() + d;
    loop {
        if deadline.expired() {
            return;
        }
        let now = std::time::Instant::now();
        if now >= until {
            return;
        }
        std::thread::sleep(slice.min(until - now));
    }
}

fn fire(point: &str, action: FaultAction) {
    match action {
        FaultAction::Panic => {
            count_fault(false);
            panic!("injected fault at fault point `{point}`");
        }
        FaultAction::Stall(d) => {
            count_fault(false);
            stall(d);
        }
        FaultAction::IoErr(_) | FaultAction::ShortWrite => {
            // No real I/O to fail at this seam: surface as a tagged
            // panic so the panic-isolation boundary absorbs it.
            count_fault(true);
            panic!("injected io error at fault point `{point}`");
        }
        FaultAction::Abort => {
            count_fault(false);
            eprintln!("faultplane: aborting process at fault point `{point}`");
            std::process::abort();
        }
    }
}

/// Marks a non-I/O fault-point seam. Free (one relaxed atomic load)
/// unless a plan is armed; may panic, stall, or abort when armed.
pub fn fault_point(point: &str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    if let Some(action) = check(point) {
        fire(point, action);
    }
}

/// Marks an I/O fault-point seam: `ioerr`/`shortwrite` surface as a real
/// [`std::io::Error`] instead of a panic.
///
/// # Errors
///
/// The injected error when an I/O-class action fires at this visit.
pub fn fault_point_io(point: &str) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match check(point) {
        Some(FaultAction::IoErr(kind)) => {
            count_fault(true);
            Err(io::Error::new(kind, format!("injected io error at `{point}`")))
        }
        Some(FaultAction::ShortWrite) => {
            count_fault(true);
            Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected short write at `{point}`"),
            ))
        }
        Some(action) => {
            fire(point, action);
            Ok(())
        }
        None => Ok(()),
    }
}

/// A [`File`] whose writes route through the fault plane under a fixed
/// point name, so checkpoint/journal writers get `ioerr` and torn
/// `shortwrite` faults injected without their callers changing.
#[derive(Debug)]
pub struct FaultFile {
    inner: File,
    point: String,
}

impl FaultFile {
    /// Wraps an open file; all writes report to fault point `point`.
    pub fn new(inner: File, point: impl Into<String>) -> FaultFile {
        FaultFile { inner, point: point.into() }
    }

    /// Flushes OS buffers to disk (delegates to [`File::sync_all`]).
    ///
    /// # Errors
    ///
    /// Any filesystem error, including an injected one at `<point>.sync`.
    pub fn sync_all(&mut self) -> io::Result<()> {
        if ARMED.load(Ordering::Relaxed) {
            fault_point_io(&format!("{}.sync", self.point))?;
        }
        self.inner.sync_all()
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if ARMED.load(Ordering::Relaxed) {
            match check(&self.point) {
                Some(FaultAction::ShortWrite) => {
                    count_fault(true);
                    // A genuine torn write: half the buffer reaches the
                    // file, then the "device" fails. `write_all` loops on
                    // Ok(n < len), so the failure must be an Err — a
                    // short Ok would just be retried and never tear.
                    let n = buf.len() / 2;
                    if n > 0 {
                        self.inner.write_all(&buf[..n])?;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        format!("injected short write at `{}`", self.point),
                    ));
                }
                Some(FaultAction::IoErr(kind)) => {
                    count_fault(true);
                    return Err(io::Error::new(
                        kind,
                        format!("injected io error at `{}`", self.point),
                    ));
                }
                Some(action) => fire(&self.point, action),
                None => {}
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plane is process-global; tests that arm it must not overlap.
    static PLANE_TESTS: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        PLANE_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn plan_grammar_parses_and_rejects() {
        let p = FaultPlan::parse("a.b@2=panic; c=stall:50 ;seed:13:25;record").unwrap();
        assert_eq!(p.arms["a.b"], vec![Arm { hit: 2, action: FaultAction::Panic }]);
        assert_eq!(
            p.arms["c"],
            vec![Arm { hit: 0, action: FaultAction::Stall(Duration::from_millis(50)) }]
        );
        assert_eq!(p.seeded, Some((13, 25)));
        assert!(p.record);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        let q = FaultPlan::parse("x@1=ioerr:notfound;y=shortwrite;z@3=abort").unwrap();
        assert_eq!(q.arms["x"][0].action, FaultAction::IoErr(io::ErrorKind::NotFound));
        assert_eq!(q.arms["y"][0].action, FaultAction::ShortWrite);
        assert_eq!(q.arms["z"][0].action, FaultAction::Abort);
        for bad in
            ["nope", "x@0=panic", "x@z=panic", "x@1=explode", "x@1=stall:", "=panic", "seed:x"]
        {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn explicit_arm_fires_at_exact_hit() {
        let p = FaultPlan::parse("pt@3=panic;every=ioerr").unwrap();
        assert_eq!(p.action_for("pt", 1), None);
        assert_eq!(p.action_for("pt", 2), None);
        assert_eq!(p.action_for("pt", 3), Some(FaultAction::Panic));
        assert_eq!(p.action_for("pt", 4), None);
        for hit in 1..10 {
            assert!(p.action_for("every", hit).is_some());
        }
        assert_eq!(p.action_for("unknown", 1), None);
    }

    #[test]
    fn seeded_mode_is_deterministic_and_rate_bounded() {
        let p = FaultPlan::parse("seed:42:100").unwrap();
        let q = FaultPlan::parse("seed:42:100").unwrap();
        let mut fired = 0u64;
        for hit in 1..=1000 {
            let a = p.action_for("some.point", hit);
            assert_eq!(a, q.action_for("some.point", hit), "deterministic per (point,hit)");
            assert!(!matches!(a, Some(FaultAction::Abort)), "seeded mode never aborts");
            fired += u64::from(a.is_some());
        }
        // ~10% nominal; generous determinism-safe bounds.
        assert!((40..=250).contains(&fired), "seeded rate wildly off: {fired}/1000");
        // permille 0 never fires.
        let z = FaultPlan::parse("seed:42:0").unwrap();
        assert!((1..=1000).all(|h| z.action_for("some.point", h).is_none()));
    }

    #[test]
    fn record_mode_counts_without_firing() {
        let _g = serial();
        install("record").unwrap();
        assert!(armed());
        fault_point("alpha");
        fault_point("alpha");
        fault_point("beta");
        assert!(fault_point_io("gamma").is_ok());
        assert_eq!(
            hits(),
            vec![("alpha".into(), 2), ("beta".into(), 1), ("gamma".into(), 1)]
        );
        clear();
        assert!(!armed());
        // Disarmed points are free and uncounted.
        fault_point("alpha");
        assert_eq!(hits().iter().find(|(n, _)| n == "alpha").unwrap().1, 2);
        install("").unwrap();
        assert!(hits().is_empty(), "install resets counters");
    }

    #[test]
    fn armed_panic_and_ioerr_fire_and_count() {
        let _g = serial();
        install("boom@2=panic;disk@1=ioerr:perm").unwrap();
        let before = faults_injected();
        let io_before = io_faults();
        fault_point("boom"); // hit 1: nothing
        let err = std::panic::catch_unwind(|| fault_point("boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault at fault point `boom`"), "{msg}");
        let e = fault_point_io("disk").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
        assert!(fault_point_io("disk").is_ok(), "hit 2 is clean");
        assert_eq!(faults_injected() - before, 2);
        assert_eq!(io_faults() - io_before, 1);
        // An armed IoErr at a *non-IO* point surfaces as a tagged panic.
        install("dry@1=ioerr").unwrap();
        let err = std::panic::catch_unwind(|| fault_point("dry")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected io error"), "{msg}");
        clear();
    }

    #[test]
    fn fault_file_injects_ioerr_and_short_write() {
        let _g = serial();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pda-faultfile-{}.txt", std::process::id()));
        install("ff@2=ioerr;ff@3=shortwrite").unwrap();
        let mut f = FaultFile::new(File::create(&path).unwrap(), "ff");
        f.write_all(b"first\n").unwrap(); // hit 1: clean
        let e = f.write_all(b"second\n").unwrap_err(); // hit 2: ioerr
        assert_eq!(e.kind(), io::ErrorKind::Other);
        let e = f.write_all(b"0123456789\n").unwrap_err(); // hit 3: torn
        assert_eq!(e.kind(), io::ErrorKind::WriteZero);
        f.write_all(b"last\n").unwrap(); // hit 4: clean again
        f.flush().unwrap();
        clear();
        let body = std::fs::read_to_string(&path).unwrap();
        // The torn write left exactly half of its buffer behind.
        assert_eq!(body, "first\n01234last\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stall_respects_ambient_deadline() {
        let _g = serial();
        let long = Duration::from_secs(5);
        let t0 = std::time::Instant::now();
        {
            let _scope = Deadline::after(Duration::from_millis(20)).enter_ambient();
            stall(long);
        }
        assert!(t0.elapsed() < Duration::from_secs(1), "stall ignored the ambient deadline");
        // Without an ambient deadline the full (short) stall happens.
        let t0 = std::time::Instant::now();
        stall(Duration::from_millis(15));
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn install_from_env_roundtrip() {
        let _g = serial();
        // Not set (or set empty) installs nothing.
        std::env::remove_var("PDA_FAULT_PLAN");
        assert_eq!(install_from_env(), Ok(false));
        std::env::set_var("PDA_FAULT_PLAN", "p@1=panic");
        assert_eq!(install_from_env(), Ok(true));
        assert!(armed());
        std::env::set_var("PDA_FAULT_PLAN", "garbage");
        assert!(install_from_env().is_err());
        std::env::remove_var("PDA_FAULT_PLAN");
        clear();
    }
}
