//! Minimal hand-rolled JSONL codec for flat objects.
//!
//! The workspace is offline and registry-free by policy, so structured
//! records (batch checkpoints, trace events) are encoded by hand: one
//! flat JSON object per line, values restricted to strings and unsigned
//! decimal numbers. This module is the single shared implementation; the
//! checkpoint codec in `pda-tracer` and the trace-event codec in
//! [`crate::obs`] both build on it.

use std::collections::HashMap;

/// Escapes a string for embedding in a JSON double-quoted literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object (string or unsigned-number values) into a
/// field map; numbers are kept as their raw digits.
///
/// Returns `None` on anything that is not a single-line flat object with
/// string keys — nested objects, arrays, signed or fractional numbers,
/// and syntax errors all reject the line.
pub fn parse_json_line(line: &str) -> Option<HashMap<String, String>> {
    let inner = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = HashMap::new();
    let mut chars = inner.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| {
        while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            chars.next();
        }
    };
    let string = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>| -> Option<String> {
        let mut out = String::new();
        loop {
            match chars.next()? {
                '"' => return Some(out),
                '\\' => match chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    };
    loop {
        skip_ws(&mut chars);
        match chars.next() {
            None => break,
            Some('"') => {}
            Some(_) => return None,
        }
        let key = string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => {
                chars.next();
                string(&mut chars)?
            }
            Some(_) => {
                let mut num = String::new();
                while chars.peek().is_some_and(|&c| c != ',' && !c.is_ascii_whitespace()) {
                    num.push(chars.next().unwrap());
                }
                if num.is_empty() || !num.chars().all(|c| c.is_ascii_digit()) {
                    return None;
                }
                num
            }
            None => return None,
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            None => break,
            Some(',') => {}
            Some(_) => return None,
        }
    }
    Some(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\re\tf\u{1}g";
        let line = format!("{{\"k\":\"{}\"}}", json_escape(nasty));
        let fields = parse_json_line(&line).unwrap();
        assert_eq!(fields["k"], nasty);
    }

    #[test]
    fn numbers_keep_raw_digits() {
        let fields = parse_json_line("{\"a\":42,\"b\":\"x\"}").unwrap();
        assert_eq!(fields["a"], "42");
        assert_eq!(fields["b"], "x");
    }

    #[test]
    fn malformed_lines_reject() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":[1]}",
            "{a:1}",
            "not json",
        ] {
            assert!(parse_json_line(bad).is_none(), "accepted {bad:?}");
        }
    }
}
